"""Declarative experiment specifications: the spec → plan → run → artifact API.

An :class:`ExperimentSpec` is a frozen, JSON-serializable description of one
paper experiment: a workload (by registry name), a scale preset (plus
overrides), a method (``rank_clipping`` / ``group_deletion`` / ``baseline``),
an optional sweep grid of ε or λ values, the :class:`~repro.experiments.runner.SweepEngine`
execution policy, and a seed policy.  Every paper deliverable — Tables 1 and
3, Figures 3/5 and the Figure 6–8 sweeps, the headline area numbers — is a
spec ``kind``; the planner (:mod:`repro.experiments.plan`) expands a spec
into the existing engine point tasks and the run store
(:mod:`repro.experiments.store`) persists the results as content-addressed
JSON artifacts.

Specs round-trip through plain dicts (:meth:`ExperimentSpec.to_dict` /
:meth:`ExperimentSpec.from_dict`) and hash to stable fingerprints:

* :meth:`ExperimentSpec.fingerprint` addresses the *run artifact* — two specs
  with the same content (the display ``name`` is excluded) share one
  artifact.
* :func:`point_fingerprint` addresses one *sweep point result*.  It excludes
  every engine field that is guaranteed bit-identical across execution
  policies (``workers``, ``mode``, ``batched_eval``, ``memoize_routing``,
  ``start_method``) as well as spec fields irrelevant to the point's
  training, so a point computed by a serial run can be resumed by a parallel
  or lockstep run — and by a run with a different grid that shares the value.
* :func:`baseline_fingerprint` addresses the shared dense-baseline training,
  which depends only on the workload, scale and seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.presets import ExperimentScale, get_scale
from repro.experiments.runner import SweepEngine
from repro.experiments.workloads import Workload, get_workload
from repro.hardware.sim import HardwareConfig

#: Experiment families the planner knows how to expand.
KINDS = ("table1", "table3", "figure3", "figure5", "sweep", "headline", "baseline")

#: Kinds whose trained networks can ride the device-level hardware simulator
#: (their point results carry per-network payload dicts; the trace/table kinds
#: would need a different result shape).
HARDWARE_KINDS = ("sweep", "baseline")

#: Training methods a spec can select.
METHODS = ("rank_clipping", "group_deletion", "baseline")

#: Methods each kind admits; the first entry is the kind's default.
KIND_METHODS: Dict[str, Tuple[str, ...]] = {
    "table1": ("rank_clipping",),
    "figure3": ("rank_clipping",),
    "table3": ("group_deletion",),
    "figure5": ("group_deletion",),
    "sweep": ("rank_clipping", "group_deletion"),
    "baseline": ("baseline",),
    "headline": ("baseline",),
}

#: Engine fields that can change a sweep point's *result* (everything else —
#: workers, mode, batching, memoization — is guarded bit-identical).
_ENGINE_RESULT_FIELDS = ("per_point_seed", "structured_lasso", "inline_training_eval")


def _digest(payload: Mapping[str, Any]) -> str:
    """Stable short hash of a JSON-serializable mapping."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment run.

    Attributes
    ----------
    kind:
        Which deliverable to produce — one of :data:`KINDS`.
    workload:
        Workload registry name (``lenet``, ``convnet``, ``mlp``, …).
    scale:
        Scale preset name (``tiny`` / ``small`` / ``paper``).
    scale_overrides:
        Per-field overrides applied on top of the preset (stored as a sorted
        tuple of ``(field, value)`` pairs so specs stay hashable; mappings
        are accepted and normalized).
    method:
        ``rank_clipping`` / ``group_deletion`` / ``baseline``.  Defaults to
        the kind's natural method; only ``kind="sweep"`` admits a choice.
    grid:
        The swept ε (rank clipping) or λ (group deletion) values.  Required
        for ``kind="sweep"``, forbidden otherwise.
    tolerance:
        Clipping tolerance ε for the single-run kinds and for the λ sweep's
        shared clipping phase.
    strength:
        Group-Lasso λ for the single-run deletion kinds.
    include_small_matrices:
        Extend deletion to matrices that fit a single crossbar.
    lowrank_method:
        Low-rank backend for clipping (``pca`` / ``svd``).
    seed:
        Optional seed override (replaces the scale preset's seed).
    hardware:
        Optional tuple of :class:`~repro.hardware.sim.HardwareConfig` device
        corners.  When non-empty (``kind`` must be in
        :data:`HARDWARE_KINDS`) every finished point network is additionally
        evaluated on the crossbar simulator under each corner, and the
        simulated accuracies land in the point payloads keyed by
        ``config.label``.  Participates in spec *and* point fingerprints —
        hardware-evaluated points are distinct artifacts from software-only
        ones — but an empty tuple is excluded, so pre-existing fingerprints
        are unchanged.
    engine:
        The :class:`~repro.experiments.runner.SweepEngine` execution policy.
    name:
        Display name (registry key / artifact label).  Excluded from the
        fingerprint: renaming a spec does not re-run it.
    """

    kind: str
    workload: str = "mlp"
    scale: str = "tiny"
    scale_overrides: Tuple[Tuple[str, Any], ...] = ()
    method: str = ""
    grid: Tuple[float, ...] = ()
    tolerance: float = 0.03
    strength: float = 0.01
    include_small_matrices: bool = False
    lowrank_method: str = "pca"
    seed: Optional[int] = None
    hardware: Tuple[HardwareConfig, ...] = ()
    engine: SweepEngine = SweepEngine()
    name: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ExperimentError(
                f"unknown experiment kind {self.kind!r}; expected one of {list(KINDS)}"
            )
        method = self.method or KIND_METHODS[self.kind][0]
        object.__setattr__(self, "method", method)
        if method not in KIND_METHODS[self.kind]:
            raise ExperimentError(
                f"kind {self.kind!r} does not support method {method!r}; "
                f"expected one of {list(KIND_METHODS[self.kind])}"
            )
        if not isinstance(self.engine, SweepEngine):
            if isinstance(self.engine, Mapping):
                object.__setattr__(self, "engine", SweepEngine.from_dict(self.engine))
            else:
                raise ExperimentError(
                    f"engine must be a SweepEngine or mapping, got {type(self.engine).__name__}"
                )
        object.__setattr__(self, "grid", tuple(float(value) for value in self.grid))
        overrides = self.scale_overrides
        if isinstance(overrides, Mapping):
            overrides = overrides.items()
        object.__setattr__(
            self,
            "scale_overrides",
            tuple(sorted((str(key), value) for key, value in overrides)),
        )
        if self.kind == "sweep" and not self.grid:
            raise ExperimentError("kind='sweep' requires a non-empty grid of ε/λ values")
        if self.kind != "sweep" and self.grid:
            raise ExperimentError(
                f"kind={self.kind!r} takes no sweep grid (got {len(self.grid)} values)"
            )
        if not (0.0 <= self.tolerance <= 1.0):
            raise ExperimentError(f"tolerance must be in [0, 1], got {self.tolerance}")
        if self.strength < 0:
            raise ExperimentError(f"strength must be >= 0, got {self.strength}")
        if self.lowrank_method not in ("pca", "svd"):
            raise ExperimentError(
                f"lowrank_method must be 'pca' or 'svd', got {self.lowrank_method!r}"
            )
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        hardware = []
        for entry in self.hardware:
            if isinstance(entry, HardwareConfig):
                hardware.append(entry)
            elif isinstance(entry, Mapping):
                hardware.append(HardwareConfig.from_dict(entry))
            else:
                raise ExperimentError(
                    "hardware entries must be HardwareConfig objects or mappings, "
                    f"got {type(entry).__name__}"
                )
        object.__setattr__(self, "hardware", tuple(hardware))
        if hardware and self.kind not in HARDWARE_KINDS:
            raise ExperimentError(
                f"kind {self.kind!r} does not support hardware evaluation; "
                f"expected one of {list(HARDWARE_KINDS)}"
            )
        labels = [config.label for config in hardware]
        if len(set(labels)) != len(labels):
            raise ExperimentError(
                f"hardware corners must have distinct labels, got {labels}"
            )
        if not self.name:
            object.__setattr__(self, "name", self.kind)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view; round-trips exactly through :meth:`from_dict`."""
        return {
            "name": self.name,
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale,
            "scale_overrides": {key: value for key, value in self.scale_overrides},
            "method": self.method,
            "grid": list(self.grid),
            "tolerance": self.tolerance,
            "strength": self.strength,
            "include_small_matrices": self.include_small_matrices,
            "lowrank_method": self.lowrank_method,
            "seed": self.seed,
            "hardware": [config.as_dict() for config in self.hardware],
            "engine": self.engine.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON).

        Unknown keys raise :class:`~repro.exceptions.ExperimentError` listing
        the valid field names.
        """
        payload = dict(payload)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ExperimentError(
                f"unknown ExperimentSpec field(s) {unknown}; valid fields: {sorted(known)}"
            )
        if "kind" not in payload:
            raise ExperimentError("ExperimentSpec payload is missing the 'kind' field")
        return cls(**payload)

    def to_json(self) -> str:
        """Pretty JSON rendering (what ``python -m repro`` writes and reads)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # ----------------------------------------------------------- fingerprints
    def canonical(self) -> Dict[str, Any]:
        """The content that addresses this spec's run artifact.

        An empty ``hardware`` tuple is dropped so specs that never touch the
        simulator keep the fingerprints (and stored artifacts) they had
        before the hardware section existed.  The engine's ``retry`` policy
        is dropped unconditionally: retries, timeouts, and pool supervision
        are guaranteed bit-identical to a clean run (fresh task copy, same
        derived per-point seed), so how failures are handled must never
        re-address what was computed.
        """
        payload = self.to_dict()
        payload.pop("name")
        if not payload["hardware"]:
            payload.pop("hardware")
        payload["engine"] = {
            key: value for key, value in payload["engine"].items() if key != "retry"
        }
        return payload

    def fingerprint(self) -> str:
        """Stable content hash addressing the spec's run artifact."""
        return _digest(self.canonical())

    # ------------------------------------------------------------- resolution
    def resolved_scale(self) -> ExperimentScale:
        """The :class:`ExperimentScale` this spec runs at (overrides applied)."""
        scale = get_scale(self.scale)
        overrides = dict(self.scale_overrides)
        if self.seed is not None:
            overrides["seed"] = self.seed
        return scale.with_overrides(**overrides) if overrides else scale

    def resolved_workload(self) -> Workload:
        """Instantiate the workload this spec names, at the resolved scale."""
        return get_workload(self.workload, self.resolved_scale())

    def with_updates(self, **kwargs) -> "ExperimentSpec":
        """Copy with spec- or engine-level fields replaced.

        Engine field names (``workers``, ``mode``, ``per_point_seed``, …) are
        routed into a replaced engine; everything else must be a spec field.
        """
        engine_fields = {f.name for f in fields(SweepEngine)}
        engine_kwargs = {
            key: kwargs.pop(key) for key in list(kwargs) if key in engine_fields
        }
        spec = self
        if engine_kwargs:
            spec = replace(spec, engine=replace(spec.engine, **engine_kwargs))
        if kwargs:
            known = {f.name for f in fields(type(self))}
            unknown = sorted(set(kwargs) - known)
            if unknown:
                raise ExperimentError(
                    f"unknown ExperimentSpec/engine field(s) {unknown}; valid fields: "
                    f"{sorted(known | engine_fields)}"
                )
            spec = replace(spec, **kwargs)
        return spec


# ------------------------------------------------------------------ fingerprints
def point_fingerprint(spec: ExperimentSpec, index: int, value: Optional[float]) -> str:
    """Content hash of one plan point's *result*.

    Includes only what can change the point's numbers: the workload/scale/
    seed, the method and its hyper-parameters, the point's swept value, and
    the engine fields without a bit-identity guarantee.  The point index
    participates only under ``per_point_seed`` (where it derives the data
    stream); the surrounding grid never does, so runs with overlapping grids
    share point artifacts.
    """
    payload = spec.canonical()
    payload.pop("grid")
    engine = payload.pop("engine")
    payload["engine"] = {key: engine[key] for key in _ENGINE_RESULT_FIELDS}
    payload["point"] = {
        "value": value,
        "index": index if spec.engine.per_point_seed else None,
    }
    if spec.kind == "headline":
        # Closed-form from the paper's published tables: nothing else matters.
        return _digest({"kind": "headline"})
    if spec.kind == "baseline":
        for key in ("tolerance", "strength", "include_small_matrices", "lowrank_method"):
            payload.pop(key)
    if spec.method == "rank_clipping":
        payload.pop("strength")
        payload.pop("include_small_matrices")
        if spec.kind == "sweep":
            # Each point's ε comes from the grid; the tolerance field is unread.
            payload.pop("tolerance")
    if spec.kind == "sweep" and spec.method == "group_deletion":
        # λ comes from the grid; tolerance and lowrank_method still shape the
        # shared clipping phase every point starts from.
        payload.pop("strength")
    return _digest(payload)


def baseline_fingerprint(spec: ExperimentSpec) -> str:
    """Content hash of the shared dense-baseline training phase."""
    return _digest(
        {
            "phase": "baseline",
            "workload": spec.workload,
            "scale": spec.scale,
            "scale_overrides": dict(spec.scale_overrides),
            "seed": spec.seed,
        }
    )


# ------------------------------------------------------------------- adapters
def scale_spec_fields(scale: ExperimentScale) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
    """``(preset name, overrides)`` reproducing ``scale`` via ``resolved_scale``.

    A scale named after a preset is diffed against that preset; any other
    scale is encoded as overrides (including its ``name``) on ``tiny``.
    """
    try:
        base = get_scale(scale.name)
    except ConfigurationError:
        base = get_scale("tiny")
    overrides = tuple(
        sorted(
            (f.name, getattr(scale, f.name))
            for f in fields(scale)
            if getattr(scale, f.name) != getattr(base, f.name)
        )
    )
    return base.name, overrides


def spec_for_workload(
    kind: str,
    workload: Workload,
    *,
    engine: Optional[SweepEngine] = None,
    name: str = "",
    **kwargs,
) -> ExperimentSpec:
    """Build a spec matching an already-instantiated :class:`Workload`.

    This is how the deprecated imperative entry points (``run_table1``,
    ``sweep_rank_clipping``, …) route through the declarative core: the
    workload's name and scale are lifted into spec fields, and the concrete
    workload object travels alongside in an
    :class:`~repro.experiments.plan.ExperimentContext`.
    """
    scale_name, overrides = scale_spec_fields(workload.scale)
    return ExperimentSpec(
        kind=kind,
        workload=workload.name,
        scale=scale_name,
        scale_overrides=overrides,
        engine=engine if engine is not None else SweepEngine(),
        name=name,
        **kwargs,
    )
