"""Shared training plumbing for the experiment harness.

:class:`TrainingSetup` owns the datasets, hyper-parameters and random seeds
of one experiment and produces the ``trainer_factory`` callables consumed by
:class:`~repro.core.rank_clipping.RankClipper`,
:class:`~repro.core.group_deletion.GroupConnectionDeleter` and
:class:`~repro.core.scissor.GroupScissor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.data import ArrayDataset, DataLoader
from repro.exceptions import ConfigurationError
from repro.experiments.presets import ExperimentScale
from repro.experiments.workloads import Workload
from repro.nn import SGD, SoftmaxCrossEntropy, Trainer, accuracy
from repro.nn.batched import NetworkStack
from repro.nn.network import Sequential
from repro.nn.optim.lockstep import LockstepSGD
from repro.nn.trainer import LockstepTrainer
from repro.utils.rng import as_rng, derive_seed


@dataclass
class TrainingSetup:
    """Datasets + hyper-parameters for one experiment run.

    ``evaluate_during_training`` controls whether trainers built by
    :meth:`trainer_factory` carry the held-out split for periodic/in-run
    evaluation.  Sweep points whose traces are discarded switch it off (the
    training trajectory is bit-identical either way — evaluation is a pure
    inference pass — but each point stops paying for test-set passes nobody
    reads); :meth:`evaluate` keeps working regardless.
    """

    train_dataset: ArrayDataset
    test_dataset: ArrayDataset
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    eval_interval: int = 100
    seed: int = 0
    evaluate_during_training: bool = True
    _loader_seed: int = field(init=False, default=0)

    def __post_init__(self):
        rng = as_rng(self.seed)
        self._loader_seed = derive_seed(rng)

    # ------------------------------------------------------------ factories
    @classmethod
    def from_workload(cls, workload: Workload, **overrides) -> "TrainingSetup":
        """Build a setup from a workload's datasets and scale defaults."""
        scale: ExperimentScale = workload.scale
        train, test = workload.data()
        defaults = dict(
            batch_size=scale.batch_size,
            learning_rate=scale.learning_rate,
            momentum=scale.momentum,
            eval_interval=scale.eval_interval,
            seed=scale.seed,
        )
        defaults.update(overrides)
        return cls(train_dataset=train, test_dataset=test, **defaults)

    def make_loader(self) -> DataLoader:
        """A fresh shuffling loader over the training split."""
        return DataLoader(
            self.train_dataset,
            batch_size=self.batch_size,
            shuffle=True,
            rng=self._loader_seed,
        )

    def trainer_factory(self, network: Sequential, callbacks: Sequence = ()) -> Trainer:
        """Build a trainer for ``network`` (the callable passed to the core drivers)."""
        optimizer = SGD(
            network.parameters(),
            lr=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        return Trainer(
            network,
            SoftmaxCrossEntropy(),
            optimizer,
            self.make_loader(),
            eval_data=self.test_dataset.arrays() if self.evaluate_during_training else None,
            callbacks=list(callbacks),
            eval_interval=self.eval_interval,
        )

    def lockstep_trainer_factory(
        self,
        networks: Sequence[Sequential],
        callbacks_per_point: Sequence[Sequence] = (),
        *,
        point_setups: Optional[Sequence["TrainingSetup"]] = None,
    ) -> LockstepTrainer:
        """Build a lockstep trainer for K same-architecture networks.

        The lockstep counterpart of :meth:`trainer_factory`: one stacked SGD
        over the networks' parameter slabs and either a single shared data
        loader (the default — every point trains on this setup's batch
        stream, enabling shared im2col) or per-point loaders when
        ``point_setups`` carry differing seeds (``per_point_seed`` sweeps).
        All setups must agree on every hyper-parameter except the seed.
        """
        networks = list(networks)
        setups = list(point_setups) if point_setups is not None else [self] * len(networks)
        if len(setups) != len(networks):
            raise ConfigurationError(
                f"{len(networks)} networks but {len(setups)} point setups"
            )
        for setup in setups:
            shared = (
                setup.batch_size, setup.learning_rate, setup.momentum,
                setup.weight_decay, setup.eval_interval, setup.evaluate_during_training,
            )
            if shared != (
                self.batch_size, self.learning_rate, self.momentum,
                self.weight_decay, self.eval_interval, self.evaluate_during_training,
            ):
                raise ConfigurationError(
                    "lockstep training requires point setups that differ only in seed"
                )
        stack = NetworkStack(networks)
        optimizer = LockstepSGD(
            stack.parameters,
            lr=self.learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        if len({setup._loader_seed for setup in setups}) == 1:
            loaders = setups[0].make_loader()
        else:
            loaders = [setup.make_loader() for setup in setups]
        return LockstepTrainer(
            stack,
            SoftmaxCrossEntropy(),
            optimizer,
            loaders,
            eval_data=self.test_dataset.arrays() if self.evaluate_during_training else None,
            callbacks=callbacks_per_point,
            eval_interval=self.eval_interval,
        )

    # -------------------------------------------------------------- helpers
    def train_network(self, network: Sequential, iterations: int) -> float:
        """Train ``network`` for ``iterations`` steps and return its test accuracy."""
        trainer = self.trainer_factory(network)
        trainer.run(iterations)
        return self.evaluate(network)

    def evaluate(self, network: Sequential) -> float:
        """Test accuracy of ``network`` on the held-out split."""
        inputs, targets = self.test_dataset.arrays()
        logits = network.predict(inputs, batch_size=256)
        return accuracy(logits, targets)


def train_baseline(workload: Workload, *, seed: Optional[int] = None) -> Tuple[Sequential, float, TrainingSetup]:
    """Train the dense baseline network of a workload.

    Returns ``(network, accuracy, setup)`` so follow-up phases reuse the same
    datasets and hyper-parameters.
    """
    setup = TrainingSetup.from_workload(workload)
    network = workload.build(seed if seed is not None else workload.scale.seed)
    baseline_accuracy = setup.train_network(network, workload.scale.baseline_iterations)
    return network, baseline_accuracy, setup
