"""Planner and stage library for declarative experiment specs.

:func:`build_plan` expands an :class:`~repro.experiments.spec.ExperimentSpec`
into an :class:`ExperimentPlan` — one fingerprinted :class:`PlanPoint` per
sweep value (or a single point for the one-shot kinds) plus the execution
policy the engine will use (serial / parallel / lockstep, chosen per spec).
:func:`execute_spec` runs a plan through the existing PR 2–3 machinery
(:class:`~repro.experiments.runner.SweepEngine` point tasks, batched
evaluation, lockstep stacked training — unchanged at the kernel level),
skipping any point whose fingerprint already has a stored result when a
:class:`~repro.experiments.store.RunStore` is supplied with ``resume=True``,
and persists the outcome as a content-addressed JSON artifact.  Specs with a
``hardware`` section additionally run a device-level evaluation stage over
every finished point network (:func:`repro.hardware.sim.simulate_evaluate`,
batched across points); the simulated per-corner accuracies ride the point
payloads and resume with them.

Since the orchestration PR, the *executor* itself lives in
:mod:`repro.experiments.graph`: a spec's plan is restructured as an explicit
dependency graph (baseline-train → clip → point → assemble nodes) and
:func:`execute_spec` is a thin wrapper over a single-spec graph run.  This
module keeps the plan expansion and the **stage library** both execution
paths share — baseline resolution, task construction, point finalization,
result assembly, artifact merging — so the batch path (engine fan-out /
lockstep inside one process) and the node-granular path (the
:mod:`repro.scheduler` job daemon, interleaving nodes of *different* specs)
are bit-identical by construction.

The imperative entry points (``run_table1``, ``sweep_rank_clipping``, …) are
thin deprecation shims over this module: they lift their arguments into a
spec, thread any pre-trained baseline through an :class:`ExperimentContext`,
and return ``execute_spec(...).result``.
"""

from __future__ import annotations

import copy
import platform
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import GroupDeletionConfig, RankClippingConfig
from repro.core.conversion import convert_to_lowrank, direct_lra
from repro.core.rank_clipping import RankClipper
from repro.exceptions import ExperimentError
from repro.experiments.figures import Figure3Series, Figure5Series
from repro.experiments.headline import HeadlineNumbers
from repro.experiments.resilience import PointFailure, RunMonitor
from repro.experiments.runner import (
    StrengthPointTask,
    TolerancePointTask,
    run_tolerance_point,
)
from repro.experiments.spec import (
    ExperimentSpec,
    baseline_fingerprint,
    point_fingerprint,
)
from repro.experiments.sweeps import (
    StrengthPoint,
    StrengthSweepResult,
    TolerancePoint,
    ToleranceSweepResult,
)
from repro.experiments.table1 import Table1Result, Table1Row
from repro.experiments.table3 import Table3Result, Table3Row
from repro.experiments.training import TrainingSetup, train_baseline
from repro.experiments.workloads import Workload
from repro.hardware.area import layer_area_fraction, network_area_fraction
from repro.hardware.mapper import NetworkMapper
from repro.hardware.sim import simulate_evaluate
from repro.utils.logging import get_logger

logger = get_logger("experiments.plan")


# ------------------------------------------------------------------------ plan
@dataclass(frozen=True)
class PlanPoint:
    """One unit of resumable work: a sweep value or a one-shot deliverable."""

    index: int
    value: Optional[float]
    fingerprint: str
    label: str


@dataclass(frozen=True)
class ExperimentPlan:
    """A spec expanded into fingerprinted points plus an execution policy."""

    spec: ExperimentSpec
    fingerprint: str
    points: Tuple[PlanPoint, ...]
    execution: str
    baseline_fingerprint: str

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        return (
            f"{self.spec.name} [{self.fingerprint}]: {len(self.points)} point(s), "
            f"{self.execution} execution"
        )


def build_plan(spec: ExperimentSpec) -> ExperimentPlan:
    """Expand ``spec`` into fingerprinted plan points."""
    if spec.kind == "sweep":
        symbol = "eps" if spec.method == "rank_clipping" else "lambda"
        points = tuple(
            PlanPoint(
                index=index,
                value=value,
                fingerprint=point_fingerprint(spec, index, value),
                label=f"{symbol}={value:g}",
            )
            for index, value in enumerate(spec.grid)
        )
        if spec.engine.mode == "lockstep" and spec.method == "group_deletion":
            execution = "lockstep"
        elif spec.engine.workers > 1:
            execution = "parallel"
        else:
            execution = "serial"
    else:
        points = (
            PlanPoint(
                index=0,
                value=None,
                fingerprint=point_fingerprint(spec, 0, None),
                label=spec.kind,
            ),
        )
        execution = "serial"
    return ExperimentPlan(
        spec=spec,
        fingerprint=spec.fingerprint(),
        points=points,
        execution=execution,
        baseline_fingerprint=baseline_fingerprint(spec),
    )


# --------------------------------------------------------------------- context
@dataclass
class ExperimentContext:
    """Optional pre-trained material threaded into :func:`execute_spec`.

    The deprecation shims and the benchmark harness reuse one trained
    baseline across several experiments; passing it here skips the baseline
    phase exactly as the old keyword arguments did.  ``workload`` overrides
    the spec's registry lookup (required for workloads built with custom
    constructor arguments).
    """

    workload: Optional[Workload] = None
    setup: Optional[TrainingSetup] = None
    baseline_network: Any = None
    baseline_accuracy: Optional[float] = None


@dataclass
class ExperimentRun:
    """What :func:`execute_spec` returns: the result plus run bookkeeping."""

    spec: ExperimentSpec
    fingerprint: str
    result: Any
    payload: Dict[str, Any]
    computed_points: int
    reused_points: int
    duration_s: float
    artifact_path: Optional[Path] = None
    timings: Dict[str, float] = field(default_factory=dict)
    failures: List[PointFailure] = field(default_factory=list)

    def format_summary(self) -> str:
        """One-paragraph run summary for the CLI."""
        points_line = (
            f"points: {self.computed_points} computed, {self.reused_points} reused"
        )
        if self.failures:
            points_line += f", {len(self.failures)} FAILED"
        points_line += f" | {self.duration_s:.2f}s"
        lines = [
            f"{self.spec.name} (kind={self.spec.kind}, method={self.spec.method}, "
            f"workload={self.spec.workload}, scale={self.spec.scale})",
            f"fingerprint: {self.fingerprint}",
            points_line,
        ]
        for failure in self.failures:
            lines.append(
                f"  failed: {failure.label} ({failure.error_type} after "
                f"{failure.attempts} attempt(s)): {failure.message}"
            )
        if self.artifact_path is not None:
            lines.append(f"artifact: {self.artifact_path}")
        return "\n".join(lines)


# -------------------------------------------------------------------- baseline
@dataclass(frozen=True)
class BaselineResult:
    """Result of a ``kind="baseline"`` spec: the dense network's accuracy.

    ``hardware`` optionally carries the network's simulated accuracy per
    device corner (``HardwareConfig.label`` → accuracy) when the spec has a
    ``hardware`` section.
    """

    workload_name: str
    scale: str
    iterations: int
    accuracy: Optional[float]
    hardware: Optional[Dict[str, float]] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts."""
        payload = {
            "workload_name": self.workload_name,
            "scale": self.scale,
            "iterations": self.iterations,
            "accuracy": self.accuracy,
        }
        if self.hardware is not None:
            payload["hardware"] = dict(self.hardware)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BaselineResult":
        """Rebuild from :meth:`to_payload` output."""
        hardware = payload.get("hardware")
        return cls(
            workload_name=payload["workload_name"],
            scale=payload["scale"],
            iterations=int(payload["iterations"]),
            accuracy=payload["accuracy"],
            hardware=None
            if hardware is None
            else {label: float(value) for label, value in hardware.items()},
        )

    def format_table(self) -> str:
        """Text rendering."""
        accuracy = "n/a" if self.accuracy is None else f"{self.accuracy:.2%}"
        lines = [
            f"Baseline ({self.workload_name} @ {self.scale})",
            f"iterations: {self.iterations}",
            f"accuracy:   {accuracy}",
        ]
        if self.hardware:
            lines.append("simulated hardware accuracy:")
            for label, value in self.hardware.items():
                lines.append(f"  {label:<24} {value:.2%}")
        return "\n".join(lines)


# ------------------------------------------------------------- result payloads
def result_to_payload(spec: ExperimentSpec, result: Any) -> Dict[str, Any]:
    """JSON-serializable view of a result object (artifact ``result`` field)."""
    if spec.kind == "headline":
        return result.as_dict()
    return result.to_payload()


def result_from_payload(spec: ExperimentSpec, payload: Dict[str, Any]) -> Any:
    """Rebuild the rich result object a stored artifact describes.

    Training-time extras that do not serialize (``clipping_result``,
    ``deletion_result``) come back as ``None`` — artifacts persist the
    reported numbers, not the in-memory training traces.
    """
    if spec.kind == "table1":
        return Table1Result.from_payload(payload)
    if spec.kind == "table3":
        return Table3Result.from_payload(payload)
    if spec.kind == "figure3":
        return Figure3Series.from_payload(payload)
    if spec.kind == "figure5":
        return Figure5Series.from_payload(payload)
    if spec.kind == "headline":
        return HeadlineNumbers.from_dict(payload)
    if spec.kind == "baseline":
        return BaselineResult.from_payload(payload)
    if spec.kind == "sweep":
        if spec.method == "rank_clipping":
            return ToleranceSweepResult.from_payload(payload)
        return StrengthSweepResult.from_payload(payload)
    raise ExperimentError(f"cannot rebuild results for kind {spec.kind!r}")


def render_result(result: Any) -> str:
    """Best-effort text rendering of any experiment result object."""
    for attr in ("format_table", "format_series", "format_summary"):
        renderer = getattr(result, attr, None)
        if callable(renderer):
            return renderer()
    return repr(result)


def run_environment() -> Dict[str, str]:
    """The environment block recorded in every artifact."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "platform": platform.platform(),
    }


def warn_deprecated_entry_point(old: str, new: str) -> None:
    """Deprecation notice emitted by the legacy imperative entry points."""
    warnings.warn(
        f"{old}() is deprecated; use {new} with "
        "repro.experiments.execute_spec (or `python -m repro run`) instead",
        DeprecationWarning,
        stacklevel=3,
    )


# ------------------------------------------------------------------- executor
def execute_spec(
    spec: ExperimentSpec,
    *,
    context: Optional[ExperimentContext] = None,
    store=None,
    resume: bool = True,
    strict: bool = False,
    obs=None,
) -> ExperimentRun:
    """Run ``spec`` end to end, resuming from ``store`` where possible.

    Parameters
    ----------
    spec:
        The experiment to run.
    context:
        Optional pre-trained baseline material (shims, benchmark harness).
    store:
        A :class:`~repro.experiments.store.RunStore`.  When given, the run is
        persisted as a content-addressed artifact; with ``resume=True`` any
        point whose fingerprint already has a stored result (in *any*
        artifact of the store) — or in the spec's mid-run journal, left by an
        interrupted earlier run — is reused instead of retrained, and a
        complete artifact short-circuits the run entirely — zero new
        training.  Completed sweep points are journaled as they finish, so a
        crash mid-sweep loses at most the point in flight.
    resume:
        Set ``False`` to recompute everything (the artifact is overwritten
        and any mid-run journal discarded).
    strict:
        Sweep points run supervised by the engine's
        :class:`~repro.experiments.resilience.RetryPolicy`; a point that
        exhausts its budget is recorded as a
        :class:`~repro.experiments.resilience.PointFailure` on the returned
        run (and in the artifact) while the rest of the sweep completes.
        ``strict=True`` restores abort-on-first-failure
        (:class:`~repro.exceptions.PointFailureError`).  A run where *every*
        point fails aborts regardless — that is a configuration problem, not
        a partial result.  The first SIGINT drains in-flight points and
        persists a partial artifact before raising
        :class:`~repro.exceptions.RunInterrupted`.
    obs:
        An optional :class:`~repro.obs.Observability` handle.  When enabled,
        stage/node timings register as metrics, node trace records stream to
        ``traces.jsonl``, and the artifact gains a non-fingerprinted
        ``observability`` section; the run's numbers and fingerprints are
        identical either way.
    """
    # Deferred import: repro.experiments.graph imports this module's stage
    # library at module scope, so the dependency must point one way only.
    from repro.experiments.graph import run_graph

    return run_graph(
        spec, context=context, store=store, resume=resume, strict=strict, obs=obs
    )


def _merge_artifact(
    existing: Optional[Dict[str, Any]],
    spec: ExperimentSpec,
    plan: ExperimentPlan,
    stored_points: Dict[str, Dict[str, Any]],
    new_points: Dict[str, Dict[str, Any]],
    result_payload: Optional[Dict[str, Any]],
    baseline_info: Optional[Dict[str, Any]],
    timings: Dict[str, float],
    failure_payloads: Optional[Dict[str, Dict[str, Any]]] = None,
    *,
    observability: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Fold this run into the spec's (possibly pre-existing) artifact."""
    # Artifact metadata timestamp — never a fingerprint input.  repro: ignore[wall-clock]
    now = time.strftime("%Y-%m-%dT%H:%M:%S")
    artifact = existing or {
        "version": 1,
        "fingerprint": plan.fingerprint,
        "created": now,
        "spec": spec.to_dict(),
    }
    artifact.update(
        {
            "name": spec.name,
            "kind": spec.kind,
            "method": spec.method,
            "workload": spec.workload,
            "scale": spec.scale,
            "execution": plan.execution,
            "updated": now,
            "environment": run_environment(),
        }
    )
    points = artifact.setdefault("points", {})
    for point in plan.points:
        if point.fingerprint in new_points:
            points[point.fingerprint] = {
                "index": point.index,
                "value": point.value,
                "label": point.label,
                "reused": False,
                "payload": new_points[point.fingerprint],
            }
        elif point.fingerprint in stored_points:
            points[point.fingerprint] = {
                "index": point.index,
                "value": point.value,
                "label": point.label,
                "reused": True,
                "payload": stored_points[point.fingerprint],
            }
    if baseline_info is not None:
        artifact["baseline"] = baseline_info
    # Failure records persist across runs until the point finally computes —
    # a resumed run that succeeds where an earlier one failed clears it.
    failures = {**artifact.get("failures", {}), **(failure_payloads or {})}
    failures = {
        fingerprint: record
        for fingerprint, record in failures.items()
        if fingerprint not in points
    }
    if failures:
        artifact["failures"] = failures
    else:
        artifact.pop("failures", None)
    artifact["timings"] = {**artifact.get("timings", {}), **timings}
    if observability is not None:
        # Observability is descriptive, never a fingerprint input: runs with
        # it disabled leave any earlier section untouched.
        artifact["observability"] = {
            **artifact.get("observability", {}),
            **observability,
        }
    artifact["result"] = result_payload
    artifact["complete"] = result_payload is not None and all(
        point.fingerprint in points for point in plan.points
    )
    return artifact


# ----------------------------------------------------------- baseline plumbing
def _resolve_workload(spec: ExperimentSpec, context: ExperimentContext) -> Workload:
    if context.workload is not None:
        return context.workload
    return spec.resolved_workload()


def _ensure_baseline(
    spec: ExperimentSpec,
    context: ExperimentContext,
    timings: Dict[str, float],
    *,
    evaluate_missing_accuracy: bool = True,
):
    """The trained dense baseline (from the context, or trained now)."""
    workload = _resolve_workload(spec, context)
    setup = context.setup
    network = context.baseline_network
    accuracy = context.baseline_accuracy
    if network is None or setup is None:
        t0 = time.perf_counter()
        network, accuracy, setup = train_baseline(workload)
        timings["baseline_s"] = round(time.perf_counter() - t0, 6)
    elif accuracy is None and evaluate_missing_accuracy:
        accuracy = setup.evaluate(network)
    info = {"fingerprint": baseline_fingerprint(spec), "accuracy": accuracy}
    return workload, setup, network, accuracy, info


# ------------------------------------------------------------ hardware stage
def _run_hardware_stage(
    spec: ExperimentSpec,
    setup: TrainingSetup,
    networks,
    timings: Dict[str, float],
    *,
    mapper: Optional[NetworkMapper] = None,
):
    """Device-level simulated accuracy of every network per hardware corner.

    Returns one ``{config.label: accuracy}`` dict per network (in order).
    All networks of a sweep ride the batched simulator together — im2col is
    shared and the tile MVMs stack across same-architecture groups — and one
    mapper memoizes the tiling plans across corners.  Journaled runs call
    this once per point as each finishes; they pass a shared ``mapper`` so
    the tiling-plan memoization still spans the whole sweep.
    """
    networks = list(networks)
    if not spec.hardware or not networks:
        return [None] * len(networks)
    t0 = time.perf_counter()
    inputs, targets = setup.test_dataset.arrays()
    if mapper is None:
        mapper = NetworkMapper()
    per_network: List[Dict[str, float]] = [{} for _ in networks]
    for config in spec.hardware:
        # batch_size bounds the im2col super-batch like the software eval
        # path; the per-conversion ADC makes the chunking value-neutral.
        accuracies = simulate_evaluate(
            networks, inputs, targets, config, mapper=mapper, batch_size=256
        )
        for slot, value in enumerate(accuracies):
            per_network[slot][config.label] = value
    timings["hardware_s"] = round(
        timings.get("hardware_s", 0.0) + time.perf_counter() - t0, 6
    )
    return per_network


# ------------------------------------------------------------ one-shot kinds
def build_single_result(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    network,
    accuracy: Optional[float],
    timings: Dict[str, float],
):
    """Run a single-point kind (table1/table3/figure3/figure5/baseline).

    The trained dense baseline arrives from the caller (the graph's
    baseline node, via :func:`_ensure_baseline`); this stage only builds
    the deliverable from it.
    """
    t0 = time.perf_counter()
    hardware_before = timings.get("hardware_s", 0.0)
    if spec.kind == "baseline":
        hardware = None
        if spec.hardware:
            hardware = _run_hardware_stage(spec, setup, [network], timings)[0]
        result = BaselineResult(
            workload_name=workload.name,
            scale=workload.scale.name,
            iterations=workload.scale.baseline_iterations,
            accuracy=accuracy,
            hardware=hardware,
        )
    elif spec.kind == "table1":
        result = _run_table1(spec, workload, setup, network, accuracy)
    elif spec.kind == "table3":
        result = _run_table3(spec, workload, setup, network, accuracy)
    elif spec.kind == "figure3":
        result = _run_figure3(spec, workload, setup, network, accuracy)
    elif spec.kind == "figure5":
        result = _run_figure5(spec, workload, setup, network)
    else:  # pragma: no cover - build_plan and KINDS keep this unreachable
        raise ExperimentError(f"cannot execute kind {spec.kind!r}")
    # The baseline kind's hardware-eval stage books its own hardware_s entry;
    # keep points_s as pure result-building time.
    timings["points_s"] = round(
        time.perf_counter()
        - t0
        - (timings.get("hardware_s", 0.0) - hardware_before),
        6,
    )
    return result


def _run_table1(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
    baseline_accuracy: float,
) -> Table1Result:
    """Table 1: Original / Direct LRA / Rank clipping rows for one workload."""
    engine = spec.engine
    scale = workload.scale
    layer_order = list(workload.clippable_layers)
    full_ranks = {name: min(workload.layer_shapes[name]) for name in layer_order}

    # Step 1: rank clipping on a full-rank factorized copy of the baseline.
    lowrank_network = convert_to_lowrank(baseline_network, layers=layer_order)
    config = RankClippingConfig(
        tolerance=spec.tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        method=spec.lowrank_method,
        layers=tuple(layer_order),
    )
    clipping = RankClipper(config).run(
        lowrank_network, setup.trainer_factory, baseline_accuracy=baseline_accuracy
    )

    # Step 2: Direct LRA control — truncate the baseline at the clipped ranks
    # without retraining.
    direct_network = direct_lra(
        baseline_network, clipping.final_ranks, method=spec.lowrank_method
    )
    direct_accuracy = engine.evaluate_networks([direct_network], setup)[0]

    result = Table1Result(workload_name=workload.name, layer_order=layer_order)
    result.rows.append(Table1Row("Original", baseline_accuracy, full_ranks))
    result.rows.append(Table1Row("Direct LRA", direct_accuracy, dict(clipping.final_ranks)))
    result.rows.append(
        Table1Row("Rank clipping", clipping.final_accuracy, dict(clipping.final_ranks))
    )
    result.clipping_result = clipping
    return result


def _run_table3(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
    baseline_accuracy: float,
) -> Table3Result:
    """Table 3: full pipeline (clipping + deletion) and per-matrix reporting."""
    engine = spec.engine
    scale = workload.scale
    layer_order = list(workload.clippable_layers)
    lowrank_network = convert_to_lowrank(baseline_network, layers=layer_order)
    clip_config = RankClippingConfig(
        tolerance=spec.tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        method=spec.lowrank_method,
        layers=tuple(layer_order),
    )
    clipping = RankClipper(clip_config).run(
        lowrank_network, setup.trainer_factory, baseline_accuracy=baseline_accuracy
    )

    deletion_config = GroupDeletionConfig(
        strength=spec.strength,
        iterations=scale.deletion_iterations,
        finetune_iterations=scale.finetune_iterations,
        include_small_matrices=spec.include_small_matrices,
    )
    deleter = engine.make_deleter(deletion_config, record_interval=scale.record_interval)
    deletion = deleter.run(lowrank_network, setup.trainer_factory)

    mapper = NetworkMapper()
    report = mapper.map_network(lowrank_network)
    result = Table3Result(
        workload_name=workload.name,
        clipping_result=clipping,
        deletion_result=deletion,
        baseline_accuracy=baseline_accuracy,
        final_accuracy=deletion.accuracy_after_finetune,
    )
    for name, routing in deletion.routing_reports.items():
        matrix_report = report.matrix(name)
        result.rows.append(
            Table3Row(
                matrix=name,
                matrix_shape=matrix_report.matrix_shape,
                tile_shape=matrix_report.tile_shape,
                num_crossbars=matrix_report.num_crossbars,
                wire_fraction=routing.wire_fraction,
            )
        )
    return result


def _run_figure3(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
    baseline_accuracy: Optional[float],
) -> Figure3Series:
    """Figure 3: rank-ratio and accuracy traces during rank clipping."""
    scale = workload.scale
    layer_order = list(workload.clippable_layers)
    lowrank_network = convert_to_lowrank(baseline_network, layers=layer_order)
    config = RankClippingConfig(
        tolerance=spec.tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        method=spec.lowrank_method,
        layers=tuple(layer_order),
    )
    clipping = RankClipper(config).run(
        lowrank_network, setup.trainer_factory, baseline_accuracy=baseline_accuracy
    )
    trace = clipping.trace
    rank_ratio = {name: trace.rank_ratio(name) for name in trace.ranks}
    return Figure3Series(
        workload_name=workload.name,
        iterations=list(trace.iterations),
        rank_ratio=rank_ratio,
        accuracy=list(trace.accuracy),
        clipping_result=clipping,
    )


def _run_figure5(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
) -> Figure5Series:
    """Figure 5: deleted-wire and accuracy traces during group deletion."""
    engine = spec.engine
    scale = workload.scale
    layer_order = list(workload.clippable_layers)
    lowrank_network = convert_to_lowrank(baseline_network, layers=layer_order)
    clip_config = RankClippingConfig(
        tolerance=spec.tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        method=spec.lowrank_method,
        layers=tuple(layer_order),
    )
    RankClipper(clip_config).run(lowrank_network, setup.trainer_factory)

    deletion_config = GroupDeletionConfig(
        strength=spec.strength,
        iterations=scale.deletion_iterations,
        finetune_iterations=scale.finetune_iterations,
        include_small_matrices=spec.include_small_matrices,
    )
    deleter = engine.make_deleter(deletion_config, record_interval=scale.record_interval)
    deletion = deleter.run(lowrank_network, setup.trainer_factory)
    trace = deletion.trace
    return Figure5Series(
        workload_name=workload.name,
        iterations=list(trace.iterations),
        deleted_wire_fraction={k: list(v) for k, v in trace.deleted_wire_fraction.items()},
        accuracy=list(trace.accuracy),
        deletion_result=deletion,
        remaining_wire_fraction={
            k: list(v) for k, v in trace.remaining_wire_fraction.items()
        },
    )


# ------------------------------------------------------------------ sweep kind
def assemble_sweep_result(
    spec: ExperimentSpec,
    plan: ExperimentPlan,
    workload_name: str,
    accuracy: Optional[float],
    computed: Dict[str, Any],
    stored_points: Dict[str, Dict[str, Any]],
    cache_stats: Dict[str, int],
):
    """Assemble the full sweep result from computed + stored points.

    Failed (or interrupted-before-reached) points are simply absent from
    the result; their failure records ride the artifact separately.
    """
    if spec.method == "rank_clipping":
        result = ToleranceSweepResult(
            workload_name=workload_name, baseline_accuracy=accuracy
        )
        rebuild = TolerancePoint.from_payload
    else:
        result = StrengthSweepResult(
            workload_name=workload_name,
            baseline_accuracy=accuracy,
            routing_cache_stats=cache_stats,
        )
        rebuild = StrengthPoint.from_payload
    for point in plan.points:
        if point.fingerprint in computed:
            result.points.append(computed[point.fingerprint])
        elif point.fingerprint in stored_points:
            result.points.append(rebuild(stored_points[point.fingerprint]))
    return result


def sweep_failure_payloads(
    plan: ExperimentPlan,
    stored_points: Dict[str, Dict[str, Any]],
    monitor: RunMonitor,
) -> Dict[str, Dict[str, Any]]:
    """Artifact failure records keyed by point fingerprint.

    Monitor failures are keyed by *slot* — the point's position in the
    pending (not-yet-stored) list, which both the batch stages and the
    graph's node-granular path number identically.
    """
    pending = [point for point in plan.points if point.fingerprint not in stored_points]
    return {
        pending[slot].fingerprint: monitor.failures[slot].to_payload()
        for slot in monitor.failures
        if slot < len(pending)
    }


def make_tolerance_task(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
    point: PlanPoint,
) -> TolerancePointTask:
    """Self-contained task payload for one ε rank-clipping point."""
    layer_order = list(workload.clippable_layers)
    scale = workload.scale
    network = convert_to_lowrank(copy.deepcopy(baseline_network), layers=layer_order)
    config = RankClippingConfig(
        tolerance=point.value,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        layers=tuple(layer_order),
        method=spec.lowrank_method,
    )
    return TolerancePointTask(
        index=point.index,
        tolerance=point.value,
        network=network,
        setup=spec.engine.point_setup(setup, point.index),
        config=config,
    )


def build_tolerance_point(
    workload: Workload, outcome, accuracy: float, hardware
) -> TolerancePoint:
    """Finished ε-point record from an outcome plus its evaluations."""
    layer_order = list(workload.clippable_layers)
    ranks = outcome.ranks
    fractions = {
        name: layer_area_fraction(*workload.layer_shapes[name], ranks.get(name))
        for name in layer_order
    }
    total = network_area_fraction(
        workload.layer_shapes,
        {name: ranks.get(name) for name in workload.layer_shapes},
    )
    return TolerancePoint(
        tolerance=outcome.tolerance,
        accuracy=accuracy,
        error=1.0 - accuracy,
        ranks=dict(ranks),
        layer_area_fractions=fractions,
        total_area_fraction=total,
        hardware=hardware,
    )


def _run_tolerance_points(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
    points: List[PlanPoint],
    timings: Dict[str, float],
    monitor: RunMonitor,
    journal=None,
) -> Dict[str, TolerancePoint]:
    """Train the pending ε rank-clipping points through the engine."""
    engine = spec.engine

    # Generator, not list: the serial engine then keeps only one point's
    # network copy alive at a time (the parallel engine materializes them).
    def tolerance_tasks() -> Iterable[TolerancePointTask]:
        for point in points:
            yield make_tolerance_task(spec, workload, setup, baseline_network, point)

    def build_point(outcome, accuracy, hardware) -> TolerancePoint:
        return build_tolerance_point(workload, outcome, accuracy, hardware)

    results: Dict[str, TolerancePoint] = {}
    if journal is not None:
        # Journaled mode: finalize (evaluate + hardware + flush) each point
        # as it completes, so a crash loses at most the in-flight point.
        # Per-point evaluation and simulation are bit-identical to the
        # batched paths, so resumed artifacts match clean ones exactly.
        mapper = NetworkMapper()

        def finalize(slot: int, outcome) -> None:
            if engine.inline_training_eval:
                accuracy = outcome.accuracy if outcome.accuracy is not None else 0.0
            else:
                accuracy = engine.evaluate_networks([outcome.network], setup)[0]
            hardware = _run_hardware_stage(
                spec, setup, [outcome.network], timings, mapper=mapper
            )[0]
            built = build_point(outcome, accuracy, hardware)
            results[points[slot].fingerprint] = built
            journal(points[slot].fingerprint, built.to_payload())

        monitor.on_success = finalize
        try:
            engine.map_points(run_tolerance_point, tolerance_tasks(), monitor)
        finally:
            monitor.on_success = None
        return results

    outcome_map = engine.map_points(run_tolerance_point, tolerance_tasks(), monitor)
    slots = sorted(outcome_map)
    outcomes = [outcome_map[slot] for slot in slots]
    if engine.inline_training_eval:
        accuracies = [
            outcome.accuracy if outcome.accuracy is not None else 0.0
            for outcome in outcomes
        ]
    else:
        accuracies = engine.evaluate_networks(
            [outcome.network for outcome in outcomes], setup
        )
    hardware = _run_hardware_stage(
        spec, setup, [outcome.network for outcome in outcomes], timings
    )
    for position, slot in enumerate(slots):
        results[points[slot].fingerprint] = build_point(
            outcomes[position], accuracies[position], hardware[position]
        )
    return results


def prepare_strength_base(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    baseline_network,
):
    """The λ sweep's shared phase: rank-clip one copy of the baseline.

    Every λ point trains from this clipped network; the graph models it as
    the ``clip`` node between the baseline and the point nodes.
    """
    layer_order = list(workload.clippable_layers)
    scale = workload.scale
    # Defensive copy: the caller's baseline is typically shared across
    # experiments and must stay bit-identical.
    clipped = convert_to_lowrank(copy.deepcopy(baseline_network), layers=layer_order)
    clip_config = RankClippingConfig(
        tolerance=spec.tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        layers=tuple(layer_order),
        method=spec.lowrank_method,
    )
    RankClipper(clip_config).run(
        clipped, spec.engine.shared_setup(setup).trainer_factory
    )
    return clipped


def make_strength_task(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    clipped,
    point: PlanPoint,
) -> StrengthPointTask:
    """Self-contained task payload for one λ group-deletion point."""
    scale = workload.scale
    config = GroupDeletionConfig(
        strength=point.value,
        iterations=scale.deletion_iterations,
        finetune_iterations=scale.finetune_iterations,
        include_small_matrices=spec.include_small_matrices,
    )
    return StrengthPointTask(
        index=point.index,
        strength=point.value,
        network=copy.deepcopy(clipped),
        setup=spec.engine.point_setup(setup, point.index),
        config=config,
        record_interval=scale.record_interval,
        structured_lasso=spec.engine.structured_lasso,
        memoize_routing=spec.engine.memoize_routing,
    )


def build_strength_point(outcome, accuracy: float, hardware) -> StrengthPoint:
    """Finished λ-point record from an outcome plus its evaluations."""
    return StrengthPoint(
        strength=outcome.strength,
        accuracy=accuracy,
        error=1.0 - accuracy,
        wire_fractions=outcome.wire_fractions,
        routing_area_fractions=outcome.routing_area_fractions,
        hardware=hardware,
    )


def absorb_cache_stats(cache_stats: Dict[str, int], outcome) -> None:
    """Fold one outcome's routing-cache counters into the sweep totals."""
    for key, value in (outcome.routing_cache_stats or {}).items():
        if key != "size":
            cache_stats[key] = cache_stats.get(key, 0) + value


def _run_strength_points(
    spec: ExperimentSpec,
    workload: Workload,
    setup: TrainingSetup,
    clipped,
    points: List[PlanPoint],
    timings: Dict[str, float],
    monitor: RunMonitor,
    journal=None,
):
    """Train the pending λ deletion points through the engine.

    ``clipped`` is the shared rank-clipped network from
    :func:`prepare_strength_base`.
    """
    engine = spec.engine

    # Generator, not list: the serial engine then keeps only one point's
    # network copy alive at a time (the parallel engine materializes them).
    def strength_tasks() -> Iterable[StrengthPointTask]:
        for point in points:
            yield make_strength_task(spec, workload, setup, clipped, point)

    cache_stats: Dict[str, int] = {}

    def absorb_stats(outcome) -> None:
        absorb_cache_stats(cache_stats, outcome)

    def build_point(outcome, accuracy, hardware) -> StrengthPoint:
        return build_strength_point(outcome, accuracy, hardware)

    results: Dict[str, StrengthPoint] = {}
    if journal is not None:
        # Journaled mode: finalize each point as it completes (see the
        # tolerance variant for the bit-identity argument).
        mapper = NetworkMapper()

        def finalize(slot: int, outcome) -> None:
            absorb_stats(outcome)
            if engine.inline_training_eval:
                accuracy = outcome.accuracy if outcome.accuracy is not None else 0.0
            else:
                accuracy = engine.evaluate_networks([outcome.network], setup)[0]
            hardware = _run_hardware_stage(
                spec, setup, [outcome.network], timings, mapper=mapper
            )[0]
            built = build_point(outcome, accuracy, hardware)
            results[points[slot].fingerprint] = built
            journal(points[slot].fingerprint, built.to_payload())

        monitor.on_success = finalize
        try:
            engine.run_strength_points(strength_tasks(), monitor)
        finally:
            monitor.on_success = None
        return results, cache_stats

    outcome_map = engine.run_strength_points(strength_tasks(), monitor)
    slots = sorted(outcome_map)
    outcomes = [outcome_map[slot] for slot in slots]
    if engine.inline_training_eval:
        accuracies = [
            outcome.accuracy if outcome.accuracy is not None else 0.0
            for outcome in outcomes
        ]
    else:
        accuracies = engine.evaluate_networks(
            [outcome.network for outcome in outcomes], setup
        )
    for outcome in outcomes:
        absorb_stats(outcome)
    hardware = _run_hardware_stage(
        spec, setup, [outcome.network for outcome in outcomes], timings
    )
    for position, slot in enumerate(slots):
        results[points[slot].fingerprint] = build_point(
            outcomes[position], accuracies[position], hardware[position]
        )
    return results, cache_stats
