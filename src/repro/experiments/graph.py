"""Explicit dependency-graph view of an experiment plan, and its executor.

:func:`build_graph` restructures a spec's :class:`~repro.experiments.plan.
ExperimentPlan` as a DAG of typed nodes — the shapes per kind::

    sweep / rank_clipping:   baseline ─► point:0 … point:N ─► assemble
    sweep / group_deletion:  baseline ─► clip ─► point:0 … point:N ─► assemble
    table1/3, figure3/5,
    baseline:                baseline ─► single:<kind> ─► assemble
    headline:                headline ─► assemble

Each node declares what it consumes and produces, so a scheduler
(:mod:`repro.scheduler`) can dispatch any *ready* node — and interleave
ready nodes of **different** specs — instead of running one spec's stages
as a hard-coded sequence.

:class:`GraphExecution` is the runtime.  It supports two execution modes
over the same node set:

* **batch mode** (:meth:`GraphExecution.run`, the :func:`~repro.experiments.
  plan.execute_spec` path): the point nodes execute as one engine stage —
  process fan-out, lockstep stacking, pool supervision, chaos injection all
  exactly as before.
* **node mode** (``run(node_mode=True)``, or ``start()`` /
  :meth:`GraphExecution.next_ready` / :meth:`GraphExecution.run_node`
  driven externally by the job scheduler): nodes execute one at a time.
  Point nodes still flow through the PR 7 resilience contract — the same
  :func:`~repro.experiments.resilience._serial_map` loop via
  :func:`~repro.experiments.resilience.supervised_slot`, with the batch
  path's slot numbering, retry policy, typed
  :class:`~repro.experiments.resilience.PointFailure` records, and journal
  appends — and finalize exactly like the journaled batch path (per-point
  evaluation + hardware simulation with a shared
  :class:`~repro.hardware.mapper.NetworkMapper`), which is documented and
  test-guarded bit-identical to the batched tail.  Strength sweeps thread
  one :class:`~repro.hardware.routing.RoutingAnalysisCache` across the
  job's point nodes in plan order (serial/lockstep specs) or give each
  node a private cache (parallel specs), so the assembled
  ``routing_cache_stats`` match the batch engine's exactly.

Both modes persist through the same content-addressed
:class:`~repro.experiments.store.RunStore` artifact merge, so a single-spec
graph run is bit-identical to the pre-graph ``execute_spec`` — the
acceptance test compares artifacts field by field.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ExperimentError, PointFailureError, RunInterrupted
from repro.experiments.headline import paper_headline_numbers
from repro.experiments.plan import (
    ExperimentContext,
    ExperimentPlan,
    ExperimentRun,
    PlanPoint,
    _merge_artifact,
    _resolve_workload,
    _run_hardware_stage,
    _run_strength_points,
    _run_tolerance_points,
    absorb_cache_stats,
    assemble_sweep_result,
    build_plan,
    build_single_result,
    build_strength_point,
    build_tolerance_point,
    make_strength_task,
    make_tolerance_task,
    prepare_strength_base,
    result_from_payload,
    result_to_payload,
    sweep_failure_payloads,
)
from repro.experiments.resilience import RunMonitor, supervised_slot
from repro.experiments.runner import run_strength_point, run_tolerance_point
from repro.experiments.spec import ExperimentSpec
from repro.experiments.training import train_baseline
from repro.hardware.mapper import NetworkMapper
from repro.obs import NULL_OBS, Observability
from repro.utils.logging import get_logger

logger = get_logger("experiments.graph")

#: Node kinds, in rough pipeline order.
NODE_KINDS = ("baseline", "clip", "point", "single", "headline", "assemble")

#: Node statuses.  Terminal: everything except "pending" and "running".
NODE_STATUSES = (
    "pending",
    "running",
    "done",
    "reused",
    "skipped",
    "failed",
    "cancelled",
)

#: Statuses that satisfy a downstream dependency unconditionally.
_SATISFIED = frozenset({"done", "reused", "skipped"})

#: Statuses a run can no longer leave.
_TERMINAL = frozenset({"done", "reused", "skipped", "failed", "cancelled"})


# ------------------------------------------------------------------- graph
@dataclass(frozen=True)
class GraphNode:
    """One typed unit of work with declared inputs and outputs.

    ``inputs`` are upstream node ids; ``consumes``/``produces`` name the
    values flowing along those edges (documentation + validation, the
    executor passes them in process).  Point-like nodes carry the
    :class:`~repro.experiments.plan.PlanPoint` they realize and its
    content fingerprint, which is what makes them individually resumable.
    """

    id: str
    kind: str
    label: str
    inputs: Tuple[str, ...] = ()
    consumes: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    fingerprint: str = ""
    point: Optional[PlanPoint] = None

    def __post_init__(self):
        if self.kind not in NODE_KINDS:
            raise ExperimentError(
                f"unknown graph node kind {self.kind!r}; expected one of {NODE_KINDS}"
            )


@dataclass(frozen=True)
class ExperimentGraph:
    """A spec's plan as an explicit DAG of :class:`GraphNode` s."""

    spec: ExperimentSpec
    plan: ExperimentPlan
    nodes: Tuple[GraphNode, ...]

    def __post_init__(self):
        ids = [node.id for node in self.nodes]
        if len(ids) != len(set(ids)):
            raise ExperimentError(f"duplicate graph node ids in {sorted(ids)}")
        known = set(ids)
        for node in self.nodes:
            missing = [dep for dep in node.inputs if dep not in known]
            if missing:
                raise ExperimentError(
                    f"node {node.id!r} depends on unknown node(s) {missing}"
                )
        # Kahn topological order; nodes are authored in order, but validate
        # anyway so hand-built graphs fail loudly on cycles.
        order: List[str] = []
        satisfied: set = set()
        remaining = list(self.nodes)
        while remaining:
            progressed = [n for n in remaining if all(d in satisfied for d in n.inputs)]
            if not progressed:
                raise ExperimentError(
                    f"experiment graph has a cycle among {[n.id for n in remaining]}"
                )
            for node in progressed:
                order.append(node.id)
                satisfied.add(node.id)
            remaining = [n for n in remaining if n.id not in satisfied]
        object.__setattr__(self, "_topo", tuple(order))
        object.__setattr__(self, "_by_id", {node.id: node for node in self.nodes})

    # ------------------------------------------------------------- queries
    def node(self, node_id: str) -> GraphNode:
        """The node with id ``node_id``."""
        by_id: Dict[str, GraphNode] = getattr(self, "_by_id")
        if node_id not in by_id:
            raise ExperimentError(
                f"unknown graph node {node_id!r}; nodes: {list(by_id)}"
            )
        return by_id[node_id]

    def topological_order(self) -> Tuple[str, ...]:
        """Node ids in a valid execution order."""
        return getattr(self, "_topo")

    def dependents(self, node_id: str) -> List[str]:
        """Ids of the nodes that consume ``node_id``'s outputs."""
        return [node.id for node in self.nodes if node_id in node.inputs]

    def point_nodes(self) -> List[GraphNode]:
        """The resumable per-point nodes (kind point/single/headline)."""
        return [n for n in self.nodes if n.kind in ("point", "single", "headline")]

    def describe(self) -> str:
        """Multi-line rendering of the DAG for logs and ``status``."""
        lines = [
            f"{self.spec.name} [{self.plan.fingerprint}]: "
            f"{len(self.nodes)} node(s), {self.plan.execution} execution"
        ]
        for node in self.nodes:
            deps = f" <- {', '.join(node.inputs)}" if node.inputs else ""
            lines.append(f"  [{node.kind}] {node.id}: {node.label}{deps}")
        return "\n".join(lines)


def build_graph(spec: ExperimentSpec) -> ExperimentGraph:
    """Expand ``spec`` into its typed dependency graph."""
    plan = build_plan(spec)
    nodes: List[GraphNode] = []
    if spec.kind == "headline":
        point = plan.points[0]
        nodes.append(
            GraphNode(
                id="headline",
                kind="headline",
                label="paper headline numbers",
                produces=("result",),
                fingerprint=point.fingerprint,
                point=point,
            )
        )
        assemble_inputs: Tuple[str, ...] = ("headline",)
    else:
        nodes.append(
            GraphNode(
                id="baseline",
                kind="baseline",
                label=f"baseline[{spec.workload}@{spec.scale}]",
                produces=("workload", "setup", "network", "accuracy"),
                fingerprint=plan.baseline_fingerprint,
            )
        )
        if spec.kind == "sweep":
            point_inputs: Tuple[str, ...] = ("baseline",)
            consumes: Tuple[str, ...] = ("workload", "setup", "network")
            if spec.method == "group_deletion":
                nodes.append(
                    GraphNode(
                        id="clip",
                        kind="clip",
                        label=f"clip[eps={spec.tolerance:g}]",
                        inputs=("baseline",),
                        consumes=("workload", "setup", "network"),
                        produces=("clipped",),
                    )
                )
                point_inputs = ("baseline", "clip")
                consumes = ("workload", "setup", "clipped")
            for point in plan.points:
                nodes.append(
                    GraphNode(
                        id=f"point:{point.index}",
                        kind="point",
                        label=point.label,
                        inputs=point_inputs,
                        consumes=consumes,
                        produces=("point",),
                        fingerprint=point.fingerprint,
                        point=point,
                    )
                )
            assemble_inputs = tuple(f"point:{p.index}" for p in plan.points)
        else:
            point = plan.points[0]
            nodes.append(
                GraphNode(
                    id=f"single:{spec.kind}",
                    kind="single",
                    label=point.label,
                    inputs=("baseline",),
                    consumes=("workload", "setup", "network", "accuracy"),
                    produces=("result",),
                    fingerprint=point.fingerprint,
                    point=point,
                )
            )
            assemble_inputs = (f"single:{spec.kind}",)
    nodes.append(
        GraphNode(
            id="assemble",
            kind="assemble",
            label=f"assemble[{spec.name}]",
            inputs=assemble_inputs,
            consumes=("point",) if spec.kind == "sweep" else ("result",),
            produces=("artifact",),
        )
    )
    return ExperimentGraph(spec=spec, plan=plan, nodes=tuple(nodes))


# ---------------------------------------------------------------- execution
class GraphExecution:
    """Stateful executor for one spec's graph.

    Drive it either with :meth:`run` (batch or node mode, to completion) or
    externally — :meth:`start`, then :meth:`run_node` over
    :meth:`next_ready` until :meth:`finished` — which is how the job
    scheduler interleaves nodes of different specs.  ``observer`` (called
    as ``observer(node, status, detail)`` on every status change) is the
    per-node event stream.

    ``install_signals=False`` (the scheduler's worker threads) skips the
    SIGINT drain handler, which only the main thread may install.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        context: Optional[ExperimentContext] = None,
        store=None,
        resume: bool = True,
        strict: bool = False,
        observer: Optional[Callable[[GraphNode, str, str], None]] = None,
        install_signals: bool = True,
        obs: Optional[Observability] = None,
        trace_context: Optional[Dict[str, Any]] = None,
    ):
        self.spec = spec
        self.graph = build_graph(spec)
        self.plan = self.graph.plan
        self.context = context or ExperimentContext()
        self.store = store
        self.resume = resume
        self.strict = strict
        self.observer = observer
        self.install_signals = install_signals
        self.obs = obs if obs is not None else NULL_OBS
        #: Extra fields stamped onto every node trace record (the scheduler
        #: sets the job id here, plus the queue depth at each dispatch).
        #: Mutable-by-owner is safe: at most one node per execution is in
        #: flight, so the owner only writes between dispatches.
        self.trace_context: Dict[str, Any] = dict(trace_context or {})
        self.status: Dict[str, str] = {node.id: "pending" for node in self.graph.nodes}
        self.timings: Dict[str, float] = {}
        self.monitor: Optional[RunMonitor] = None
        self.run_result: Optional[ExperimentRun] = None
        self._started: Optional[float] = None
        self._stored_points: Dict[str, Dict[str, Any]] = {}
        self._pending: List[PlanPoint] = []
        self._slots: Dict[str, int] = {}
        self._computed: Dict[str, Any] = {}
        self._cache_stats: Dict[str, int] = {}
        self._workload = None
        self._setup = None
        self._network = None
        self._accuracy: Optional[float] = None
        self._baseline_info: Optional[Dict[str, Any]] = None
        self._clipped = None
        self._single_result: Any = None
        self._mapper: Optional[NetworkMapper] = None
        self._routing_cache = None
        self._points_elapsed = 0.0
        self._terminal_at: Dict[str, float] = {}
        self._node_elapsed: Dict[str, float] = {}
        self._journal_writes = 0

    # ------------------------------------------------------------- plumbing
    def _set_status(self, node_id: str, status: str, detail: str = "") -> None:
        self.status[node_id] = status
        if status in _TERMINAL:
            # Ready→dispatch latency of downstream nodes is measured from the
            # moment their last input became available.
            self._terminal_at[node_id] = time.perf_counter()
        if self.observer is not None:
            self.observer(self.graph.node(node_id), status, detail)

    def _workload_resolved(self):
        if self._workload is None:
            self._workload = _resolve_workload(self.spec, self.context)
        return self._workload

    def _thread_routing_cache(self) -> bool:
        """Whether point nodes share one routing-analysis cache in plan order.

        Matches the batch engine's accounting exactly: the serial points
        path and the lockstep path share one cache across the sweep (the
        totals are order-insensitive — same query set, same unique-key
        count), while the parallel path gives every worker a private cache.
        """
        engine = self.spec.engine
        return bool(engine.memoize_routing) and self.plan.execution != "parallel"

    def _journal(self, point_fingerprint: str, payload: Dict[str, Any]) -> None:
        if self.store is not None:
            self.store.append_journal(
                self.plan.fingerprint, point_fingerprint, payload
            )
            self._journal_writes += 1

    # ---------------------------------------------------------------- start
    def start(self) -> None:
        """Resolve resume state and mark reusable/skippable nodes.

        When a complete artifact short-circuits the whole run,
        ``run_result`` is set immediately and every node is ``reused``.
        """
        self._started = time.perf_counter()
        spec, plan = self.spec, self.plan
        if self.store is not None and (
            self.context.workload is not None
            or self.context.baseline_network is not None
        ):
            # Fingerprints hash only the spec; externally-supplied workloads
            # or pre-trained baselines are invisible to them, so persisting
            # (or resuming) such a run would poison the store with results
            # the spec cannot reproduce.
            raise ExperimentError(
                "execute_spec cannot combine a store with a context-supplied "
                "workload or baseline network: point fingerprints hash only "
                "the spec. Run without a store, or register the workload and "
                "let the spec resolve it."
            )
        artifact = self.store.load(plan.fingerprint) if self.store is not None else None
        if (
            self.resume
            and artifact is not None
            and artifact.get("complete")
            and artifact.get("result") is not None
        ):
            result = result_from_payload(spec, artifact["result"])
            logger.info("resumed complete artifact %s", plan.fingerprint)
            for node in self.graph.nodes:
                self._set_status(node.id, "reused", "complete artifact")
            self.run_result = ExperimentRun(
                spec=spec,
                fingerprint=plan.fingerprint,
                result=result,
                payload=artifact["result"],
                computed_points=0,
                reused_points=len(plan.points),
                duration_s=time.perf_counter() - self._started,
                artifact_path=self.store.path(plan.fingerprint),
                timings=dict(artifact.get("timings", {})),
            )
            return

        if self.store is not None and self.resume:
            self._stored_points = self.store.lookup_points(
                point.fingerprint for point in plan.points
            )
            wanted = {point.fingerprint for point in plan.points}
            for fingerprint, journaled in self.store.load_journal(
                plan.fingerprint
            ).items():
                if fingerprint in wanted and fingerprint not in self._stored_points:
                    self._stored_points[fingerprint] = journaled
        elif self.store is not None:
            # --fresh recomputes everything: stale mid-run progress included.
            self.store.clear_journal(plan.fingerprint)

        if spec.kind == "sweep":
            self.monitor = RunMonitor(strict=self.strict)
            if self.install_signals:
                self.monitor.install_sigint()
            self._pending = [
                point
                for point in plan.points
                if point.fingerprint not in self._stored_points
            ]
            self._slots = {
                point.fingerprint: slot for slot, point in enumerate(self._pending)
            }
            for point in plan.points:
                if point.fingerprint in self._stored_points:
                    self._set_status(f"point:{point.index}", "reused", "stored point")
            if not self._pending:
                self._set_status("baseline", "skipped", "every point stored")
                if "clip" in self.status:
                    self._set_status("clip", "skipped", "every point stored")
            elif self._stored_points:
                logger.info(
                    "resuming sweep %s: %d/%d points stored",
                    plan.fingerprint,
                    len(self._stored_points),
                    len(plan.points),
                )
        elif spec.kind != "headline":
            # The headline node always recomputes (it is pure arithmetic);
            # single kinds reuse their one stored point.
            point = plan.points[0]
            if point.fingerprint in self._stored_points:
                self._set_status(f"single:{spec.kind}", "reused", "stored point")
                self._set_status("baseline", "skipped", "stored point")

    # ------------------------------------------------------------ readiness
    def _dep_satisfied(self, dep_id: str) -> bool:
        status = self.status[dep_id]
        if status in _SATISFIED:
            return True
        # A failed or interrupted point still satisfies `assemble`: partial
        # sweeps assemble whatever finished, failures ride the artifact.
        return self.graph.node(dep_id).kind == "point" and status in (
            "failed",
            "cancelled",
        )

    def next_ready(self) -> Optional[str]:
        """The first pending node whose inputs are all satisfied."""
        for node_id in self.graph.topological_order():
            if self.status[node_id] != "pending":
                continue
            node = self.graph.node(node_id)
            if all(self._dep_satisfied(dep) for dep in node.inputs):
                return node_id
        return None

    def pending_nodes(self) -> List[str]:
        """Every node not yet in a terminal state."""
        return [
            node_id
            for node_id in self.graph.topological_order()
            if self.status[node_id] not in _TERMINAL
        ]

    def finished(self) -> bool:
        """True once every node reached a terminal status."""
        return all(status in _TERMINAL for status in self.status.values())

    def cancel_pending(self, detail: str = "job cancelled") -> List[str]:
        """Mark every pending node cancelled (scheduler-side job cancel)."""
        cancelled = []
        for node_id in self.graph.topological_order():
            if self.status[node_id] == "pending":
                self._set_status(node_id, "cancelled", detail)
                cancelled.append(node_id)
        return cancelled

    # ------------------------------------------------------------ run one
    def run_node(self, node_id: str) -> str:
        """Execute one ready node; returns its terminal status."""
        node = self.graph.node(node_id)
        if self.status[node_id] != "pending":
            raise ExperimentError(
                f"node {node_id!r} is {self.status[node_id]!r}, not pending"
            )
        unmet = [dep for dep in node.inputs if not self._dep_satisfied(dep)]
        if unmet:
            raise ExperimentError(f"node {node_id!r} has unmet dependencies {unmet}")
        dispatched = time.perf_counter()
        ready_at = max(
            (
                self._terminal_at[dep]
                for dep in node.inputs
                if dep in self._terminal_at
            ),
            default=self._started if self._started is not None else dispatched,
        )
        ready_wait = max(dispatched - ready_at, 0.0)
        journal_before = self._journal_writes
        if (
            node.kind == "point"
            and self.monitor is not None
            and self.monitor.interrupted
        ):
            # Mirror the batch loop: after an interrupt, unreached points
            # are simply never run; the partial artifact records the rest.
            self._set_status(node_id, "cancelled", "interrupted before start")
            self._emit_node_trace(node, "cancelled", dispatched, ready_wait, journal_before)
            return "cancelled"
        self._set_status(node_id, "running")
        try:
            if node.kind == "baseline":
                self._run_baseline(node)
                status = "done"
            elif node.kind == "clip":
                self._run_clip(node)
                status = "done"
            elif node.kind == "point":
                status = self._run_point(node)
            elif node.kind == "single":
                self._run_single(node)
                status = "done"
            elif node.kind == "headline":
                self._single_result = paper_headline_numbers()
                status = "done"
            elif node.kind == "assemble":
                self._run_assemble(node)
                status = "done"
            else:  # pragma: no cover - GraphNode validates kinds
                raise ExperimentError(f"cannot execute node kind {node.kind!r}")
        except RunInterrupted:
            # The assemble node persisted the partial artifact before
            # raising; the node itself succeeded.
            self._set_status(node_id, "done", "interrupted; partial artifact persisted")
            self._emit_node_trace(node, "done", dispatched, ready_wait, journal_before)
            raise
        except Exception as error:
            self._set_status(node_id, "failed", f"{type(error).__name__}: {error}")
            self._emit_node_trace(node, "failed", dispatched, ready_wait, journal_before)
            raise
        self._set_status(node_id, status)
        self._emit_node_trace(node, status, dispatched, ready_wait, journal_before)
        return status

    def _emit_node_trace(
        self,
        node: GraphNode,
        status: str,
        dispatched: float,
        ready_wait: float,
        journal_before: int,
    ) -> None:
        """Per-node metrics + NodeTrace record on every run_node exit."""
        if not self.obs.enabled:
            return
        elapsed = time.perf_counter() - dispatched
        self._node_elapsed[node.id] = elapsed
        self.obs.metrics.histogram("graph.node_s").observe(elapsed)
        self.obs.metrics.counter(f"graph.nodes.{status}").inc()
        if not self.obs.tracer.enabled:
            return
        attempts = 1
        if node.kind == "point" and self.monitor is not None:
            slot = self._slots.get(node.point.fingerprint)
            failure = self.monitor.failures.get(slot) if slot is not None else None
            if failure is not None:
                attempts = failure.attempts
        self.obs.tracer.emit(
            "node",
            run=self.plan.fingerprint,
            node=node.id,
            node_kind=node.kind,
            label=node.label,
            status=status,
            attempts=attempts,
            retries=attempts - 1,
            # Node mode runs points in supervised serial slots, never a
            # process pool, so rebuilds are structurally zero here (batch
            # mode pools do not flow through run_node).
            pool_rebuilds=0,
            journal_flushes=self._journal_writes - journal_before,
            ready_wait_s=ready_wait,
            elapsed_s=elapsed,
            **self.trace_context,
        )

    # -------------------------------------------------------------- stages
    def _run_baseline(self, node: GraphNode) -> None:
        workload = self._workload_resolved()
        setup = self.context.setup
        network = self.context.baseline_network
        accuracy = self.context.baseline_accuracy
        if network is None or setup is None:
            t0 = time.perf_counter()
            network, accuracy, setup = train_baseline(workload)
            self.timings["baseline_s"] = round(time.perf_counter() - t0, 6)
        elif accuracy is None and self.spec.kind != "figure5":
            accuracy = setup.evaluate(network)
        self._setup, self._network, self._accuracy = setup, network, accuracy
        self._baseline_info = {
            "fingerprint": self.plan.baseline_fingerprint,
            "accuracy": accuracy,
        }

    def _accumulate_points_time(self, t0: float, hardware_before: float) -> None:
        # The hardware-eval stage runs inside the node window but books its
        # own hardware_s entry; points_s stays pure training/evaluation time.
        self._points_elapsed += (
            time.perf_counter()
            - t0
            - (self.timings.get("hardware_s", 0.0) - hardware_before)
        )
        self.timings["points_s"] = round(self._points_elapsed, 6)

    def _run_clip(self, node: GraphNode) -> None:
        t0 = time.perf_counter()
        hardware_before = self.timings.get("hardware_s", 0.0)
        self._clipped = prepare_strength_base(
            self.spec, self._workload_resolved(), self._setup, self._network
        )
        self._accumulate_points_time(t0, hardware_before)

    def _run_single(self, node: GraphNode) -> None:
        self._single_result = build_single_result(
            self.spec,
            self._workload_resolved(),
            self._setup,
            self._network,
            self._accuracy,
            self.timings,
        )

    def _run_point(self, node: GraphNode) -> str:
        """One sweep point under the full resilience contract (node mode)."""
        spec = self.spec
        engine = spec.engine
        point = node.point
        workload = self._workload_resolved()
        slot = self._slots[point.fingerprint]
        t0 = time.perf_counter()
        hardware_before = self.timings.get("hardware_s", 0.0)
        prepare = absorb = None
        if spec.method == "rank_clipping":
            task = make_tolerance_task(
                spec, workload, self._setup, self._network, point
            )
            point_fn = run_tolerance_point
        else:
            task = make_strength_task(
                spec, workload, self._setup, self._clipped, point
            )
            point_fn = run_strength_point
            if self._thread_routing_cache():
                if self._routing_cache is None:
                    from repro.hardware.routing import RoutingAnalysisCache

                    self._routing_cache = RoutingAnalysisCache()
                cache = self._routing_cache

                def prepare(attempt_task, _cache=cache):
                    attempt_task.routing_cache_entries = _cache.export_entries()

                def absorb(outcome, _cache=cache):
                    _cache.merge_entries(outcome.routing_cache_entries)

        outcomes = supervised_slot(
            engine, point_fn, task, self.monitor, slot=slot,
            prepare=prepare, absorb=absorb,
        )
        if slot not in outcomes:
            self._accumulate_points_time(t0, hardware_before)
            if self.monitor.interrupted and slot not in self.monitor.failures:
                return "cancelled"
            failure = self.monitor.failures.get(slot)
            raise_detail = (
                f"{failure.error_type}: {failure.message}" if failure else "failed"
            )
            self._set_status(node.id, "failed", raise_detail)
            return "failed"
        outcome = outcomes[slot]
        if spec.method != "rank_clipping":
            absorb_cache_stats(self._cache_stats, outcome)
        # Finalize exactly like the journaled batch path: per-point
        # evaluation + simulation (bit-identical to the batched tail) and a
        # durable journal append before the node reports done.
        if engine.inline_training_eval:
            accuracy = outcome.accuracy if outcome.accuracy is not None else 0.0
        else:
            accuracy = engine.evaluate_networks([outcome.network], self._setup)[0]
        if self._mapper is None:
            self._mapper = NetworkMapper()
        hardware = _run_hardware_stage(
            spec, self._setup, [outcome.network], self.timings, mapper=self._mapper
        )[0]
        if spec.method == "rank_clipping":
            built = build_tolerance_point(workload, outcome, accuracy, hardware)
        else:
            built = build_strength_point(outcome, accuracy, hardware)
        self._computed[point.fingerprint] = built
        self._journal(point.fingerprint, built.to_payload())
        self._accumulate_points_time(t0, hardware_before)
        return "done"

    # ------------------------------------------------------------- assemble
    def _run_assemble(self, node: GraphNode) -> None:
        if self.monitor is not None:
            self.monitor.restore_sigint()
        spec, plan = self.spec, self.plan
        stored = self._stored_points
        failure_payloads: Dict[str, Dict[str, Any]] = {}
        if spec.kind == "sweep":
            monitor = self.monitor
            if (
                self._pending
                and monitor.failures
                and not self._computed
                and not stored
                and not monitor.interrupted
            ):
                first = monitor.ordered_failures()[0]
                raise PointFailureError(
                    "every sweep point failed; first failure: "
                    f"{first.label} ({first.error_type}: {first.message})"
                )
            if self._pending:
                accuracy = self._accuracy
            else:
                # Every point was stored: the baseline accuracy the result
                # quotes comes from the context, a stored baseline record,
                # or (only if material is at hand) a pure re-evaluation.
                accuracy = self.context.baseline_accuracy
                if accuracy is None and self.store is not None:
                    accuracy = self.store.lookup_baseline(plan.baseline_fingerprint)
                if (
                    accuracy is None
                    and self.context.setup is not None
                    and self.context.baseline_network is not None
                ):
                    accuracy = self.context.setup.evaluate(
                        self.context.baseline_network
                    )
                if accuracy is not None:
                    self._baseline_info = {
                        "fingerprint": plan.baseline_fingerprint,
                        "accuracy": accuracy,
                    }
            result = assemble_sweep_result(
                spec,
                plan,
                self._workload_resolved().name,
                accuracy,
                self._computed,
                stored,
                self._cache_stats,
            )
            payload = result_to_payload(spec, result)
            new_points = {
                fingerprint: built.to_payload()
                for fingerprint, built in self._computed.items()
            }
            failure_payloads = sweep_failure_payloads(plan, stored, monitor)
        elif spec.kind == "headline":
            result = self._single_result
            payload = result_to_payload(spec, result)
            new_points = {plan.points[0].fingerprint: payload}
        else:
            point = plan.points[0]
            if point.fingerprint in stored:
                payload = stored[point.fingerprint]
                result = result_from_payload(spec, payload)
                new_points = {}
            else:
                result = self._single_result
                payload = result_to_payload(spec, result)
                new_points = {point.fingerprint: payload}

        duration = time.perf_counter() - self._started
        self.timings["total_s"] = round(duration, 6)
        observability = None
        if self.obs.enabled:
            # Non-fingerprinted stage/node time breakdown for show/compare.
            # None when observability is off, so the artifact is bit-identical
            # to an uninstrumented run.
            observability = {
                "stage_timings": dict(self.timings),
                "nodes": {
                    node_id: round(elapsed, 6)
                    for node_id, elapsed in sorted(self._node_elapsed.items())
                },
            }
        artifact_path = None
        if self.store is not None:
            def merge(existing, _new=new_points, _payload=payload):
                return _merge_artifact(
                    existing,
                    spec,
                    plan,
                    stored,
                    _new,
                    _payload,
                    self._baseline_info,
                    self.timings,
                    failure_payloads,
                    observability=observability,
                )

            artifact_path, artifact = self.store.update(plan.fingerprint, merge)
            if artifact.get("complete"):
                # Every journaled point now lives in the artifact proper.
                self.store.clear_journal(plan.fingerprint)
        if self.monitor is not None and self.monitor.interrupted:
            where = (
                f"partial artifact {artifact_path}"
                if artifact_path is not None
                else "no store attached; unpersisted progress was discarded"
            )
            error = RunInterrupted(f"run {plan.fingerprint} interrupted ({where})")
            error.fingerprint = plan.fingerprint
            error.artifact_path = artifact_path
            raise error
        self.run_result = ExperimentRun(
            spec=spec,
            fingerprint=plan.fingerprint,
            result=result,
            payload=payload,
            computed_points=len(new_points),
            reused_points=len(stored),
            duration_s=duration,
            artifact_path=artifact_path,
            timings=self.timings,
            failures=self.monitor.ordered_failures() if self.monitor is not None else [],
        )

    # ------------------------------------------------------------ batch mode
    def _run_batch(self) -> None:
        """The execute_spec path: point nodes run as one engine stage.

        Process fan-out, lockstep stacking, pool supervision and chaos
        injection behave exactly as before the graph existed — the stage
        functions are shared with the legacy executor verbatim.
        """
        spec, plan = self.spec, self.plan
        if spec.kind == "headline":
            self.run_node("headline")
        elif spec.kind == "sweep":
            if self._pending:
                self.run_node("baseline")
                journal = self._journal if self.store is not None else None
                hardware_before = self.timings.get("hardware_s", 0.0)
                t0 = time.perf_counter()
                if spec.method == "rank_clipping":
                    computed = _run_tolerance_points(
                        spec,
                        self._workload_resolved(),
                        self._setup,
                        self._network,
                        self._pending,
                        self.timings,
                        self.monitor,
                        journal,
                    )
                else:
                    self.run_node("clip")
                    computed, self._cache_stats = _run_strength_points(
                        spec,
                        self._workload_resolved(),
                        self._setup,
                        self._clipped,
                        self._pending,
                        self.timings,
                        self.monitor,
                        journal,
                    )
                self._computed.update(computed)
                self.timings["points_s"] = round(
                    time.perf_counter()
                    - t0
                    - (self.timings.get("hardware_s", 0.0) - hardware_before),
                    6,
                )
                for slot, point in enumerate(self._pending):
                    node_id = f"point:{point.index}"
                    if point.fingerprint in computed:
                        self._set_status(node_id, "done")
                    elif slot in self.monitor.failures:
                        failure = self.monitor.failures[slot]
                        self._set_status(
                            node_id,
                            "failed",
                            f"{failure.error_type}: {failure.message}",
                        )
                    else:
                        self._set_status(node_id, "cancelled", "interrupted")
        else:
            node_id = f"single:{spec.kind}"
            if self.status[node_id] == "pending":
                self.run_node("baseline")
                self.run_node(node_id)
        self.run_node("assemble")

    # ------------------------------------------------------------------ run
    def run(self, *, node_mode: bool = False) -> ExperimentRun:
        """Execute the whole graph and return the run record."""
        self.start()
        if self.run_result is not None:
            return self.run_result
        try:
            if node_mode:
                while not self.finished():
                    node_id = self.next_ready()
                    if node_id is None:  # pragma: no cover - DAG is validated
                        raise ExperimentError(
                            "graph deadlock: no ready node among "
                            f"{self.pending_nodes()}"
                        )
                    self.run_node(node_id)
            else:
                self._run_batch()
        finally:
            if self.monitor is not None:
                self.monitor.restore_sigint()
        return self.run_result


def run_graph(
    spec: ExperimentSpec,
    *,
    context: Optional[ExperimentContext] = None,
    store=None,
    resume: bool = True,
    strict: bool = False,
    observer: Optional[Callable[[GraphNode, str, str], None]] = None,
    node_mode: bool = False,
    install_signals: bool = True,
    obs: Optional[Observability] = None,
    trace_context: Optional[Dict[str, Any]] = None,
) -> ExperimentRun:
    """Run one spec through its graph (the ``execute_spec`` implementation)."""
    execution = GraphExecution(
        spec,
        context=context,
        store=store,
        resume=resume,
        strict=strict,
        observer=observer,
        install_signals=install_signals,
        obs=obs,
        trace_context=trace_context,
    )
    return execution.run(node_mode=node_mode)
