"""Experiment harnesses that regenerate every table and figure of the paper."""

from repro.experiments.figures import (
    Figure3Series,
    Figure5Series,
    SparsityMap,
    run_figure3,
    run_figure5,
    sparsity_maps,
)
from repro.experiments.headline import (
    PAPER_CONVNET_WIRE_PERCENT,
    PAPER_HEADLINE,
    PAPER_LENET_WIRE_PERCENT,
    HeadlineNumbers,
    crossbar_area_percent,
    mean_wire_percent,
    paper_headline_numbers,
    routing_area_percent_from_wires,
)
from repro.experiments.presets import PAPER, SMALL, TINY, ExperimentScale, get_scale
from repro.experiments.runner import (
    StrengthPointOutcome,
    StrengthPointTask,
    SweepEngine,
    TolerancePointOutcome,
    TolerancePointTask,
    run_strength_point,
    run_tolerance_point,
)
from repro.experiments.sweeps import (
    StrengthPoint,
    StrengthSweepResult,
    TolerancePoint,
    ToleranceSweepResult,
    sweep_group_deletion,
    sweep_rank_clipping,
)
from repro.experiments.table1 import Table1Result, Table1Row, run_table1
from repro.experiments.table3 import Table3Result, Table3Row, run_table3
from repro.experiments.training import TrainingSetup, train_baseline
from repro.experiments.workloads import (
    Workload,
    convnet_workload,
    get_workload,
    lenet_workload,
    mlp_workload,
)

__all__ = [
    "ExperimentScale",
    "TINY",
    "SMALL",
    "PAPER",
    "get_scale",
    "Workload",
    "lenet_workload",
    "convnet_workload",
    "mlp_workload",
    "get_workload",
    "TrainingSetup",
    "train_baseline",
    "SweepEngine",
    "TolerancePointTask",
    "TolerancePointOutcome",
    "StrengthPointTask",
    "StrengthPointOutcome",
    "run_tolerance_point",
    "run_strength_point",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Table3Result",
    "Table3Row",
    "run_table3",
    "Figure3Series",
    "Figure5Series",
    "SparsityMap",
    "run_figure3",
    "run_figure5",
    "sparsity_maps",
    "TolerancePoint",
    "ToleranceSweepResult",
    "sweep_rank_clipping",
    "StrengthPoint",
    "StrengthSweepResult",
    "sweep_group_deletion",
    "HeadlineNumbers",
    "paper_headline_numbers",
    "crossbar_area_percent",
    "routing_area_percent_from_wires",
    "mean_wire_percent",
    "PAPER_HEADLINE",
    "PAPER_LENET_WIRE_PERCENT",
    "PAPER_CONVNET_WIRE_PERCENT",
]
