"""Experiment harnesses that regenerate every table and figure of the paper.

The declarative API is the primary entry point: build (or look up) an
:class:`ExperimentSpec`, execute it with :func:`execute_spec` against a
:class:`RunStore`, and every paper artifact runs through one engine-backed,
resumable path::

    from repro.experiments import REGISTRY, RunStore, execute_spec

    spec = REGISTRY.get("table1", workload="mlp", scale="tiny")
    run = execute_spec(spec, store=RunStore("runs"))
    print(run.result.format_table())

The same workflow is available from the shell as ``python -m repro``
(``run`` / ``list`` / ``show`` / ``compare`` / ``bench``), and as a
long-running service via the job verbs (``serve-jobs`` / ``submit`` /
``status`` / ``cancel`` / ``watch``, see :mod:`repro.scheduler`).
``execute_spec`` itself is a thin wrapper over a single-spec run of the
experiment graph (:mod:`repro.experiments.graph`), which exposes the same
pipeline as an explicit DAG of typed nodes.  The imperative entry points
(``run_table1``, ``sweep_rank_clipping``, …) remain as deprecation shims
over the declarative core.
"""

from repro.experiments.graph import (
    ExperimentGraph,
    GraphExecution,
    GraphNode,
    build_graph,
    run_graph,
)

from repro.experiments.figures import (
    Figure3Series,
    Figure5Series,
    HardwareAccuracySeries,
    SparsityMap,
    run_figure3,
    run_figure5,
    sparsity_maps,
)
from repro.experiments.headline import (
    PAPER_CONVNET_WIRE_PERCENT,
    PAPER_HEADLINE,
    PAPER_LENET_WIRE_PERCENT,
    HeadlineNumbers,
    crossbar_area_percent,
    mean_wire_percent,
    paper_headline_numbers,
    routing_area_percent_from_wires,
)
from repro.experiments.plan import (
    BaselineResult,
    ExperimentContext,
    ExperimentPlan,
    ExperimentRun,
    PlanPoint,
    build_plan,
    execute_spec,
    render_result,
    result_from_payload,
    result_to_payload,
)
from repro.experiments.presets import PAPER, SMALL, TINY, ExperimentScale, get_scale, scale_names
from repro.experiments.registry import REGISTRY, ExperimentRegistry
from repro.experiments.runner import (
    StrengthPointOutcome,
    StrengthPointTask,
    SweepEngine,
    TolerancePointOutcome,
    TolerancePointTask,
    run_strength_point,
    run_tolerance_point,
)
from repro.experiments.spec import (
    KINDS,
    METHODS,
    ExperimentSpec,
    baseline_fingerprint,
    point_fingerprint,
    spec_for_workload,
)
from repro.experiments.store import (
    RunStore,
    compare_artifacts,
    default_store_root,
    render_artifact,
)
from repro.experiments.sweeps import (
    StrengthPoint,
    StrengthSweepResult,
    TolerancePoint,
    ToleranceSweepResult,
    sweep_group_deletion,
    sweep_rank_clipping,
)
from repro.experiments.table1 import Table1Result, Table1Row, run_table1
from repro.experiments.table3 import Table3Result, Table3Row, run_table3
from repro.experiments.training import TrainingSetup, train_baseline
from repro.experiments.workloads import (
    Workload,
    convnet_workload,
    get_workload,
    lenet_workload,
    mlp_workload,
    workload_names,
)

__all__ = [
    # Declarative experiment API
    "ExperimentSpec",
    "KINDS",
    "METHODS",
    "spec_for_workload",
    "point_fingerprint",
    "baseline_fingerprint",
    "ExperimentRegistry",
    "REGISTRY",
    "ExperimentPlan",
    "PlanPoint",
    "build_plan",
    "ExperimentContext",
    "ExperimentRun",
    "execute_spec",
    "ExperimentGraph",
    "GraphNode",
    "GraphExecution",
    "build_graph",
    "run_graph",
    "BaselineResult",
    "render_result",
    "result_to_payload",
    "result_from_payload",
    "RunStore",
    "default_store_root",
    "compare_artifacts",
    "render_artifact",
    # Scales and workloads
    "ExperimentScale",
    "TINY",
    "SMALL",
    "PAPER",
    "get_scale",
    "scale_names",
    "Workload",
    "lenet_workload",
    "convnet_workload",
    "mlp_workload",
    "get_workload",
    "workload_names",
    "TrainingSetup",
    "train_baseline",
    # Engine
    "SweepEngine",
    "TolerancePointTask",
    "TolerancePointOutcome",
    "StrengthPointTask",
    "StrengthPointOutcome",
    "run_tolerance_point",
    "run_strength_point",
    # Result views and legacy entry points
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Table3Result",
    "Table3Row",
    "run_table3",
    "Figure3Series",
    "Figure5Series",
    "HardwareAccuracySeries",
    "SparsityMap",
    "run_figure3",
    "run_figure5",
    "sparsity_maps",
    "TolerancePoint",
    "ToleranceSweepResult",
    "sweep_rank_clipping",
    "StrengthPoint",
    "StrengthSweepResult",
    "sweep_group_deletion",
    "HeadlineNumbers",
    "paper_headline_numbers",
    "crossbar_area_percent",
    "routing_area_percent_from_wires",
    "mean_wire_percent",
    "PAPER_HEADLINE",
    "PAPER_LENET_WIRE_PERCENT",
    "PAPER_CONVNET_WIRE_PERCENT",
]
