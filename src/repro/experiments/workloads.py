"""Workload definitions: network + dataset pairs used by the experiments.

A :class:`Workload` bundles everything an experiment runner needs to train a
network: a builder for the dense network, a dataset factory, the list of
clippable layers and (for reporting) the layer weight-matrix shapes.  The two
paper workloads — LeNet on (synthetic) MNIST and ConvNet on (synthetic)
CIFAR-10 — are provided at any :class:`~repro.experiments.presets.ExperimentScale`,
plus a tiny MLP workload for fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.data import ArrayDataset, make_cifar10_like, make_gaussian_blobs, make_mnist_like
from repro.data.transforms import train_test_statistics
from repro.experiments.presets import ExperimentScale, get_scale
from repro.models import (
    ConvNetConfig,
    LeNetConfig,
    build_convnet,
    build_lenet,
    build_mlp,
    mlp_layer_shapes,
)
from repro.nn.network import Sequential
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class Workload:
    """One (network family, dataset) pair at a fixed experiment scale."""

    name: str
    scale: ExperimentScale
    build_network: Callable[[int], Sequential]
    make_data: Callable[[], Tuple[ArrayDataset, ArrayDataset]]
    clippable_layers: Tuple[str, ...]
    layer_shapes: Dict[str, Tuple[int, int]]

    def build(self, seed: int = 0) -> Sequential:
        """Build a freshly initialized dense network."""
        return self.build_network(seed)

    def data(self) -> Tuple[ArrayDataset, ArrayDataset]:
        """Build the (train, test) dataset pair."""
        return self.make_data()


def _lenet_config(scale: ExperimentScale) -> LeNetConfig:
    # A full-scale preset uses the paper topology (and the paper's 28x28
    # images) regardless of the preset's nominal image size.
    if scale.network_scale >= 1.0:
        return LeNetConfig.paper()
    return LeNetConfig.small(image_size=scale.image_size, scale=scale.network_scale)


def _convnet_config(scale: ExperimentScale) -> ConvNetConfig:
    if scale.network_scale >= 1.0:
        return ConvNetConfig.paper()
    return ConvNetConfig.small(image_size=scale.image_size, scale=scale.network_scale)


def lenet_workload(scale="small") -> Workload:
    """LeNet on the synthetic MNIST substitute at the given scale."""
    scale = get_scale(scale)
    config = _lenet_config(scale)

    def make_data():
        train, test = make_mnist_like(
            train_samples=scale.train_samples,
            test_samples=scale.test_samples,
            image_size=config.image_size,
            seed=scale.seed,
        )
        return train_test_statistics(train, test)

    return Workload(
        name="lenet-mnist",
        scale=scale,
        build_network=lambda seed: build_lenet(config, rng=as_rng(seed)),
        make_data=make_data,
        clippable_layers=config.clippable_layers(),
        layer_shapes=config.layer_shapes(),
    )


def convnet_workload(scale="small") -> Workload:
    """ConvNet on the synthetic CIFAR-10 substitute at the given scale."""
    scale = get_scale(scale)
    config = _convnet_config(scale)

    def make_data():
        train, test = make_cifar10_like(
            train_samples=scale.train_samples,
            test_samples=scale.test_samples,
            image_size=config.image_size,
            seed=scale.seed + 1,
        )
        return train_test_statistics(train, test)

    return Workload(
        name="convnet-cifar10",
        scale=scale,
        build_network=lambda seed: build_convnet(config, rng=as_rng(seed)),
        make_data=make_data,
        clippable_layers=config.clippable_layers(),
        layer_shapes=config.layer_shapes(),
    )


def mlp_workload(scale="tiny", *, input_dim: int = 64, hidden: Tuple[int, ...] = (96, 48)) -> Workload:
    """A fast fully-connected workload on Gaussian blobs (for tests/examples)."""
    scale = get_scale(scale)

    def make_data():
        samples_per_class = max(10, (scale.train_samples + scale.test_samples) // 10)
        train, test = make_gaussian_blobs(
            num_classes=10,
            num_features=input_dim,
            samples_per_class=samples_per_class,
            separation=3.5,
            seed=scale.seed,
        )
        return train_test_statistics(train, test)

    shapes = mlp_layer_shapes(input_dim, list(hidden), 10)
    clippable = tuple(sorted(shapes.keys()))[:-1]
    return Workload(
        name="mlp-blobs",
        scale=scale,
        build_network=lambda seed: build_mlp(input_dim, list(hidden), 10, rng=as_rng(seed)),
        make_data=make_data,
        clippable_layers=clippable,
        layer_shapes=shapes,
    )


_WORKLOADS = {
    "lenet": lenet_workload,
    "lenet-mnist": lenet_workload,
    "convnet": convnet_workload,
    "convnet-cifar10": convnet_workload,
    "mlp": mlp_workload,
    "mlp-blobs": mlp_workload,
}


def workload_names() -> Tuple[str, ...]:
    """Registered workload names, aliases included (for CLIs and validation)."""
    return tuple(sorted(_WORKLOADS))


def get_workload(name: str, scale="small") -> Workload:
    """Look up a workload factory by name and instantiate it at ``scale``."""
    key = str(name).lower()
    if key not in _WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; expected one of {sorted(set(_WORKLOADS))}")
    return _WORKLOADS[key](scale)
