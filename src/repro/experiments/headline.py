"""Headline numbers of the paper's abstract, in closed form and measured.

The abstract's claims are:

* rank clipping reduces total crossbar area to **13.62 %** (LeNet) and
  **51.81 %** (ConvNet) with no accuracy loss;
* group connection deletion reduces routing area to **8.1 %** (LeNet) and
  **52.06 %** (ConvNet).

Given the per-layer ranks of Table 1 and the per-layer remaining-wire
percentages of Table 3, these follow *in closed form* from the hardware
model (crossbar area ∝ cells, routing area ∝ wires², layer-wise averaging).
:func:`paper_headline_numbers` recomputes them from the paper's reported
ranks/wire percentages through our hardware model — a strong consistency
check that the model matches the paper's — while the measured pipeline
results come from the Table 1/Table 3 harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.hardware.area import network_area_fraction
from repro.models.convnet import PAPER_CONVNET_RANKS, PAPER_CONVNET_SHAPES
from repro.models.lenet import PAPER_LENET_RANKS, PAPER_LENET_SHAPES
from repro.nn.dtype import as_float

#: Remaining routing wires per big matrix reported in Table 3 (percent).
PAPER_LENET_WIRE_PERCENT: Dict[str, float] = {
    "conv2_u": 47.5,
    "fc1_u": 24.8,
    "fc1_v": 6.7,
    "fc_last": 18.0,
}

PAPER_CONVNET_WIRE_PERCENT: Dict[str, float] = {
    "conv1_u": 83.3,
    "conv2_u": 40.5,
    "conv3_u": 74.4,
    "fc_last": 81.9,
}

#: Abstract / Section 4 headline values, for comparison in reports and tests.
PAPER_HEADLINE = {
    "lenet_crossbar_area_percent": 13.62,
    "convnet_crossbar_area_percent": 51.81,
    "lenet_routing_area_percent": 8.1,
    "convnet_routing_area_percent": 52.06,
    "lenet_svd_crossbar_area_percent": 32.97,
    "convnet_svd_crossbar_area_percent": 55.64,
    "convnet_mean_wire_percent": 70.03,
}


def crossbar_area_percent(shapes: Dict[str, tuple], ranks: Dict[str, int]) -> float:
    """Total crossbar area (percent of dense) for given layer shapes and ranks."""
    return 100.0 * network_area_fraction(shapes, ranks)


def routing_area_percent_from_wires(wire_percent: Dict[str, float]) -> float:
    """Layer-wise average routing area (percent) from remaining-wire percentages.

    Routing area of a layer scales with the square of its wire count
    (Eq. 8), and the paper averages the per-layer reductions.
    """
    if not wire_percent:
        raise ValueError("wire_percent must not be empty")
    fractions = as_float(list(wire_percent.values())) / 100.0
    return float(100.0 * np.mean(fractions**2))


def mean_wire_percent(wire_percent: Dict[str, float]) -> float:
    """Layer-wise average remaining-wire percentage."""
    if not wire_percent:
        raise ValueError("wire_percent must not be empty")
    return float(np.mean(list(wire_percent.values())))


@dataclass(frozen=True)
class HeadlineNumbers:
    """Closed-form headline numbers computed through our hardware model."""

    lenet_crossbar_area_percent: float
    convnet_crossbar_area_percent: float
    lenet_routing_area_percent: float
    convnet_routing_area_percent: float
    lenet_mean_wire_percent: float
    convnet_mean_wire_percent: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for printing and serialization."""
        return {
            "lenet_crossbar_area_percent": self.lenet_crossbar_area_percent,
            "convnet_crossbar_area_percent": self.convnet_crossbar_area_percent,
            "lenet_routing_area_percent": self.lenet_routing_area_percent,
            "convnet_routing_area_percent": self.convnet_routing_area_percent,
            "lenet_mean_wire_percent": self.lenet_mean_wire_percent,
            "convnet_mean_wire_percent": self.convnet_mean_wire_percent,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "HeadlineNumbers":
        """Rebuild from :meth:`as_dict` output (stored run artifacts)."""
        return cls(
            lenet_crossbar_area_percent=float(payload["lenet_crossbar_area_percent"]),
            convnet_crossbar_area_percent=float(payload["convnet_crossbar_area_percent"]),
            lenet_routing_area_percent=float(payload["lenet_routing_area_percent"]),
            convnet_routing_area_percent=float(payload["convnet_routing_area_percent"]),
            lenet_mean_wire_percent=float(payload["lenet_mean_wire_percent"]),
            convnet_mean_wire_percent=float(payload["convnet_mean_wire_percent"]),
        )

    def format_table(self) -> str:
        """Side-by-side comparison against the paper's reported values."""
        rows = [
            ("LeNet crossbar area %", self.lenet_crossbar_area_percent, PAPER_HEADLINE["lenet_crossbar_area_percent"]),
            ("ConvNet crossbar area %", self.convnet_crossbar_area_percent, PAPER_HEADLINE["convnet_crossbar_area_percent"]),
            ("LeNet routing area %", self.lenet_routing_area_percent, PAPER_HEADLINE["lenet_routing_area_percent"]),
            ("ConvNet routing area %", self.convnet_routing_area_percent, PAPER_HEADLINE["convnet_routing_area_percent"]),
            ("ConvNet mean wire %", self.convnet_mean_wire_percent, PAPER_HEADLINE["convnet_mean_wire_percent"]),
        ]
        header = f"{'quantity':<28}{'model':>10}{'paper':>10}"
        lines = ["Headline numbers (hardware model vs paper)", header, "-" * len(header)]
        for name, ours, paper in rows:
            lines.append(f"{name:<28}{ours:>10.2f}{paper:>10.2f}")
        return "\n".join(lines)


def paper_headline_numbers() -> HeadlineNumbers:
    """Recompute the abstract's numbers from Table 1 ranks and Table 3 wires."""
    return HeadlineNumbers(
        lenet_crossbar_area_percent=crossbar_area_percent(
            PAPER_LENET_SHAPES, PAPER_LENET_RANKS
        ),
        convnet_crossbar_area_percent=crossbar_area_percent(
            PAPER_CONVNET_SHAPES, PAPER_CONVNET_RANKS
        ),
        lenet_routing_area_percent=routing_area_percent_from_wires(PAPER_LENET_WIRE_PERCENT),
        convnet_routing_area_percent=routing_area_percent_from_wires(
            PAPER_CONVNET_WIRE_PERCENT
        ),
        lenet_mean_wire_percent=mean_wire_percent(PAPER_LENET_WIRE_PERCENT),
        convnet_mean_wire_percent=mean_wire_percent(PAPER_CONVNET_WIRE_PERCENT),
    )
