"""Sweep result views (Figures 6, 7 and 8) and the legacy sweep entry points.

* Figure 6 — remaining ranks of the convolutional layers versus the tolerable
  clipping error ``ε`` (with the achieved accuracy).
* Figure 7 — per-layer and total crossbar area versus classification error,
  swept over ``ε`` (LeNet and ConvNet panels).
* Figure 8 — remaining routing wires and routing area versus classification
  error, swept over the group-Lasso strength ``λ`` (ConvNet).

The sweep *execution* lives in the declarative core
(:mod:`repro.experiments.plan`): an :class:`~repro.experiments.spec.ExperimentSpec`
with ``kind="sweep"`` expands into engine point tasks, runs serial /
process-fanned / lockstep per its engine policy, and persists per-point
artifacts through the run store.  This module keeps the result dataclasses —
including their table renderings and JSON payload round-trips — plus
:func:`sweep_rank_clipping` / :func:`sweep_group_deletion` as deprecation
shims that lift their arguments into a spec and return the executed result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.runner import SweepEngine
from repro.experiments.training import TrainingSetup
from repro.experiments.workloads import Workload


# ------------------------------------------------------------------- hardware
def _hardware_from_payload(payload: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Simulated-accuracy block of a point payload (absent → ``None``)."""
    hardware = payload.get("hardware")
    if hardware is None:
        return None
    return {label: float(value) for label, value in hardware.items()}


def hardware_labels(points: Sequence) -> List[str]:
    """Device-corner labels present in a point list, first-seen order."""
    labels: List[str] = []
    for point in points:
        for label in getattr(point, "hardware", None) or {}:
            if label not in labels:
                labels.append(label)
    return labels


def _hardware_columns(points: Sequence) -> tuple:
    """``(header, per-point cell strings)`` for the sweep tables."""
    labels = hardware_labels(points)
    widths = [max(14, len(label) + 5) for label in labels]
    header = "".join(
        f"{f'hw {label}':>{width}}" for label, width in zip(labels, widths)
    )
    cells = []
    for point in points:
        hardware = getattr(point, "hardware", None) or {}
        cells.append(
            "".join(
                f"{hardware[label]:>{width}.3f}" if label in hardware else f"{'-':>{width}}"
                for label, width in zip(labels, widths)
            )
        )
    return header, cells


# ----------------------------------------------------------------- Figure 6 / 7
@dataclass(frozen=True)
class TolerancePoint:
    """One ε point of the rank-clipping sweep.

    ``hardware`` optionally carries the point network's simulated accuracy
    per device corner (``HardwareConfig.label`` → accuracy), filled in when
    the owning spec has a ``hardware`` section.
    """

    tolerance: float
    accuracy: float
    error: float
    ranks: Dict[str, int]
    layer_area_fractions: Dict[str, float]
    total_area_fraction: float
    hardware: Optional[Dict[str, float]] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts."""
        payload = {
            "tolerance": self.tolerance,
            "accuracy": self.accuracy,
            "error": self.error,
            "ranks": dict(self.ranks),
            "layer_area_fractions": dict(self.layer_area_fractions),
            "total_area_fraction": self.total_area_fraction,
        }
        if self.hardware is not None:
            payload["hardware"] = dict(self.hardware)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TolerancePoint":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            tolerance=float(payload["tolerance"]),
            accuracy=float(payload["accuracy"]),
            error=float(payload["error"]),
            ranks={name: int(rank) for name, rank in payload["ranks"].items()},
            layer_area_fractions={
                name: float(value)
                for name, value in payload["layer_area_fractions"].items()
            },
            total_area_fraction=float(payload["total_area_fraction"]),
            hardware=_hardware_from_payload(payload),
        )


@dataclass
class ToleranceSweepResult:
    """Rank/area versus tolerance sweep (data behind Figures 6 and 7)."""

    workload_name: str
    points: List[TolerancePoint] = field(default_factory=list)
    baseline_accuracy: Optional[float] = None

    def tolerances(self) -> List[float]:
        """The swept ε values in run order."""
        return [p.tolerance for p in self.points]

    def ranks_series(self, layer: str) -> List[int]:
        """Remaining rank of one layer across the sweep (Figure 6 stems)."""
        return [p.ranks[layer] for p in self.points]

    def area_series(self, layer: Optional[str] = None) -> List[float]:
        """Crossbar-area fraction across the sweep (per layer or total)."""
        if layer is None:
            return [p.total_area_fraction for p in self.points]
        return [p.layer_area_fractions[layer] for p in self.points]

    def error_series(self) -> List[float]:
        """Classification error across the sweep (Figure 7's x-axis)."""
        return [p.error for p in self.points]

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts."""
        return {
            "workload_name": self.workload_name,
            "baseline_accuracy": self.baseline_accuracy,
            "points": [p.to_payload() for p in self.points],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ToleranceSweepResult":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            workload_name=payload["workload_name"],
            baseline_accuracy=payload.get("baseline_accuracy"),
            points=[TolerancePoint.from_payload(p) for p in payload.get("points", [])],
        )

    def format_table(self) -> str:
        """Text rendering of the sweep.

        Layer columns are the union over all points; a point missing a layer
        (e.g. a partially-recorded run) renders stub cells instead of
        raising.
        """
        layers = sorted({layer for p in self.points for layer in p.ranks})
        hw_header, hw_cells = _hardware_columns(self.points)
        header = (
            f"{'eps':>8}{'error':>9}{'total%':>9}"
            + "".join(f"{f'{l} K':>9}" for l in layers)
            + "".join(f"{f'{l} %':>9}" for l in layers)
            + hw_header
        )
        lines = [f"Tolerance sweep ({self.workload_name})", header, "-" * len(header)]
        for p, hw in zip(self.points, hw_cells):
            ranks = "".join(
                f"{p.ranks[l]:>9}" if l in p.ranks else f"{'-':>9}" for l in layers
            )
            areas = "".join(
                f"{100 * p.layer_area_fractions[l]:>8.1f}%"
                if l in p.layer_area_fractions
                else f"{'-':>9}"
                for l in layers
            )
            lines.append(
                f"{p.tolerance:>8.3f}{p.error:>9.3f}{100 * p.total_area_fraction:>8.1f}%"
                f"{ranks}{areas}{hw}"
            )
        return "\n".join(lines)


def sweep_rank_clipping(
    workload: Workload,
    tolerances: Sequence[float],
    *,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
    method: str = "pca",
    engine: Optional[SweepEngine] = None,
) -> ToleranceSweepResult:
    """Run rank clipping at each tolerance (deprecated imperative entry point).

    .. deprecated::
        Build an :class:`~repro.experiments.spec.ExperimentSpec` with
        ``kind="sweep", method="rank_clipping"`` and call
        :func:`~repro.experiments.plan.execute_spec` (or use
        ``python -m repro run``) — that path adds artifact persistence and
        point-level resume.  This shim lifts its arguments into the same
        spec and returns the identical result.
    """
    if not tolerances:
        raise ValueError("tolerances must contain at least one value")
    from repro.experiments.plan import (
        ExperimentContext,
        execute_spec,
        warn_deprecated_entry_point,
    )
    from repro.experiments.spec import spec_for_workload

    warn_deprecated_entry_point(
        "sweep_rank_clipping", 'ExperimentSpec(kind="sweep", method="rank_clipping")'
    )
    spec = spec_for_workload(
        "sweep",
        workload,
        method="rank_clipping",
        grid=tuple(float(t) for t in tolerances),
        lowrank_method=method,
        engine=engine,
    )
    run = execute_spec(
        spec,
        context=ExperimentContext(
            workload=workload,
            setup=setup,
            baseline_network=baseline_network,
            baseline_accuracy=baseline_accuracy,
        ),
    )
    return run.result


# --------------------------------------------------------------------- Figure 8
@dataclass(frozen=True)
class StrengthPoint:
    """One λ point of the group-deletion sweep.

    ``hardware`` optionally carries the point network's simulated accuracy
    per device corner (``HardwareConfig.label`` → accuracy), filled in when
    the owning spec has a ``hardware`` section.
    """

    strength: float
    accuracy: float
    error: float
    wire_fractions: Dict[str, float]
    routing_area_fractions: Dict[str, float]
    hardware: Optional[Dict[str, float]] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts."""
        payload = {
            "strength": self.strength,
            "accuracy": self.accuracy,
            "error": self.error,
            "wire_fractions": dict(self.wire_fractions),
            "routing_area_fractions": dict(self.routing_area_fractions),
        }
        if self.hardware is not None:
            payload["hardware"] = dict(self.hardware)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StrengthPoint":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            strength=float(payload["strength"]),
            accuracy=float(payload["accuracy"]),
            error=float(payload["error"]),
            wire_fractions={
                name: float(value) for name, value in payload["wire_fractions"].items()
            },
            routing_area_fractions={
                name: float(value)
                for name, value in payload["routing_area_fractions"].items()
            },
            hardware=_hardware_from_payload(payload),
        )


@dataclass
class StrengthSweepResult:
    """Routing wires/area versus λ sweep (data behind Figure 8).

    ``routing_cache_stats`` aggregates the hit/miss counters of the points'
    memoized routing analyses (zeros when memoization was disabled, and only
    freshly-trained points contribute on a resumed run).
    """

    workload_name: str
    points: List[StrengthPoint] = field(default_factory=list)
    baseline_accuracy: Optional[float] = None
    routing_cache_stats: Dict[str, int] = field(default_factory=dict)

    def strengths(self) -> List[float]:
        """The swept λ values in run order."""
        return [p.strength for p in self.points]

    def error_series(self) -> List[float]:
        """Classification error across the sweep (Figure 8's x-axis)."""
        return [p.error for p in self.points]

    def wire_series(self, matrix: str) -> List[float]:
        """Remaining-wire fraction of one matrix across the sweep."""
        return [p.wire_fractions[matrix] for p in self.points]

    def routing_area_series(self, matrix: str) -> List[float]:
        """Remaining routing-area fraction of one matrix across the sweep."""
        return [p.routing_area_fractions[matrix] for p in self.points]

    def matrices(self) -> List[str]:
        """Matrix names present in the sweep (union over all points)."""
        return sorted({name for p in self.points for name in p.wire_fractions})

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts."""
        return {
            "workload_name": self.workload_name,
            "baseline_accuracy": self.baseline_accuracy,
            "routing_cache_stats": dict(self.routing_cache_stats),
            "points": [p.to_payload() for p in self.points],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "StrengthSweepResult":
        """Rebuild from :meth:`to_payload` output."""
        return cls(
            workload_name=payload["workload_name"],
            baseline_accuracy=payload.get("baseline_accuracy"),
            routing_cache_stats={
                key: int(value)
                for key, value in (payload.get("routing_cache_stats") or {}).items()
            },
            points=[StrengthPoint.from_payload(p) for p in payload.get("points", [])],
        )

    def format_table(self) -> str:
        """Text rendering of the sweep.

        Matrix columns are the union over all points; a point missing a
        matrix renders stub cells instead of raising.
        """
        names = self.matrices()
        hw_header, hw_cells = _hardware_columns(self.points)
        header = (
            f"{'lambda':>10}{'error':>9}"
            + "".join(f"{f'{n} w%':>14}" for n in names)
            + "".join(f"{f'{n} a%':>14}" for n in names)
            + hw_header
        )
        lines = [f"Strength sweep ({self.workload_name})", header, "-" * len(header)]
        for p, hw in zip(self.points, hw_cells):
            wires = "".join(
                f"{100 * p.wire_fractions[n]:>13.1f}%"
                if n in p.wire_fractions
                else f"{'-':>14}"
                for n in names
            )
            areas = "".join(
                f"{100 * p.routing_area_fractions[n]:>13.1f}%"
                if n in p.routing_area_fractions
                else f"{'-':>14}"
                for n in names
            )
            lines.append(f"{p.strength:>10.4f}{p.error:>9.3f}{wires}{areas}{hw}")
        return "\n".join(lines)


def sweep_group_deletion(
    workload: Workload,
    strengths: Sequence[float],
    *,
    tolerance: float = 0.03,
    include_small_matrices: bool = False,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    engine: Optional[SweepEngine] = None,
) -> StrengthSweepResult:
    """Run group deletion at each λ (deprecated imperative entry point).

    .. deprecated::
        Build an :class:`~repro.experiments.spec.ExperimentSpec` with
        ``kind="sweep", method="group_deletion"`` and call
        :func:`~repro.experiments.plan.execute_spec` (or use
        ``python -m repro run``) — that path adds artifact persistence and
        point-level resume.  This shim lifts its arguments into the same
        spec and returns the identical result.
    """
    if not strengths:
        raise ValueError("strengths must contain at least one value")
    from repro.experiments.plan import (
        ExperimentContext,
        execute_spec,
        warn_deprecated_entry_point,
    )
    from repro.experiments.spec import spec_for_workload

    warn_deprecated_entry_point(
        "sweep_group_deletion", 'ExperimentSpec(kind="sweep", method="group_deletion")'
    )
    spec = spec_for_workload(
        "sweep",
        workload,
        method="group_deletion",
        grid=tuple(float(s) for s in strengths),
        tolerance=tolerance,
        include_small_matrices=include_small_matrices,
        engine=engine,
    )
    run = execute_spec(
        spec,
        context=ExperimentContext(
            workload=workload, setup=setup, baseline_network=baseline_network
        ),
    )
    return run.result
