"""Parameter sweeps behind Figures 6, 7 and 8.

* Figure 6 — remaining ranks of the convolutional layers versus the tolerable
  clipping error ``ε`` (with the achieved accuracy).
* Figure 7 — per-layer and total crossbar area versus classification error,
  swept over ``ε`` (LeNet and ConvNet panels).
* Figure 8 — remaining routing wires and routing area versus classification
  error, swept over the group-Lasso strength ``λ`` (ConvNet).

Each sweep re-runs the corresponding training phase from the same trained
baseline so points differ only in the swept hyper-parameter.  Execution is
delegated to a :class:`~repro.experiments.runner.SweepEngine`: points can fan
out over worker processes (bit-identical to the serial order), the finished
point networks are evaluated together with batched multi-network inference,
and the group-deletion points run with the vectorized group-Lasso penalty and
memoized routing analysis — with cache entries threaded between points so
later ones start warm.  ``SweepEngine(mode="lockstep")`` instead trains all
λ-points of one architecture group together as a single stacked program
(bit-identical per point; the fastest policy on 1-core boxes); the ε sweep
keeps the points path because rank clipping makes its points diverge
structurally.  Passing ``engine=SweepEngine.reference()`` restores the
original serial per-point execution.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import GroupDeletionConfig, RankClippingConfig
from repro.core.conversion import convert_to_lowrank
from repro.core.rank_clipping import RankClipper
from repro.experiments.runner import (
    StrengthPointTask,
    SweepEngine,
    TolerancePointTask,
    run_tolerance_point,
)
from repro.experiments.training import TrainingSetup, train_baseline
from repro.experiments.workloads import Workload
from repro.hardware.area import layer_area_fraction, network_area_fraction


# ----------------------------------------------------------------- Figure 6 / 7
@dataclass(frozen=True)
class TolerancePoint:
    """One ε point of the rank-clipping sweep."""

    tolerance: float
    accuracy: float
    error: float
    ranks: Dict[str, int]
    layer_area_fractions: Dict[str, float]
    total_area_fraction: float


@dataclass
class ToleranceSweepResult:
    """Rank/area versus tolerance sweep (data behind Figures 6 and 7)."""

    workload_name: str
    points: List[TolerancePoint] = field(default_factory=list)
    baseline_accuracy: Optional[float] = None

    def tolerances(self) -> List[float]:
        """The swept ε values in run order."""
        return [p.tolerance for p in self.points]

    def ranks_series(self, layer: str) -> List[int]:
        """Remaining rank of one layer across the sweep (Figure 6 stems)."""
        return [p.ranks[layer] for p in self.points]

    def area_series(self, layer: Optional[str] = None) -> List[float]:
        """Crossbar-area fraction across the sweep (per layer or total)."""
        if layer is None:
            return [p.total_area_fraction for p in self.points]
        return [p.layer_area_fractions[layer] for p in self.points]

    def error_series(self) -> List[float]:
        """Classification error across the sweep (Figure 7's x-axis)."""
        return [p.error for p in self.points]

    def format_table(self) -> str:
        """Text rendering of the sweep.

        Layer columns are the union over all points; a point missing a layer
        (e.g. a partially-recorded run) renders stub cells instead of
        raising.
        """
        layers = sorted({layer for p in self.points for layer in p.ranks})
        header = (
            f"{'eps':>8}{'error':>9}{'total%':>9}"
            + "".join(f"{f'{l} K':>9}" for l in layers)
            + "".join(f"{f'{l} %':>9}" for l in layers)
        )
        lines = [f"Tolerance sweep ({self.workload_name})", header, "-" * len(header)]
        for p in self.points:
            ranks = "".join(
                f"{p.ranks[l]:>9}" if l in p.ranks else f"{'-':>9}" for l in layers
            )
            areas = "".join(
                f"{100 * p.layer_area_fractions[l]:>8.1f}%"
                if l in p.layer_area_fractions
                else f"{'-':>9}"
                for l in layers
            )
            lines.append(
                f"{p.tolerance:>8.3f}{p.error:>9.3f}{100 * p.total_area_fraction:>8.1f}%"
                f"{ranks}{areas}"
            )
        return "\n".join(lines)


def sweep_rank_clipping(
    workload: Workload,
    tolerances: Sequence[float],
    *,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
    method: str = "pca",
    engine: Optional[SweepEngine] = None,
) -> ToleranceSweepResult:
    """Run rank clipping at each tolerance, reporting ranks, accuracy and areas.

    ``engine`` selects the execution policy (worker processes, batched final
    evaluation); the default :class:`SweepEngine` runs the points serially
    in-process with batched evaluation.
    """
    if not tolerances:
        raise ValueError("tolerances must contain at least one value")
    engine = engine or SweepEngine()
    scale = workload.scale
    if baseline_network is None or setup is None:
        baseline_network, baseline_accuracy, setup = train_baseline(workload)
    elif baseline_accuracy is None:
        baseline_accuracy = setup.evaluate(baseline_network)

    layer_order = list(workload.clippable_layers)

    # Generator, not list: the serial engine then keeps only one point's
    # network copy alive at a time (the parallel engine materializes them).
    def tolerance_tasks():
        for index, tolerance in enumerate(tolerances):
            network = convert_to_lowrank(
                copy.deepcopy(baseline_network), layers=layer_order
            )
            config = RankClippingConfig(
                tolerance=float(tolerance),
                clip_interval=scale.clip_interval,
                max_iterations=scale.clip_iterations,
                layers=tuple(layer_order),
                method=method,
            )
            yield TolerancePointTask(
                index=index,
                tolerance=float(tolerance),
                network=network,
                setup=engine.point_setup(setup, index),
                config=config,
            )

    outcomes = engine.map_points(run_tolerance_point, tolerance_tasks())
    if engine.inline_training_eval:
        accuracies = [
            outcome.accuracy if outcome.accuracy is not None else 0.0
            for outcome in outcomes
        ]
    else:
        accuracies = engine.evaluate_networks(
            [outcome.network for outcome in outcomes], setup
        )

    result = ToleranceSweepResult(
        workload_name=workload.name, baseline_accuracy=baseline_accuracy
    )
    for outcome, accuracy in zip(outcomes, accuracies):
        ranks = outcome.ranks
        fractions = {
            name: layer_area_fraction(*workload.layer_shapes[name], ranks.get(name))
            for name in layer_order
        }
        total = network_area_fraction(
            workload.layer_shapes,
            {name: ranks.get(name) for name in workload.layer_shapes},
        )
        result.points.append(
            TolerancePoint(
                tolerance=outcome.tolerance,
                accuracy=accuracy,
                error=1.0 - accuracy,
                ranks=dict(ranks),
                layer_area_fractions=fractions,
                total_area_fraction=total,
            )
        )
    return result


# --------------------------------------------------------------------- Figure 8
@dataclass(frozen=True)
class StrengthPoint:
    """One λ point of the group-deletion sweep."""

    strength: float
    accuracy: float
    error: float
    wire_fractions: Dict[str, float]
    routing_area_fractions: Dict[str, float]


@dataclass
class StrengthSweepResult:
    """Routing wires/area versus λ sweep (data behind Figure 8).

    ``routing_cache_stats`` aggregates the hit/miss counters of the points'
    memoized routing analyses (zeros when memoization was disabled).
    """

    workload_name: str
    points: List[StrengthPoint] = field(default_factory=list)
    baseline_accuracy: Optional[float] = None
    routing_cache_stats: Dict[str, int] = field(default_factory=dict)

    def strengths(self) -> List[float]:
        """The swept λ values in run order."""
        return [p.strength for p in self.points]

    def error_series(self) -> List[float]:
        """Classification error across the sweep (Figure 8's x-axis)."""
        return [p.error for p in self.points]

    def wire_series(self, matrix: str) -> List[float]:
        """Remaining-wire fraction of one matrix across the sweep."""
        return [p.wire_fractions[matrix] for p in self.points]

    def routing_area_series(self, matrix: str) -> List[float]:
        """Remaining routing-area fraction of one matrix across the sweep."""
        return [p.routing_area_fractions[matrix] for p in self.points]

    def matrices(self) -> List[str]:
        """Matrix names present in the sweep (union over all points)."""
        return sorted({name for p in self.points for name in p.wire_fractions})

    def format_table(self) -> str:
        """Text rendering of the sweep.

        Matrix columns are the union over all points; a point missing a
        matrix renders stub cells instead of raising.
        """
        names = self.matrices()
        header = (
            f"{'lambda':>10}{'error':>9}"
            + "".join(f"{f'{n} w%':>14}" for n in names)
            + "".join(f"{f'{n} a%':>14}" for n in names)
        )
        lines = [f"Strength sweep ({self.workload_name})", header, "-" * len(header)]
        for p in self.points:
            wires = "".join(
                f"{100 * p.wire_fractions[n]:>13.1f}%"
                if n in p.wire_fractions
                else f"{'-':>14}"
                for n in names
            )
            areas = "".join(
                f"{100 * p.routing_area_fractions[n]:>13.1f}%"
                if n in p.routing_area_fractions
                else f"{'-':>14}"
                for n in names
            )
            lines.append(f"{p.strength:>10.4f}{p.error:>9.3f}{wires}{areas}")
        return "\n".join(lines)


def sweep_group_deletion(
    workload: Workload,
    strengths: Sequence[float],
    *,
    tolerance: float = 0.03,
    include_small_matrices: bool = False,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    engine: Optional[SweepEngine] = None,
) -> StrengthSweepResult:
    """Run group deletion at each λ starting from the same rank-clipped network.

    ``engine`` selects the execution policy (worker processes or lockstep
    stacked training via ``mode="lockstep"``, batched final evaluation,
    vectorized group Lasso, memoized routing analysis shared across points).
    """
    if not strengths:
        raise ValueError("strengths must contain at least one value")
    engine = engine or SweepEngine()
    scale = workload.scale
    if baseline_network is None or setup is None:
        baseline_network, baseline_acc, setup = train_baseline(workload)
    else:
        baseline_acc = setup.evaluate(baseline_network)

    layer_order = list(workload.clippable_layers)
    # Defensive copy, matching sweep_rank_clipping: the caller's baseline is
    # typically shared across sweeps and must stay bit-identical no matter
    # how convert_to_lowrank or the clipping run evolve.
    clipped = convert_to_lowrank(copy.deepcopy(baseline_network), layers=layer_order)
    clip_config = RankClippingConfig(
        tolerance=tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        layers=tuple(layer_order),
    )
    RankClipper(clip_config).run(clipped, engine.shared_setup(setup).trainer_factory)

    # Generator, not list: the serial engine then keeps only one point's
    # network copy alive at a time (the parallel engine materializes them).
    def strength_tasks():
        for index, strength in enumerate(strengths):
            config = GroupDeletionConfig(
                strength=float(strength),
                iterations=scale.deletion_iterations,
                finetune_iterations=scale.finetune_iterations,
                include_small_matrices=include_small_matrices,
            )
            yield StrengthPointTask(
                index=index,
                strength=float(strength),
                network=copy.deepcopy(clipped),
                setup=engine.point_setup(setup, index),
                config=config,
                record_interval=scale.record_interval,
                structured_lasso=engine.structured_lasso,
                memoize_routing=engine.memoize_routing,
            )

    outcomes = engine.run_strength_points(strength_tasks())
    if engine.inline_training_eval:
        accuracies = [
            outcome.accuracy if outcome.accuracy is not None else 0.0
            for outcome in outcomes
        ]
    else:
        accuracies = engine.evaluate_networks(
            [outcome.network for outcome in outcomes], setup
        )

    result = StrengthSweepResult(workload_name=workload.name, baseline_accuracy=baseline_acc)
    for outcome in outcomes:
        for key, value in (outcome.routing_cache_stats or {}).items():
            if key != "size":
                result.routing_cache_stats[key] = (
                    result.routing_cache_stats.get(key, 0) + value
                )
    for outcome, accuracy in zip(outcomes, accuracies):
        result.points.append(
            StrengthPoint(
                strength=outcome.strength,
                accuracy=accuracy,
                error=1.0 - accuracy,
                wire_fractions=outcome.wire_fractions,
                routing_area_fractions=outcome.routing_area_fractions,
            )
        )
    return result
