"""Named experiment registry: the paper's deliverables as spec presets.

Every table and figure of the paper registers here as a ready-made
:class:`~repro.experiments.spec.ExperimentSpec`; users register their own
specs (objects or plain dicts) under new names.  ``REGISTRY.get`` resolves a
name and applies per-call overrides — spec fields *and* engine fields — so
``REGISTRY.get("table1", workload="mlp", scale="tiny", workers=2)`` is the
programmatic twin of ``python -m repro run table1 --workload mlp --scale tiny
--workers 2``.

Preset hyper-parameters (grids, λ, ``include_small_matrices``) mirror the
benchmark harness under ``benchmarks/`` so the CLI reproduces the same curves
the benches print.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Iterator, Mapping, Tuple, Union

from repro.exceptions import ExperimentError
from repro.experiments.spec import ExperimentSpec
from repro.hardware.sim import HardwareConfig

SpecLike = Union[ExperimentSpec, Mapping]


class ExperimentRegistry:
    """Mapping from experiment names to spec presets."""

    def __init__(self):
        self._entries: "OrderedDict[str, Tuple[ExperimentSpec, str]]" = OrderedDict()

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def register(
        self,
        name: str,
        spec: SpecLike,
        *,
        description: str = "",
        overwrite: bool = False,
    ) -> ExperimentSpec:
        """Register a spec (or spec dict) under ``name``.

        The stored spec's display name is forced to the registry key, so
        artifacts produced through the registry carry the preset name.
        """
        key = str(name).lower()
        if key in self._entries and not overwrite:
            raise ExperimentError(
                f"experiment {key!r} is already registered; pass overwrite=True to replace it"
            )
        if isinstance(spec, Mapping):
            spec = ExperimentSpec.from_dict(spec)
        if not isinstance(spec, ExperimentSpec):
            raise ExperimentError(
                f"expected an ExperimentSpec or mapping, got {type(spec).__name__}"
            )
        if spec.name != key:
            spec = replace(spec, name=key)
        self._entries[key] = (spec, description)
        return spec

    def get(self, name: str, **overrides) -> ExperimentSpec:
        """Resolve a registered spec, applying spec/engine field overrides."""
        key = str(name).lower()
        if key not in self._entries:
            raise ExperimentError(
                f"unknown experiment {name!r}; registered: {list(self._entries)}"
            )
        spec, _ = self._entries[key]
        overrides = {k: v for k, v in overrides.items() if v is not None}
        return spec.with_updates(**overrides) if overrides else spec

    def describe(self, name: str) -> str:
        """The description string a preset registered with."""
        key = str(name).lower()
        if key not in self._entries:
            raise ExperimentError(
                f"unknown experiment {name!r}; registered: {list(self._entries)}"
            )
        return self._entries[key][1]

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._entries)

    def items(self) -> Iterator[Tuple[str, ExperimentSpec, str]]:
        """Iterate ``(name, spec, description)`` triples."""
        for name, (spec, description) in self._entries.items():
            yield name, spec, description


#: The process-wide registry the CLI and shims consult.
REGISTRY = ExperimentRegistry()

#: Device corners swept by the ``figure_hw`` / ``figure_hw_baseline`` presets:
#: a write-precision axis (2–8 bits), a programming-noise axis at 6 bits, and
#: one combined corner with faults and a 6-bit ADC.
HARDWARE_CORNERS = (
    HardwareConfig.ideal(),
    HardwareConfig(bits=2),
    HardwareConfig(bits=4),
    HardwareConfig(bits=6),
    HardwareConfig(bits=8),
    HardwareConfig(bits=6, program_noise=0.02),
    HardwareConfig(bits=6, program_noise=0.1),
    HardwareConfig(bits=6, program_noise=0.02, fault_rate=0.002, adc_bits=6),
)


def _register_paper_presets(registry: ExperimentRegistry) -> None:
    """The paper's deliverables (defaults mirror the benchmark harness)."""
    registry.register(
        "baseline",
        ExperimentSpec(kind="baseline", workload="mlp", scale="tiny"),
        description="Train the dense baseline and report its held-out accuracy",
    )
    registry.register(
        "table1",
        ExperimentSpec(kind="table1", workload="lenet", scale="small"),
        description="Table 1: Original / Direct LRA / Rank clipping accuracy and ranks",
    )
    registry.register(
        "table3",
        ExperimentSpec(
            kind="table3",
            workload="lenet",
            scale="small",
            strength=0.04,
            include_small_matrices=True,
        ),
        description="Table 3: MBC tile sizes and remaining routing wires per big matrix",
    )
    registry.register(
        "figure3",
        ExperimentSpec(kind="figure3", workload="lenet", scale="small"),
        description="Figure 3: rank ratio and accuracy versus iteration during clipping",
    )
    registry.register(
        "figure5",
        ExperimentSpec(
            kind="figure5",
            workload="lenet",
            scale="small",
            strength=0.04,
            include_small_matrices=True,
        ),
        description="Figure 5: deleted routing wires and accuracy during group deletion",
    )
    registry.register(
        "figure6",
        ExperimentSpec(
            kind="sweep",
            method="rank_clipping",
            workload="lenet",
            scale="small",
            grid=(0.01, 0.05, 0.15, 0.25),
        ),
        description="Figure 6: remaining ranks versus tolerable clipping error ε (LeNet)",
    )
    registry.register(
        "figure7",
        ExperimentSpec(
            kind="sweep",
            method="rank_clipping",
            workload="convnet",
            scale="small",
            grid=(0.02, 0.08, 0.20),
        ),
        description="Figure 7: crossbar area versus classification error over ε (ConvNet)",
    )
    registry.register(
        "figure8",
        ExperimentSpec(
            kind="sweep",
            method="group_deletion",
            workload="convnet",
            scale="small",
            grid=(0.01, 0.03, 0.06),
            include_small_matrices=True,
        ),
        description="Figure 8: routing wires/area versus classification error over λ (ConvNet)",
    )
    registry.register(
        "headline",
        ExperimentSpec(kind="headline"),
        description="Abstract headline area numbers recomputed through the hardware model",
    )
    registry.register(
        "figure_hw",
        ExperimentSpec(
            kind="sweep",
            method="group_deletion",
            workload="lenet",
            scale="small",
            grid=(0.04,),
            include_small_matrices=True,
            hardware=HARDWARE_CORNERS,
        ),
        description=(
            "Hardware-fidelity accuracy of the Scissor-compressed LeNet across "
            "device precision / noise / fault corners (compare with figure_hw_baseline)"
        ),
    )
    registry.register(
        "figure_hw_baseline",
        ExperimentSpec(
            kind="baseline",
            workload="lenet",
            scale="small",
            hardware=HARDWARE_CORNERS,
        ),
        description=(
            "Dense LeNet baseline evaluated on the same simulated device corners "
            "as figure_hw"
        ),
    )


_register_paper_presets(REGISTRY)
