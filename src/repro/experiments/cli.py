"""``python -m repro`` — the declarative experiment command line.

Subcommands::

    python -m repro run table1 --scale tiny --workers 1   # run a preset
    python -m repro run my_spec.json --store runs         # run a spec file
    python -m repro list [--json]                         # presets + stored runs
    python -m repro show table1                           # render one artifact
    python -m repro compare <fp-a> <fp-b>                 # diff two artifacts
    python -m repro bench --suite kernels                 # benchmark suites
    python -m repro serve-bench [--drill]                 # serving runtime bench/drill
    python -m repro serve-jobs [--drain]                  # experiment job daemon
    python -m repro submit figure6 --scale tiny           # enqueue a job
    python -m repro status [JOB] [--json]                 # queue + artifact state
    python -m repro cancel JOB                            # request cancellation
    python -m repro watch [JOB]                           # stream per-node events
    python -m repro metrics [--json]                      # exported metrics snapshot
    python -m repro trace [FILTER]                        # trace-stream summary
    python -m repro lint [--list-rules]                   # contract linter

Runs persist to a :class:`~repro.experiments.store.RunStore`
(``--store DIR``, default ``$REPRO_RUN_STORE`` or ``runs/``) and resume by
default: re-running a spec whose artifact is complete performs zero new
training, and overlapping sweep grids reuse each other's points.  ``--fresh``
forces recomputation.

The ``bench`` subcommand delegates to ``benchmarks/run_benchmarks.py`` so the
suite names here, in CI, and in the benchmark runner come from the single
``SUITES`` registry defined there.

Exit codes::

    0  clean run — every point computed or reused
    1  aborted   — interrupted (SIGINT), strict-mode point failure, or every
                   sweep point failed; a partial artifact may still have been
                   persisted (the message says where)
    2  usage / configuration error (any other ReproError)
    3  partial   — the run completed but one or more points failed; their
                   tracebacks are in the artifact (`show` renders them) and a
                   re-run retries just the failed points
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.exceptions import PointFailureError, ReproError, RunInterrupted
from repro.utils import faultinject
from repro.experiments.plan import execute_spec, render_result
from repro.experiments.presets import scale_names
from repro.experiments.registry import REGISTRY
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import (
    RunStore,
    compare_artifacts,
    default_store_root,
    render_artifact,
)
from repro.experiments.workloads import workload_names


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """The spec-override flags shared by ``run`` and ``submit``.

    Both verbs resolve their spec through :func:`_resolve_spec`, so the
    flag set (and therefore the fingerprints it produces) cannot drift
    between the inline and the queued execution path.
    """
    parser.add_argument(
        "experiment",
        help="preset name (see `list`) or path to an ExperimentSpec JSON file",
    )
    parser.add_argument("--workload", choices=workload_names(), help="workload override")
    parser.add_argument("--scale", choices=scale_names(), help="scale preset override")
    parser.add_argument(
        "--grid", type=float, nargs="+", metavar="VALUE", help="sweep grid override"
    )
    parser.add_argument("--tolerance", type=float, help="clipping tolerance ε override")
    parser.add_argument("--strength", type=float, help="group-Lasso λ override")
    parser.add_argument(
        "--method",
        choices=("rank_clipping", "group_deletion"),
        help="sweep method override (kind='sweep' only)",
    )
    parser.add_argument(
        "--lowrank-method",
        dest="lowrank_method",
        choices=("pca", "svd"),
        help="low-rank backend override",
    )
    parser.add_argument(
        "--include-small-matrices",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="also delete matrices that fit a single crossbar",
    )
    parser.add_argument("--seed", type=int, help="seed override")
    parser.add_argument(
        "--hardware",
        help=(
            "device-simulation override: JSON list of HardwareConfig dicts "
            "(inline, or a path to a JSON file); '[]' disables simulation. "
            "Only kind='sweep'/'baseline' specs accept it."
        ),
    )
    parser.add_argument("--workers", type=int, help="engine worker processes")
    parser.add_argument(
        "--engine-mode",
        dest="mode",
        choices=("points", "lockstep"),
        help="engine execution mode",
    )
    parser.add_argument(
        "--per-point-seed",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="derive an independent data stream per sweep point",
    )
    parser.add_argument(
        "--max-attempts",
        dest="max_attempts",
        type=int,
        help="run each sweep point up to N times before recording a failure",
    )
    parser.add_argument(
        "--retry-backoff",
        dest="retry_backoff",
        type=float,
        metavar="SECONDS",
        help="base delay between point retries (doubles per attempt)",
    )
    parser.add_argument(
        "--point-timeout",
        dest="point_timeout",
        type=float,
        metavar="SECONDS",
        help="per-point wall-clock budget (parallel engines only)",
    )


def _add_queue_arguments(parser: argparse.ArgumentParser) -> None:
    """The queue/store location flags shared by the scheduler verbs."""
    parser.add_argument(
        "--store", type=Path, default=None, help="run store directory (default: runs/)"
    )
    parser.add_argument(
        "--queue",
        type=Path,
        default=None,
        help="job queue directory (default: <store>/queue)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, inspect and compare Group Scissor paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a registered experiment preset or a spec JSON file"
    )
    _add_spec_arguments(run)
    run.add_argument(
        "--strict",
        action="store_true",
        help="abort on the first failed sweep point instead of completing partially",
    )
    run.add_argument(
        "--faults",
        help=(
            "deterministic fault-injection plan (JSON, inline or a file path); "
            "exported as $REPRO_FAULTS so worker processes inherit it. "
            "Testing/chaos-drill knob — see repro.utils.faultinject."
        ),
    )
    run.add_argument(
        "--store", type=Path, default=None, help="run store directory (default: runs/)"
    )
    run.add_argument(
        "--no-store", action="store_true", help="do not persist an artifact"
    )
    run.add_argument(
        "--fresh",
        action="store_true",
        help="recompute everything (ignore stored artifacts and points)",
    )
    run.add_argument("--json", action="store_true", help="emit the result as JSON")
    run.add_argument(
        "--quiet", action="store_true", help="suppress the result table rendering"
    )

    lst = sub.add_parser("list", help="list registered presets and stored runs")
    lst.add_argument("--store", type=Path, default=None)
    lst.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (health/partial/quarantine flags included)",
    )

    serve_jobs = sub.add_parser(
        "serve-jobs",
        help="run the experiment job daemon (scheduler over the job queue)",
    )
    _add_queue_arguments(serve_jobs)
    serve_jobs.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent jobs (one node in flight per job; default: 2)",
    )
    serve_jobs.add_argument(
        "--poll",
        dest="poll_s",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="queue/futures poll interval (default: 0.2)",
    )
    serve_jobs.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty instead of serving forever",
    )
    serve_jobs.add_argument(
        "--idle-exit",
        dest="idle_exit_s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this much continuous idle time (liveness backstop)",
    )
    serve_jobs.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "record scheduler metrics and per-node trace records under "
            "<store>/obs (snapshot exported on exit)"
        ),
    )

    submit = sub.add_parser(
        "submit", help="enqueue an experiment for the job daemon"
    )
    _add_spec_arguments(submit)
    _add_queue_arguments(submit)
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduling priority (higher runs first; default: 0)",
    )
    submit.add_argument("--json", action="store_true", help="emit the job record as JSON")

    status = sub.add_parser(
        "status", help="show job queue state (works with or without a live daemon)"
    )
    status.add_argument("job", nargs="?", help="job id or unique prefix (default: all)")
    _add_queue_arguments(status)
    status.add_argument("--json", action="store_true", help="emit rows as JSON")

    cancel = sub.add_parser("cancel", help="request cancellation of a queued/running job")
    cancel.add_argument("job", help="job id or unique prefix")
    _add_queue_arguments(cancel)

    watch = sub.add_parser(
        "watch", help="stream per-node status events for a job (or the whole queue)"
    )
    watch.add_argument("job", nargs="?", help="job id or unique prefix (default: all)")
    _add_queue_arguments(watch)
    watch.add_argument(
        "--timeout",
        dest="timeout_s",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="stop tailing after this long (default: 120)",
    )
    watch.add_argument("--json", action="store_true", help="emit events as JSON lines")

    show = sub.add_parser("show", help="render one stored run artifact")
    show.add_argument("key", help="spec fingerprint, fingerprint prefix, or run name")
    show.add_argument("--store", type=Path, default=None)
    show.add_argument("--json", action="store_true", help="emit the raw artifact JSON")

    compare = sub.add_parser("compare", help="compare two stored run artifacts")
    compare.add_argument("first", help="fingerprint / prefix / name of the first run")
    compare.add_argument("second", help="fingerprint / prefix / name of the second run")
    compare.add_argument("--store", type=Path, default=None)

    bench = sub.add_parser(
        "bench", help="run benchmark suites (delegates to benchmarks/run_benchmarks.py)"
    )
    bench.add_argument("--suite", default="all", help="suite name or 'all'")
    bench.add_argument("--check", action="store_true", help="fail on regressions")
    bench.add_argument("--list", action="store_true", help="list suite names and exit")

    serve = sub.add_parser(
        "serve-bench",
        help="serving-runtime load benchmark, or the deterministic chaos drill",
    )
    serve.add_argument(
        "--drill",
        action="store_true",
        help="run the breaker/degradation chaos drill instead of the load bench",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=80,
        metavar="N",
        help="requests offered per load level (load bench only; default: 80)",
    )
    serve.add_argument(
        "--faults",
        help=(
            "extra deterministic fault-injection plan (JSON, inline or a file "
            "path); exported as $REPRO_FAULTS — see repro.utils.faultinject"
        ),
    )
    serve.add_argument(
        "--json", action="store_true", help="emit the stats/summary as JSON"
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "record serving metrics and per-request trace records under "
            "<store>/obs (snapshot exported on exit)"
        ),
    )
    serve.add_argument(
        "--store",
        type=Path,
        default=None,
        help="run store whose obs/ directory receives --metrics output",
    )

    metrics = sub.add_parser(
        "metrics",
        help="render the metrics snapshot exported by a --metrics run",
    )
    metrics.add_argument("--store", type=Path, default=None)
    metrics.add_argument(
        "--json", action="store_true", help="emit the raw snapshot JSON"
    )

    trace = sub.add_parser(
        "trace",
        help="summarize the trace stream (<store>/obs/traces.jsonl)",
    )
    trace.add_argument(
        "filter",
        nargs="?",
        help=(
            "substring matched against each record's run/job/name/node "
            "fields (e.g. a job id or a spec fingerprint prefix)"
        ),
    )
    trace.add_argument(
        "--kind",
        choices=("request", "node", "span"),
        default=None,
        help="restrict to one record kind",
    )
    trace.add_argument("--store", type=Path, default=None)
    trace.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="recent matching records to print after the summary (default: 20)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit {summary, records} as JSON (records unlimited)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically check the repo's determinism/dtype/parity contracts",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: src/repro, benchmarks, examples)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--rules", help="comma-separated rule-id subset to run (default: all)"
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their motivations and exit",
    )
    lint.add_argument(
        "--root",
        type=Path,
        default=None,
        help="base directory for reported paths (default: the repo checkout)",
    )
    return parser


def _store_for(args) -> RunStore:
    return RunStore(args.store if args.store is not None else default_store_root())


def _queue_for(args):
    """The job queue for the scheduler verbs (deferred scheduler import)."""
    from repro.scheduler.daemon import default_queue_root
    from repro.scheduler.jobs import JobQueue

    if args.queue is not None:
        return JobQueue(args.queue)
    store_root = args.store if args.store is not None else default_store_root()
    return JobQueue(default_queue_root(store_root))


def _parse_hardware(argument: Optional[str]):
    """Decode ``--hardware`` into a tuple of config dicts (``None`` = keep preset).

    Accepts inline JSON (a list of :class:`~repro.hardware.sim.HardwareConfig`
    dicts, or one bare dict) or the path of a JSON file holding the same;
    ``ExperimentSpec`` validates the entries.
    """
    if argument is None:
        return None
    text = argument
    path = Path(argument)
    try:
        if path.exists() and path.is_file():
            text = path.read_text()
    except OSError:  # e.g. an inline JSON string too long for a file name
        pass
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(
            f"--hardware expects JSON (inline or a file path): {error}"
        ) from None
    if isinstance(parsed, dict):
        parsed = [parsed]
    if not isinstance(parsed, list):
        raise ReproError("--hardware JSON must be a list of HardwareConfig dicts")
    return tuple(parsed)


def _resolve_spec(args) -> ExperimentSpec:
    name = args.experiment
    if name in REGISTRY:
        spec = REGISTRY.get(name)
    else:
        path = Path(name)
        if path.exists() and path.suffix == ".json":
            spec = ExperimentSpec.from_dict(json.loads(path.read_text()))
        else:
            raise ReproError(
                f"unknown experiment {name!r}: not a registered preset "
                f"{list(REGISTRY.names())} and not a spec JSON file"
            )
    overrides = {
        "workload": args.workload,
        "scale": args.scale,
        "grid": tuple(args.grid) if args.grid else None,
        "tolerance": args.tolerance,
        "strength": args.strength,
        "method": args.method,
        "lowrank_method": args.lowrank_method,
        "include_small_matrices": args.include_small_matrices,
        "seed": args.seed,
        "hardware": _parse_hardware(args.hardware),
        "workers": args.workers,
        "mode": args.mode,
        "per_point_seed": args.per_point_seed,
    }
    overrides = {key: value for key, value in overrides.items() if value is not None}
    retry_overrides = {
        "max_attempts": args.max_attempts,
        "backoff_s": args.retry_backoff,
        "timeout_s": args.point_timeout,
    }
    retry_overrides = {
        key: value for key, value in retry_overrides.items() if value is not None
    }
    if retry_overrides:
        # RetryPolicy is pure execution policy — canonical() drops it, so
        # these flags never change the spec or point fingerprints.
        base = spec.engine.retry.as_dict()
        overrides["retry"] = {**base, **retry_overrides}
    return spec.with_updates(**overrides) if overrides else spec


def _install_faults(argument: Optional[str]) -> None:
    """Validate ``--faults`` and export it via ``$REPRO_FAULTS``.

    The environment variable (not an in-process install) is the vehicle so
    spawned worker processes see the same plan the parent does.
    """
    if argument is None:
        return
    text = argument
    path = Path(argument)
    try:
        if path.exists() and path.is_file():
            text = path.read_text()
    except OSError:  # e.g. an inline JSON string too long for a file name
        pass
    try:
        plan = faultinject.FaultPlan.parse(text)
    except ReproError:
        raise
    except (json.JSONDecodeError, TypeError, ValueError) as error:
        raise ReproError(
            f"--faults expects a JSON fault plan (inline or a file path): {error}"
        ) from None
    os.environ[faultinject.ENV_VAR] = plan.as_json()


def _cmd_run(args) -> int:
    spec = _resolve_spec(args)
    _install_faults(args.faults)
    store = None if args.no_store else _store_for(args)
    run = execute_spec(spec, store=store, resume=not args.fresh, strict=args.strict)
    if args.json:
        print(
            json.dumps(
                {
                    "fingerprint": run.fingerprint,
                    "spec": spec.to_dict(),
                    "computed_points": run.computed_points,
                    "reused_points": run.reused_points,
                    "failed_points": [
                        failure.to_payload() for failure in run.failures
                    ],
                    "duration_s": run.duration_s,
                    "artifact": str(run.artifact_path) if run.artifact_path else None,
                    "result": run.payload,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 3 if run.failures else 0
    print(run.format_summary())
    if not args.quiet:
        print()
        print(render_result(run.result))
    return 3 if run.failures else 0


def _cmd_list(args) -> int:
    store_root = args.store if args.store is not None else default_store_root()
    if args.json:
        presets = [
            {
                "name": name,
                "kind": spec.kind,
                "workload": spec.workload,
                "scale": spec.scale,
                "grid": list(spec.grid) if spec.grid else [],
                "description": description,
            }
            for name, spec, description in REGISTRY.items()
        ]
        listing = {"presets": presets, "store": {"root": str(store_root)}}
        if Path(store_root).exists():
            store = RunStore(store_root)
            listing["store"]["runs"] = store.list_runs()
            listing["store"]["quarantined"] = store.quarantined()
        else:
            listing["store"]["runs"] = []
            listing["store"]["quarantined"] = []
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    print("registered experiments:")
    width = max(len(name) for name in REGISTRY.names())
    for name, spec, description in REGISTRY.items():
        grid = f" grid={list(spec.grid)}" if spec.grid else ""
        print(
            f"  {name:<{width}}  kind={spec.kind:<8} workload={spec.workload:<8} "
            f"scale={spec.scale}{grid}"
        )
        if description:
            print(f"  {'':<{width}}  {description}")
    store_root = args.store if args.store is not None else default_store_root()
    if not Path(store_root).exists():
        print(f"\nrun store {store_root}: (empty)")
        return 0
    store = RunStore(store_root)
    rows = store.list_runs()
    print(f"\nrun store {store_root}: {len(rows)} artifact(s)")
    for row in rows:
        flags = ["complete" if row["complete"] else "partial"]
        if row.get("legacy_checksum"):
            flags.append("no-checksum")
        print(
            f"  {row['fingerprint']}  {row['name']:<10} {row['kind']:<8} "
            f"{row['workload']:<8} {row['scale']:<6} {row['points']:>3} point(s)  "
            f"{','.join(flags)}  {row['updated']}"
        )
    quarantined = store.quarantined()
    if quarantined:
        print(f"quarantined (corrupt, kept for inspection): {len(quarantined)} file(s)")
        for name in quarantined:
            print(f"  {name}")
    return 0


def _cmd_show(args) -> int:
    artifact = _store_for(args).find(args.key)
    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
    else:
        print(render_artifact(artifact))
    return 0


def _cmd_compare(args) -> int:
    store = _store_for(args)
    print(compare_artifacts(store.find(args.first), store.find(args.second)))
    return 0


def _load_benchmark_runner():
    """Import ``benchmarks/run_benchmarks.py`` from the repository checkout."""
    script = Path(__file__).resolve().parents[3] / "benchmarks" / "run_benchmarks.py"
    if not script.exists():
        raise ReproError(
            "benchmark suites are only available from a repository checkout "
            f"(missing {script})"
        )
    module_spec = importlib.util.spec_from_file_location("repro_run_benchmarks", script)
    module = importlib.util.module_from_spec(module_spec)
    # Register before exec: dataclasses resolves annotations via sys.modules.
    sys.modules[module_spec.name] = module
    module_spec.loader.exec_module(module)
    return module


def _cmd_bench(args) -> int:
    runner = _load_benchmark_runner()
    argv: List[str] = []
    if args.list:
        argv.append("--list")
    else:
        argv.extend(["--suite", args.suite])
        if args.check:
            argv.append("--check")
    return runner.main(argv)


def _obs_for(args):
    """``(obs, obs_dir)`` for a ``--metrics`` verb, or ``(None, None)``.

    Registries are process-local, so every surface that enables metrics
    must export its snapshot before exiting — callers pair this with
    :func:`_export_obs` in a ``finally`` block (the snapshot must land
    even when a guard fails the run).
    """
    if not getattr(args, "metrics", False):
        return None, None
    from repro.obs import create_observability, obs_root

    store_root = args.store if args.store is not None else default_store_root()
    obs_dir = obs_root(store_root)
    return create_observability(obs_dir), obs_dir


def _export_obs(obs, obs_dir) -> None:
    if obs is None:
        return
    from repro.obs import export_metrics

    obs.tracer.close()
    path = export_metrics(obs, obs_dir)
    # stderr so --json stdout stays machine-parseable.
    print(
        f"observability: metrics -> {path}  traces -> {obs.tracer.path}",
        file=sys.stderr,
    )


def _cmd_serve_bench(args) -> int:
    # Deferred import: the serving stack pulls in the hardware simulator,
    # which `list`/`show` callers should not pay for.
    from repro.serving.bench import (
        check_serving_stats,
        collect_serving_stats,
        run_chaos_drill,
    )

    _install_faults(args.faults)
    obs, obs_dir = _obs_for(args)
    try:
        if args.drill:
            summary = run_chaos_drill(obs=obs)
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True, default=str))
            return 0 if summary.get("ok") else 1
        stats = collect_serving_stats(requests_per_level=args.requests, obs=obs)
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True, default=str))
        else:
            print(f"serving capacity: {stats['capacity_rps']:.0f} requests/s sustained")
            for name, level in stats["levels"].items():
                rejected = sum(level["rejections"].values())
                print(
                    f"  {name:<5} offered {level['offered_rate']:.0f}/s  "
                    f"served {level['throughput']:.0f}/s  "
                    f"p50 {level['p50_ms']:.2f} ms  p99 {level['p99_ms']:.2f} ms  "
                    f"shed {rejected}/{level['requests']}"
                )
        try:
            check_serving_stats(stats)
        except AssertionError as error:
            print(f"FAIL: shed-don't-collapse guard: {error}", file=sys.stderr)
            return 1
        return 0
    finally:
        _export_obs(obs, obs_dir)


def _cmd_serve_jobs(args) -> int:
    # Deferred import: the scheduler pulls in the full experiments stack,
    # which `list`/`show` callers should not pay for.
    from repro.scheduler.daemon import serve_jobs

    store_root = args.store if args.store is not None else default_store_root()
    obs, obs_dir = _obs_for(args)
    try:
        serve_jobs(
            store_root,
            args.queue,
            workers=args.workers,
            poll_s=args.poll_s,
            drain=args.drain,
            idle_exit_s=args.idle_exit_s,
            obs=obs,
        )
    finally:
        _export_obs(obs, obs_dir)
    return 0


def _fmt_seconds(value) -> str:
    """Milliseconds rendering for percentile fields (NaN/None → '-')."""
    if value is None or value != value:
        return "-"
    return f"{float(value) * 1000:.3f} ms"


def _fmt_raw(value) -> str:
    """Plain rendering for unitless histogram fields (NaN/None → '-')."""
    if value is None or value != value:
        return "-"
    return f"{float(value):g}"


def _cmd_metrics(args) -> int:
    from repro.obs import load_metrics_snapshot, metrics_path, obs_root

    store_root = args.store if args.store is not None else default_store_root()
    path = metrics_path(obs_root(store_root))
    snapshot = load_metrics_snapshot(path)
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"metrics snapshot: {path}")
    if snapshot.get("counters"):
        print("counters:")
        for name, value in snapshot["counters"].items():
            print(f"  {name:<36} {value}")
    if snapshot.get("gauges"):
        print("gauges:")
        for name, value in snapshot["gauges"].items():
            print(f"  {name:<36} {value:g}")
    if snapshot.get("histograms"):
        print("histograms:")
        for name, hist in snapshot["histograms"].items():
            # The `_s` suffix marks seconds-valued series (rendered as ms);
            # anything else (batch sizes, ...) prints raw.
            fmt = _fmt_seconds if name.endswith("_s") else _fmt_raw
            print(
                f"  {name:<36} count {hist['count']:<6} "
                f"p50 {fmt(hist['p50'])}  "
                f"p95 {fmt(hist['p95'])}  "
                f"p99 {fmt(hist['p99'])}"
            )
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import obs_root, read_trace_file, summarize_traces, traces_path

    store_root = args.store if args.store is not None else default_store_root()
    path = traces_path(obs_root(store_root))
    if not path.exists():
        raise ReproError(
            f"no trace stream at {path}; run `serve-bench --metrics` or "
            "`serve-jobs --metrics` first"
        )
    records = read_trace_file(path)
    if args.kind:
        records = [r for r in records if r.get("kind") == args.kind]
    if args.filter:
        needle = args.filter
        records = [
            r
            for r in records
            if any(
                needle in str(r.get(field, ""))
                for field in ("run", "job", "name", "node", "kind")
            )
        ]
    summary = summarize_traces(records)
    if args.json:
        print(
            json.dumps(
                {"summary": summary, "records": records},
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 0
    print(f"trace stream: {path} ({len(records)} matching record(s))")
    if "requests" in summary:
        req = summary["requests"]
        print(
            f"requests: {req['count']}  outcomes {req['outcomes']}  "
            f"degraded {req['degraded']}"
        )
        wait = req["queue_wait_s"]
        print(
            f"  queue wait  p50 {_fmt_seconds(wait['p50'])}  "
            f"p99 {_fmt_seconds(wait['p99'])}  (n={wait['count']})"
        )
        print(f"  batch sizes {req['batch_sizes']}")
        if req["breaker_states"]:
            print(f"  breaker states {req['breaker_states']}")
    if "nodes" in summary:
        nodes = summary["nodes"]
        print(f"nodes: {nodes['count']}  statuses {nodes['statuses']}")
        print(
            f"  ready wait  p50 {_fmt_seconds(nodes['ready_wait_s']['p50'])}  "
            f"p99 {_fmt_seconds(nodes['ready_wait_s']['p99'])}"
        )
        print(
            f"  node time   p50 {_fmt_seconds(nodes['elapsed_s']['p50'])}  "
            f"p99 {_fmt_seconds(nodes['elapsed_s']['p99'])}"
        )
        depths = nodes["queue_depth_samples"]
        if depths:
            print(f"  queue depth at dispatch  max {max(depths)}  samples {depths}")
    if "spans" in summary:
        print("spans:")
        for name, span in summary["spans"].items():
            print(
                f"  {name:<28} n={span['count']:<5} "
                f"p50 {_fmt_seconds(span['p50'])}  p99 {_fmt_seconds(span['p99'])}"
            )
    if args.limit > 0 and records:
        print(f"recent records (last {min(args.limit, len(records))}):")
        for record in records[-args.limit:]:
            fields = {
                k: v
                for k, v in sorted(record.items())
                if k not in ("sha256",) and v is not None
            }
            print(f"  {fields}")
    return 0


def _cmd_submit(args) -> int:
    spec = _resolve_spec(args)
    queue = _queue_for(args)
    job = queue.submit(spec, priority=args.priority)
    if args.json:
        print(
            json.dumps(
                {
                    "job_id": job.job_id,
                    "priority": job.priority,
                    "fingerprint": job.fingerprint,
                    "name": job.name,
                    "queue": str(queue.root),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"queued {job.job_id} (priority {job.priority}) in {queue.root}")
    return 0


def _cmd_status(args) -> int:
    from repro.scheduler.client import job_rows, render_job_rows

    queue = _queue_for(args)
    store_root = args.store if args.store is not None else default_store_root()
    store = RunStore(store_root) if Path(store_root).exists() else None
    rows = job_rows(queue, store)
    if args.job:
        wanted = queue.load(args.job).job_id
        rows = [row for row in rows if row["job_id"] == wanted]
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_job_rows(rows))
    return 0


def _cmd_cancel(args) -> int:
    queue = _queue_for(args)
    job = queue.load(args.job)
    if queue.request_cancel(job.job_id):
        print(f"cancel requested for {job.job_id}")
        return 0
    state = queue.state(job.job_id).get("state")
    print(f"{job.job_id} is already {state}; nothing to cancel", file=sys.stderr)
    return 1


def _cmd_watch(args) -> int:
    from repro.scheduler.client import render_event, watch_events

    queue = _queue_for(args)
    job_id = queue.load(args.job).job_id if args.job else None
    for record in watch_events(queue, job_id=job_id, timeout_s=args.timeout_s):
        if args.json:
            print(json.dumps(record, sort_keys=True), flush=True)
        else:
            print(render_event(record), flush=True)
    return 0


def _cmd_lint(args) -> int:
    # Deferred import: the linter's project rules import live repro modules,
    # which `run`/`list` callers should not pay for.
    from repro.analysis.cli import run_lint

    return run_lint(
        args.paths or None,
        fmt=args.format,
        rules=args.rules,
        list_rules=args.list_rules,
        root=args.root,
    )


_COMMANDS = {
    "run": _cmd_run,
    "list": _cmd_list,
    "show": _cmd_show,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "serve-bench": _cmd_serve_bench,
    "serve-jobs": _cmd_serve_jobs,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cancel": _cmd_cancel,
    "watch": _cmd_watch,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (RunInterrupted, PointFailureError) as error:
        # Aborted runs: the message names the partial artifact when one was
        # persisted, so `run` again resumes from it.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
