"""Table 1: accuracy and per-layer ranks for Original / Direct LRA / Rank clipping.

The harness trains the dense baseline, runs rank clipping to find the final
per-layer ranks, and then builds the "Direct LRA" control by truncating the
*baseline* network at exactly those ranks without any retraining — the same
protocol as the paper's Table 1, where the Direct LRA row uses the ranks the
clipping procedure converged to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import RankClippingConfig
from repro.core.conversion import convert_to_lowrank, direct_lra
from repro.core.rank_clipping import RankClipper, RankClippingResult
from repro.experiments.runner import SweepEngine
from repro.experiments.training import TrainingSetup, train_baseline
from repro.experiments.workloads import Workload


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (a method with its accuracy and per-layer ranks)."""

    method: str
    accuracy: float
    ranks: Dict[str, int]


@dataclass
class Table1Result:
    """Full Table 1 for one workload."""

    workload_name: str
    layer_order: List[str]
    rows: List[Table1Row] = field(default_factory=list)
    clipping_result: Optional[RankClippingResult] = None

    def row(self, method: str) -> Table1Row:
        """Return the row for ``method`` (e.g. ``"Rank clipping"``)."""
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row for method {method!r}")

    def accuracy_drop(self) -> float:
        """Original accuracy minus rank-clipping accuracy."""
        return self.row("Original").accuracy - self.row("Rank clipping").accuracy

    def format_table(self) -> str:
        """Render the table in the paper's layout."""
        header = f"{'method':<16}{'accuracy':>10}  " + "".join(
            f"{name:>10}" for name in self.layer_order
        )
        lines = [f"Table 1 ({self.workload_name})", header, "-" * len(header)]
        for row in self.rows:
            ranks = "".join(f"{row.ranks.get(name, '-')!s:>10}" for name in self.layer_order)
            lines.append(f"{row.method:<16}{row.accuracy:>9.2%}  {ranks}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, dict]:
        """JSON-friendly view keyed by method name."""
        return {
            row.method: {"accuracy": row.accuracy, "ranks": dict(row.ranks)}
            for row in self.rows
        }


def run_table1(
    workload: Workload,
    *,
    tolerance: float = 0.03,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
    method: str = "pca",
    engine: Optional[SweepEngine] = None,
) -> Table1Result:
    """Regenerate Table 1 for one workload.

    Parameters
    ----------
    workload:
        The network/dataset pair (LeNet-MNIST or ConvNet-CIFAR analogue).
    tolerance:
        Tolerable clipping error ``ε``.
    setup, baseline_network, baseline_accuracy:
        Optionally reuse an already-trained baseline (used by benches that
        produce several tables from one training run).
    method:
        Low-rank backend (``"pca"`` or ``"svd"``) — the SVD ablation reuses
        this entry point.
    engine:
        Execution policy; the control-row evaluations go through its
        (batched) network evaluator.
    """
    engine = engine or SweepEngine()
    scale = workload.scale
    if baseline_network is None or setup is None:
        baseline_network, baseline_accuracy, setup = train_baseline(workload)
    elif baseline_accuracy is None:
        baseline_accuracy = setup.evaluate(baseline_network)

    layer_order = list(workload.clippable_layers)
    full_ranks = {
        name: min(workload.layer_shapes[name]) for name in layer_order
    }

    # Step 1: rank clipping on a full-rank factorized copy of the baseline.
    lowrank_network = convert_to_lowrank(baseline_network, layers=layer_order)
    config = RankClippingConfig(
        tolerance=tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        method=method,
        layers=tuple(layer_order),
    )
    clipper = RankClipper(config)
    clipping = clipper.run(
        lowrank_network, setup.trainer_factory, baseline_accuracy=baseline_accuracy
    )

    # Step 2: Direct LRA control — truncate the baseline at the clipped ranks
    # without retraining.
    direct_network = direct_lra(baseline_network, clipping.final_ranks, method=method)
    direct_accuracy = engine.evaluate_networks([direct_network], setup)[0]

    result = Table1Result(workload_name=workload.name, layer_order=layer_order)
    result.rows.append(Table1Row("Original", baseline_accuracy, full_ranks))
    result.rows.append(Table1Row("Direct LRA", direct_accuracy, dict(clipping.final_ranks)))
    result.rows.append(
        Table1Row("Rank clipping", clipping.final_accuracy, dict(clipping.final_ranks))
    )
    result.clipping_result = clipping
    return result
