"""Table 1 result view and the legacy ``run_table1`` entry point.

Table 1 reports accuracy and per-layer ranks for Original / Direct LRA /
Rank clipping.  The harness logic — train the dense baseline, run rank
clipping to find the final per-layer ranks, then build the "Direct LRA"
control by truncating the *baseline* network at exactly those ranks without
retraining — lives in the declarative core
(:mod:`repro.experiments.plan`, ``kind="table1"``).  This module keeps the
result dataclasses (with their paper-layout rendering and JSON payload
round-trip) and a thin deprecation shim preserving the old call signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.rank_clipping import RankClippingResult
from repro.experiments.runner import SweepEngine
from repro.experiments.training import TrainingSetup
from repro.experiments.workloads import Workload


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (a method with its accuracy and per-layer ranks)."""

    method: str
    accuracy: float
    ranks: Dict[str, int]


@dataclass
class Table1Result:
    """Full Table 1 for one workload."""

    workload_name: str
    layer_order: List[str]
    rows: List[Table1Row] = field(default_factory=list)
    clipping_result: Optional[RankClippingResult] = None

    def row(self, method: str) -> Table1Row:
        """Return the row for ``method`` (e.g. ``"Rank clipping"``)."""
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row for method {method!r}")

    def accuracy_drop(self) -> float:
        """Original accuracy minus rank-clipping accuracy."""
        return self.row("Original").accuracy - self.row("Rank clipping").accuracy

    def format_table(self) -> str:
        """Render the table in the paper's layout."""
        header = f"{'method':<16}{'accuracy':>10}  " + "".join(
            f"{name:>10}" for name in self.layer_order
        )
        lines = [f"Table 1 ({self.workload_name})", header, "-" * len(header)]
        for row in self.rows:
            ranks = "".join(f"{row.ranks.get(name, '-')!s:>10}" for name in self.layer_order)
            lines.append(f"{row.method:<16}{row.accuracy:>9.2%}  {ranks}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, dict]:
        """JSON-friendly view keyed by method name."""
        return {
            row.method: {"accuracy": row.accuracy, "ranks": dict(row.ranks)}
            for row in self.rows
        }

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts (drops the training trace)."""
        return {
            "workload_name": self.workload_name,
            "layer_order": list(self.layer_order),
            "rows": [
                {"method": row.method, "accuracy": row.accuracy, "ranks": dict(row.ranks)}
                for row in self.rows
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Table1Result":
        """Rebuild from :meth:`to_payload` output (``clipping_result`` is lost)."""
        return cls(
            workload_name=payload["workload_name"],
            layer_order=list(payload["layer_order"]),
            rows=[
                Table1Row(
                    method=row["method"],
                    accuracy=float(row["accuracy"]),
                    ranks={name: int(rank) for name, rank in row["ranks"].items()},
                )
                for row in payload.get("rows", [])
            ],
        )


def run_table1(
    workload: Workload,
    *,
    tolerance: float = 0.03,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
    method: str = "pca",
    engine: Optional[SweepEngine] = None,
) -> Table1Result:
    """Regenerate Table 1 for one workload (deprecated imperative entry point).

    .. deprecated::
        Build an :class:`~repro.experiments.spec.ExperimentSpec` with
        ``kind="table1"`` (or resolve the ``table1`` registry preset) and
        call :func:`~repro.experiments.plan.execute_spec` — that path adds
        artifact persistence and resume.  This shim lifts its arguments into
        the same spec and returns the identical result.
    """
    from repro.experiments.plan import (
        ExperimentContext,
        execute_spec,
        warn_deprecated_entry_point,
    )
    from repro.experiments.spec import spec_for_workload

    warn_deprecated_entry_point("run_table1", 'ExperimentSpec(kind="table1")')
    spec = spec_for_workload(
        "table1", workload, tolerance=tolerance, lowrank_method=method, engine=engine
    )
    run = execute_spec(
        spec,
        context=ExperimentContext(
            workload=workload,
            setup=setup,
            baseline_network=baseline_network,
            baseline_accuracy=baseline_accuracy,
        ),
    )
    return run.result
