"""Content-addressed run store: persisted, resumable experiment artifacts.

Every :func:`~repro.experiments.plan.execute_spec` run with a store attached
writes one JSON artifact per spec fingerprint (``<root>/<fingerprint>.json``)
holding the spec, the environment, coarse phase timings, every point result
keyed by its point fingerprint, and the assembled result payload.  Because
point fingerprints hash the *science* (workload, scale, method, swept value,
seed policy) and not the execution policy, a point trained by any earlier
run — serial, parallel or lockstep, same grid or an overlapping one — can be
reused by any later run.

:func:`compare_artifacts` and :func:`render_artifact` power the
``python -m repro compare`` / ``show`` commands from stored artifacts alone:
reloaded results rebuild their rich view objects (``format_table`` /
``format_series``) without any retraining.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

try:  # POSIX-only; journal locking degrades gracefully without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.exceptions import ExperimentError
from repro.utils import faultinject
from repro.utils.logging import get_logger
from repro.utils.serialization import jsonify, load_json, save_json

logger = get_logger("experiments.store")

PathLike = Union[str, Path]

#: Environment variable overriding the default store location.
DEFAULT_STORE_ENV = "REPRO_RUN_STORE"

#: Artifact key holding the sha256 of the rest of the artifact; written on
#: save and verified on load so bit rot and torn writes are quarantined, not
#: silently reused.
CHECKSUM_FIELD = "payload_sha256"


def _payload_checksum(payload: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of ``payload`` minus the checksum field."""
    body = {key: value for key, value in payload.items() if key != CHECKSUM_FIELD}
    blob = json.dumps(jsonify(body), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def default_store_root() -> Path:
    """The store directory the CLI uses by default (``$REPRO_RUN_STORE`` or ``runs/``)."""
    return Path(os.environ.get(DEFAULT_STORE_ENV, "runs"))


class RunStore:
    """A directory of content-addressed experiment artifacts.

    The store is multi-writer safe on POSIX: every artifact read, write,
    and read-merge-write (:meth:`update`) holds an ``fcntl`` lock on a
    hidden per-fingerprint sidecar (``.<fingerprint>.lock``), so N clients
    and M scheduler workers can share one artifact pool without torn or
    lost writes.  ``flock`` locks are per open file description, so the
    same discipline serializes threads within a process and processes
    across the machine.  Without ``fcntl`` the locks degrade to no-ops —
    single-writer behaviour, as before.
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r})"

    # ------------------------------------------------------------------ paths
    def path(self, fingerprint: str) -> Path:
        """Artifact path for a spec fingerprint."""
        return self.root / f"{fingerprint}.json"

    def fingerprints(self) -> List[str]:
        """All stored spec fingerprints (sorted)."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    # ------------------------------------------------------------------ locks
    @contextlib.contextmanager
    def _artifact_lock(self, fingerprint: str, *, exclusive: bool = True):
        """Hold the per-fingerprint artifact lock (no-op without fcntl).

        The lock lives on a hidden sidecar file, never on the artifact
        itself: the artifact is replaced atomically by rename, so a lock on
        its inode would silently detach from the path mid-critical-section.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.root / f".{fingerprint}.lock"
        with open(lock_path, "a+", encoding="utf-8") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -------------------------------------------------------------------- io
    def _write_artifact(self, path: Path, artifact: Dict[str, Any]) -> None:
        """Atomic checksummed write (caller holds the artifact lock)."""
        temp = path.with_name(f".{path.name}.tmp")
        save_json(temp, {**artifact, CHECKSUM_FIELD: _payload_checksum(artifact)})
        os.replace(temp, path)
        # Chaos hook: "store-save"/"corrupt" faults garble the artifact here
        # so the quarantine path below is testable end to end.
        faultinject.corrupt_file(path)

    def save(self, artifact: Dict[str, Any]) -> Path:
        """Persist an artifact (keyed by its ``fingerprint`` field).

        The write is atomic (temp file + rename), so an interrupted run can
        never leave a truncated artifact behind, and carries a sha256
        payload checksum (:data:`CHECKSUM_FIELD`) that :meth:`load` verifies.
        The write holds the per-fingerprint exclusive lock, so two writers
        racing on one fingerprint serialize whole artifacts.
        """
        fingerprint = artifact.get("fingerprint")
        if not fingerprint:
            raise ExperimentError("artifact is missing its 'fingerprint' field")
        path = self.path(fingerprint)
        with self._artifact_lock(fingerprint):
            self._write_artifact(path, artifact)
        return path

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Load one artifact, or ``None`` when nothing valid is stored.

        A corrupt artifact — unparseable JSON from a torn write, or a
        parseable one whose sha256 checksum no longer matches its content —
        is *quarantined*: renamed to ``<name>.json.corrupt`` (out of the
        store's ``*.json`` namespace) with a warning, so the evidence
        survives for inspection while the run recomputes cleanly.  Artifacts
        written before the checksum existed load without verification.
        Readers hold the per-fingerprint lock in shared mode: many readers
        proceed together but never overlap an in-flight :meth:`update`.
        """
        with self._artifact_lock(fingerprint, exclusive=False):
            artifact, _ = self._read_artifact(self.path(fingerprint))
        return artifact

    def update(
        self,
        fingerprint: str,
        merge: Callable[[Optional[Dict[str, Any]]], Dict[str, Any]],
    ) -> Tuple[Path, Dict[str, Any]]:
        """Read-merge-write one artifact atomically under the exclusive lock.

        ``merge`` receives the currently stored artifact (or ``None``) and
        returns the artifact to persist; the read and write happen inside
        one critical section, so two runs finishing the same spec cannot
        lose each other's points.  ``merge`` MUST NOT touch the store for
        the same fingerprint (the lock is not reentrant).  Returns the
        artifact path and the merged artifact.
        """
        path = self.path(fingerprint)
        with self._artifact_lock(fingerprint):
            existing, _ = self._read_artifact(path)
            merged = merge(existing)
            if merged.get("fingerprint") != fingerprint:
                raise ExperimentError(
                    f"update({fingerprint!r}) produced an artifact keyed "
                    f"{merged.get('fingerprint')!r}"
                )
            self._write_artifact(path, merged)
        return path, merged

    def _read_artifact(self, path: Path) -> Tuple[Optional[Dict[str, Any]], bool]:
        """Load + verify one artifact file: ``(artifact, had_checksum)``.

        ``had_checksum`` distinguishes verified artifacts from legacy ones
        written before :data:`CHECKSUM_FIELD` existed — ``python -m repro
        list`` flags the latter, since their integrity is unverifiable.
        """
        if not path.exists():
            return None, False
        try:
            artifact = load_json(path)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._quarantine(path, f"unparseable JSON ({error})")
            return None, False
        if not isinstance(artifact, dict):
            self._quarantine(path, f"expected a JSON object, got {type(artifact).__name__}")
            return None, False
        stored_checksum = artifact.get(CHECKSUM_FIELD)
        if stored_checksum is None:
            return artifact, False
        actual = _payload_checksum(artifact)
        if actual != stored_checksum:
            self._quarantine(
                path,
                f"checksum mismatch (stored {str(stored_checksum)[:12]}…, "
                f"content hashes to {actual[:12]}…)",
            )
            return None, False
        return {k: v for k, v in artifact.items() if k != CHECKSUM_FIELD}, True

    def _quarantine(self, path: Path, reason: str) -> Path:
        """Move a corrupt file aside (``.corrupt`` suffix) instead of reusing it."""
        target = path.with_name(f"{path.name}.corrupt")
        os.replace(path, target)
        logger.warning("quarantined corrupt artifact %s -> %s: %s", path, target, reason)
        return target

    def delete(self, fingerprint: str) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        path = self.path(fingerprint)
        if not path.exists():
            return False
        path.unlink()
        return True

    def artifacts(self) -> Iterator[Dict[str, Any]]:
        """Iterate over every stored artifact."""
        for fingerprint in self.fingerprints():
            artifact = self.load(fingerprint)
            if artifact is not None:
                yield artifact

    def quarantined(self) -> List[str]:
        """File names of quarantined corrupt artifacts (``*.json.corrupt``)."""
        return sorted(path.name for path in self.root.glob("*.json.corrupt"))

    # ---------------------------------------------------------------- queries
    def list_runs(self) -> List[Dict[str, Any]]:
        """Summary rows for every artifact, most recently updated first.

        Besides the identity columns, each row carries the health flags the
        ``list`` command renders: ``complete`` (False for partial runs),
        ``legacy_checksum`` (written before the sha256 checksum existed, so
        integrity is unverifiable).
        """
        rows = []
        for fingerprint in self.fingerprints():
            artifact, had_checksum = self._read_artifact(self.path(fingerprint))
            if artifact is None:
                continue
            rows.append(
                {
                    "fingerprint": artifact.get("fingerprint", ""),
                    "name": artifact.get("name", ""),
                    "kind": artifact.get("kind", ""),
                    "method": artifact.get("method", ""),
                    "workload": artifact.get("workload", ""),
                    "scale": artifact.get("scale", ""),
                    "points": len(artifact.get("points", {})),
                    "complete": bool(artifact.get("complete")),
                    "failures": len(artifact.get("failures") or {}),
                    "legacy_checksum": not had_checksum,
                    "updated": artifact.get("updated", ""),
                }
            )
        rows.sort(key=lambda row: (row["updated"], row["fingerprint"]), reverse=True)
        return rows

    def find(self, key: str) -> Dict[str, Any]:
        """Resolve an artifact by fingerprint, fingerprint prefix, or spec name.

        Name matches return the most recently updated artifact with that
        name.  Ambiguous prefixes and unknown keys raise
        :class:`~repro.exceptions.ExperimentError`.
        """
        exact = self.load(key)
        if exact is not None:
            return exact
        matches = [fp for fp in self.fingerprints() if fp.startswith(key)]
        if len(matches) == 1:
            return self.load(matches[0])
        if len(matches) > 1:
            raise ExperimentError(
                f"ambiguous fingerprint prefix {key!r}: matches {matches}"
            )
        named = [
            artifact for artifact in self.artifacts() if artifact.get("name") == key
        ]
        if named:
            named.sort(key=lambda artifact: artifact.get("updated", ""))
            return named[-1]
        raise ExperimentError(
            f"no stored run matches {key!r}; stored fingerprints: {self.fingerprints()}"
        )

    def lookup_points(self, fingerprints: Iterable[str]) -> Dict[str, Dict[str, Any]]:
        """Stored point payloads for the given point fingerprints.

        Scans every artifact in the store, so points persisted by *other*
        runs (different grid, different execution policy) resume too.
        """
        wanted = set(fingerprints)
        found: Dict[str, Dict[str, Any]] = {}
        if not wanted:
            return found
        for artifact in self.artifacts():
            for fingerprint, entry in artifact.get("points", {}).items():
                if fingerprint in wanted and fingerprint not in found:
                    payload = entry.get("payload")
                    if payload is not None:
                        found[fingerprint] = payload
            if len(found) == len(wanted):
                break
        return found

    def lookup_baseline(self, fingerprint: str) -> Optional[float]:
        """Stored dense-baseline accuracy for a baseline fingerprint, if any."""
        for artifact in self.artifacts():
            baseline = artifact.get("baseline")
            if (
                isinstance(baseline, dict)
                and baseline.get("fingerprint") == fingerprint
                and baseline.get("accuracy") is not None
            ):
                return float(baseline["accuracy"])
        return None

    # ---------------------------------------------------------------- journal
    # Mid-run durability: the executor appends each finished point's payload
    # to `<spec fingerprint>.journal.jsonl` the moment it completes, so a
    # crash, SIGINT, or strict abort loses at most the point in flight.  The
    # next run folds journal entries back in exactly like stored artifact
    # points, and the journal is deleted once the complete artifact lands.

    def journal_path(self, fingerprint: str) -> Path:
        """Journal path for a spec fingerprint (JSONL, one point per line)."""
        return self.root / f"{fingerprint}.journal.jsonl"

    def append_journal(
        self, fingerprint: str, point_fingerprint: str, payload: Dict[str, Any]
    ) -> Path:
        """Durably append one completed point's payload to the run journal.

        Each line is a self-contained JSON record
        ``{"point": …, "payload": …, "sha256": …}`` whose checksum covers the
        point fingerprint and payload, flushed and fsynced before returning —
        a parent crash immediately after a point completes cannot lose it,
        and a crash mid-append corrupts only the trailing line, which
        :meth:`load_journal` skips.

        The append holds an exclusive ``fcntl`` lock on the journal file, so
        concurrent writers (two supervisors sharing one store, a resumed run
        racing a stale one) serialize whole lines instead of interleaving
        partial ones.  On platforms without ``fcntl`` the append is
        unlocked — same behaviour as before, single-writer safe.
        """
        record = {"point": point_fingerprint, "payload": jsonify(payload)}
        record["sha256"] = _payload_checksum(record)
        path = self.journal_path(fingerprint)
        with open(path, "a", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return path

    def load_journal(self, fingerprint: str) -> Dict[str, Dict[str, Any]]:
        """Point payloads journaled by an interrupted run of ``fingerprint``.

        Tolerant of a truncated or garbled trailing line (the signature of a
        crash mid-append): invalid lines are skipped with a warning, valid
        ones are still recovered.  Later entries for the same point win.
        """
        path = self.journal_path(fingerprint)
        if not path.exists():
            return {}
        recovered: Dict[str, Dict[str, Any]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "skipping corrupt journal line %s:%d (truncated write?)",
                        path,
                        number,
                    )
                    continue
                body = (
                    {k: v for k, v in record.items() if k != "sha256"}
                    if isinstance(record, dict)
                    else None
                )
                if (
                    body is None
                    or "point" not in body
                    or "payload" not in body
                    or record.get("sha256") != _payload_checksum(body)
                ):
                    logger.warning(
                        "skipping journal line %s:%d with a bad checksum", path, number
                    )
                    continue
                recovered[record["point"]] = record["payload"]
        if recovered:
            logger.info(
                "recovered %d journaled point(s) for %s", len(recovered), fingerprint
            )
        return recovered

    def clear_journal(self, fingerprint: str) -> bool:
        """Delete the run journal (called once the complete artifact lands)."""
        path = self.journal_path(fingerprint)
        if not path.exists():
            return False
        path.unlink()
        return True


# ----------------------------------------------------------------- rendering
def render_artifact(artifact: Dict[str, Any]) -> str:
    """Human-readable view of one stored artifact (``python -m repro show``)."""
    from repro.experiments.plan import render_result, result_from_payload
    from repro.experiments.spec import ExperimentSpec

    lines = [
        f"run {artifact.get('name', '?')} [{artifact.get('fingerprint', '?')}]",
        f"kind={artifact.get('kind')} method={artifact.get('method')} "
        f"workload={artifact.get('workload')} scale={artifact.get('scale')} "
        f"execution={artifact.get('execution')}",
        f"created {artifact.get('created')} | updated {artifact.get('updated')} | "
        f"complete={bool(artifact.get('complete'))}",
    ]
    timings = artifact.get("timings") or {}
    if timings:
        rendered = ", ".join(f"{key}={value:.2f}s" for key, value in sorted(timings.items()))
        lines.append(f"timings: {rendered}")
    observability = artifact.get("observability") or {}
    if observability:
        # Only present on instrumented runs; descriptive, never fingerprinted.
        parts = []
        stages = observability.get("stage_timings") or {}
        if stages:
            parts.append(f"{len(stages)} stage timing(s)")
        nodes = observability.get("nodes") or {}
        if nodes:
            slowest_id, slowest_s = max(nodes.items(), key=lambda kv: kv[1])
            parts.append(f"{len(nodes)} node(s), slowest {slowest_id} {slowest_s:.2f}s")
        if parts:
            lines.append(f"observability: {', '.join(parts)}")
    points = artifact.get("points") or {}
    if points:
        reused = sum(1 for entry in points.values() if entry.get("reused"))
        lines.append(f"points: {len(points)} stored ({reused} reused from earlier runs)")
    failures = artifact.get("failures") or {}
    if failures:
        lines.append(f"failed points: {len(failures)}")
        for record in sorted(failures.values(), key=lambda r: r.get("index", 0)):
            lines.append(
                f"  {record.get('label', '?')}: {record.get('error_type', '?')} "
                f"after {record.get('attempts', '?')} attempt(s): "
                f"{record.get('message', '')}"
            )
    baseline = artifact.get("baseline") or {}
    if baseline.get("accuracy") is not None:
        lines.append(f"baseline accuracy: {baseline['accuracy']:.4f}")
    hardware = hardware_summary(artifact)
    if hardware:
        lines.append(
            f"hardware corners: {len(hardware)} simulated accuracy value(s) "
            f"({', '.join(list(hardware)[:4])}{', …' if len(hardware) > 4 else ''})"
        )
    result_payload = artifact.get("result")
    if result_payload is not None and artifact.get("spec"):
        spec = ExperimentSpec.from_dict(artifact["spec"])
        lines.append("")
        lines.append(render_result(result_from_payload(spec, result_payload)))
    return "\n".join(lines)


def hardware_summary(artifact: Dict[str, Any]) -> Dict[str, float]:
    """Flat ``corner label → simulated accuracy`` rows of one artifact.

    Collects the device-simulation blocks a hardware-evaluated run stores —
    the result-level ``hardware`` dict of a baseline run, or the per-point
    ``hardware`` dicts of a sweep.  Single-point artifacts key rows by the
    corner label alone, so a baseline and a single-λ compressed run align in
    :func:`compare_artifacts`; multi-point sweeps qualify each row with the
    point's swept value.  Returns ``{}`` for runs without simulation.
    """
    result = artifact.get("result") or {}
    entries = []
    hardware = result.get("hardware")
    if isinstance(hardware, dict) and hardware:
        entries.append(("", hardware))
    for point in result.get("points") or []:
        if not isinstance(point, dict):
            continue
        hardware = point.get("hardware")
        if isinstance(hardware, dict) and hardware:
            value = point.get("strength", point.get("tolerance"))
            qualifier = f"{value:g}" if isinstance(value, (int, float)) else str(value)
            entries.append((qualifier, hardware))
    if not entries:
        return {}
    if len(entries) == 1:
        return {label: float(value) for label, value in entries[0][1].items()}
    rows: Dict[str, float] = {}
    for qualifier, hardware in entries:
        for label, value in hardware.items():
            rows[f"{label}@{qualifier}"] = float(value)
    return rows


def _flatten_numeric(value: Any, prefix: str, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            if key == "hardware":
                # Simulated accuracies render in compare_artifacts' dedicated
                # hardware table; flattening them too would list every corner
                # twice.
                continue
            _flatten_numeric(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten_numeric(item, f"{prefix}[{index}]", out)


def flatten_result(payload: Dict[str, Any]) -> Dict[str, float]:
    """Dotted-path view of every numeric leaf in a result payload."""
    out: Dict[str, float] = {}
    _flatten_numeric(payload or {}, "", out)
    return out


def compare_artifacts(first: Dict[str, Any], second: Dict[str, Any]) -> str:
    """Metric-by-metric comparison of two stored artifacts.

    Numeric leaves of both result payloads are aligned by dotted path;
    shared metrics render side by side with their delta, and metrics unique
    to one run are summarized underneath.
    """
    label_a = f"{first.get('name', 'a')}[{str(first.get('fingerprint', ''))[:8]}]"
    label_b = f"{second.get('name', 'b')}[{str(second.get('fingerprint', ''))[:8]}]"
    flat_a = flatten_result(first.get("result") or {})
    flat_b = flatten_result(second.get("result") or {})
    shared = sorted(set(flat_a) & set(flat_b))
    width = max([len("metric")] + [len(key) for key in shared])
    header = f"{'metric':<{width}}  {label_a:>16}  {label_b:>16}  {'delta':>12}"
    lines = [f"compare {label_a} vs {label_b}", header, "-" * len(header)]
    for key in shared:
        delta = flat_b[key] - flat_a[key]
        lines.append(
            f"{key:<{width}}  {flat_a[key]:>16.6g}  {flat_b[key]:>16.6g}  {delta:>+12.6g}"
        )
    only_a = sorted(set(flat_a) - set(flat_b))
    only_b = sorted(set(flat_b) - set(flat_a))
    if only_a:
        lines.append(f"only in {label_a}: {len(only_a)} metric(s), e.g. {only_a[:3]}")
    if only_b:
        lines.append(f"only in {label_b}: {len(only_b)} metric(s), e.g. {only_b[:3]}")
    if not shared:
        lines.append("(no shared numeric metrics)")
    failed_a = len(first.get("failures") or {})
    failed_b = len(second.get("failures") or {})
    if failed_a or failed_b:
        lines.append(
            f"failed points: {label_a} has {failed_a}, {label_b} has {failed_b} "
            "(partial results; see `show` for tracebacks)"
        )
    obs_a = (first.get("observability") or {}).get("nodes") or {}
    obs_b = (second.get("observability") or {}).get("nodes") or {}
    shared_nodes = [node for node in sorted(obs_a) if node in obs_b]
    if shared_nodes:
        width = max(len("node"), max(len(node) for node in shared_nodes))
        lines.append("")
        lines.append("per-node wall time (s, instrumented runs):")
        lines.append(
            f"{'node':<{width}}  {label_a:>16}  {label_b:>16}  {'delta':>12}"
        )
        for node in shared_nodes:
            delta = obs_b[node] - obs_a[node]
            lines.append(
                f"{node:<{width}}  {obs_a[node]:>16.4f}  {obs_b[node]:>16.4f}  "
                f"{delta:>+12.4f}"
            )
    hw_a = hardware_summary(first)
    hw_b = hardware_summary(second)
    shared_hw = [label for label in hw_a if label in hw_b]
    if shared_hw:
        width = max(len("corner"), max(len(label) for label in shared_hw))
        lines.append("")
        lines.append("simulated hardware accuracy:")
        lines.append(
            f"{'corner':<{width}}  {label_a:>16}  {label_b:>16}  {'delta':>12}"
        )
        for label in shared_hw:
            delta = hw_b[label] - hw_a[label]
            lines.append(
                f"{label:<{width}}  {hw_a[label]:>16.4f}  {hw_b[label]:>16.4f}  {delta:>+12.4f}"
            )
    return "\n".join(lines)
