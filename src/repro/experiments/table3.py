"""Table 3: MBC sizes and remaining routing wires of the big layers.

The harness runs the full Group Scissor pipeline (rank clipping on the
trained baseline, then group connection deletion on the big crossbar
matrices) and reports, per big matrix, the crossbar tile size selected by the
library and the percentage of routing wires that survive deletion — the rows
of Table 3 — plus the layer-wise average wire and routing-area fractions the
paper quotes (8.1 % / 52.06 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import GroupDeletionConfig, RankClippingConfig
from repro.core.conversion import convert_to_lowrank
from repro.core.group_deletion import GroupDeletionResult
from repro.core.rank_clipping import RankClipper, RankClippingResult
from repro.experiments.runner import SweepEngine
from repro.experiments.training import TrainingSetup, train_baseline
from repro.experiments.workloads import Workload
from repro.hardware.mapper import NetworkMapper


@dataclass(frozen=True)
class Table3Row:
    """One big crossbar matrix: its tile size and surviving routing wires."""

    matrix: str
    matrix_shape: Tuple[int, int]
    tile_shape: Tuple[int, int]
    num_crossbars: int
    wire_fraction: float

    @property
    def wire_percent(self) -> float:
        """Remaining wires in percent (the paper's "% wires" row)."""
        return 100.0 * self.wire_fraction


@dataclass
class Table3Result:
    """Full Table 3 for one workload."""

    workload_name: str
    rows: List[Table3Row] = field(default_factory=list)
    clipping_result: Optional[RankClippingResult] = None
    deletion_result: Optional[GroupDeletionResult] = None
    baseline_accuracy: Optional[float] = None
    final_accuracy: Optional[float] = None

    def row(self, matrix: str) -> Table3Row:
        """Return the row of a given matrix name (e.g. ``"fc1_u"``)."""
        for row in self.rows:
            if row.matrix == matrix:
                return row
        raise KeyError(f"no row for matrix {matrix!r}")

    def mean_wire_fraction(self) -> float:
        """Average remaining-wire fraction across the big matrices."""
        if not self.rows:
            return 1.0
        return float(np.mean([row.wire_fraction for row in self.rows]))

    def mean_routing_area_fraction(self) -> float:
        """Average remaining routing-area fraction (square of wire fractions)."""
        if not self.rows:
            return 1.0
        return float(np.mean([row.wire_fraction**2 for row in self.rows]))

    def format_table(self) -> str:
        """Render the table in the paper's layout."""
        header = f"{'matrix':<14}{'shape':<12}{'MBC size':<12}{'xbars':>6}{'% wires':>10}"
        lines = [f"Table 3 ({self.workload_name})", header, "-" * len(header)]
        for row in self.rows:
            shape = f"{row.matrix_shape[0]}x{row.matrix_shape[1]}"
            tile = f"{row.tile_shape[0]}x{row.tile_shape[1]}"
            lines.append(
                f"{row.matrix:<14}{shape:<12}{tile:<12}{row.num_crossbars:>6}"
                f"{row.wire_percent:>9.1f}%"
            )
        lines.append("-" * len(header))
        lines.append(
            f"mean wire fraction: {self.mean_wire_fraction():.2%}; "
            f"mean routing area: {self.mean_routing_area_fraction():.2%}"
        )
        if self.baseline_accuracy is not None and self.final_accuracy is not None:
            lines.append(
                f"accuracy: baseline {self.baseline_accuracy:.2%} -> final "
                f"{self.final_accuracy:.2%}"
            )
        return "\n".join(lines)


def run_table3(
    workload: Workload,
    *,
    tolerance: float = 0.03,
    strength: float = 0.01,
    include_small_matrices: bool = False,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
    engine: Optional[SweepEngine] = None,
) -> Table3Result:
    """Regenerate Table 3 for one workload (clipping + deletion + reporting).

    ``engine`` selects the deletion-phase execution policy (vectorized group
    Lasso, memoized routing analysis); the in-run accuracies the table
    quotes are always evaluated inline.
    """
    engine = engine or SweepEngine()
    scale = workload.scale
    if baseline_network is None or setup is None:
        baseline_network, baseline_accuracy, setup = train_baseline(workload)
    elif baseline_accuracy is None:
        baseline_accuracy = setup.evaluate(baseline_network)

    layer_order = list(workload.clippable_layers)
    lowrank_network = convert_to_lowrank(baseline_network, layers=layer_order)
    clip_config = RankClippingConfig(
        tolerance=tolerance,
        clip_interval=scale.clip_interval,
        max_iterations=scale.clip_iterations,
        layers=tuple(layer_order),
    )
    clipping = RankClipper(clip_config).run(
        lowrank_network, setup.trainer_factory, baseline_accuracy=baseline_accuracy
    )

    deletion_config = GroupDeletionConfig(
        strength=strength,
        iterations=scale.deletion_iterations,
        finetune_iterations=scale.finetune_iterations,
        include_small_matrices=include_small_matrices,
    )
    deleter = engine.make_deleter(deletion_config, record_interval=scale.record_interval)
    deletion = deleter.run(lowrank_network, setup.trainer_factory)

    mapper = NetworkMapper()
    report = mapper.map_network(lowrank_network)
    result = Table3Result(
        workload_name=workload.name,
        clipping_result=clipping,
        deletion_result=deletion,
        baseline_accuracy=baseline_accuracy,
        final_accuracy=deletion.accuracy_after_finetune,
    )
    for name, routing in deletion.routing_reports.items():
        matrix_report = report.matrix(name)
        result.rows.append(
            Table3Row(
                matrix=name,
                matrix_shape=matrix_report.matrix_shape,
                tile_shape=matrix_report.tile_shape,
                num_crossbars=matrix_report.num_crossbars,
                wire_fraction=routing.wire_fraction,
            )
        )
    return result
