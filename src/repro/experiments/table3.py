"""Table 3 result view and the legacy ``run_table3`` entry point.

Table 3 reports, per big crossbar matrix, the MBC tile size selected by the
library and the percentage of routing wires that survive group connection
deletion, plus the layer-wise average wire and routing-area fractions the
paper quotes (8.1 % / 52.06 %).  The full pipeline (rank clipping on the
trained baseline, then deletion on the big matrices) lives in the
declarative core (:mod:`repro.experiments.plan`, ``kind="table3"``); this
module keeps the result dataclasses with their rendering and JSON payload
round-trip, and a thin deprecation shim preserving the old call signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.group_deletion import GroupDeletionResult
from repro.core.rank_clipping import RankClippingResult
from repro.experiments.runner import SweepEngine
from repro.experiments.training import TrainingSetup
from repro.experiments.workloads import Workload


@dataclass(frozen=True)
class Table3Row:
    """One big crossbar matrix: its tile size and surviving routing wires."""

    matrix: str
    matrix_shape: Tuple[int, int]
    tile_shape: Tuple[int, int]
    num_crossbars: int
    wire_fraction: float

    @property
    def wire_percent(self) -> float:
        """Remaining wires in percent (the paper's "% wires" row)."""
        return 100.0 * self.wire_fraction


@dataclass
class Table3Result:
    """Full Table 3 for one workload."""

    workload_name: str
    rows: List[Table3Row] = field(default_factory=list)
    clipping_result: Optional[RankClippingResult] = None
    deletion_result: Optional[GroupDeletionResult] = None
    baseline_accuracy: Optional[float] = None
    final_accuracy: Optional[float] = None

    def row(self, matrix: str) -> Table3Row:
        """Return the row of a given matrix name (e.g. ``"fc1_u"``)."""
        for row in self.rows:
            if row.matrix == matrix:
                return row
        raise KeyError(f"no row for matrix {matrix!r}")

    def mean_wire_fraction(self) -> float:
        """Average remaining-wire fraction across the big matrices."""
        if not self.rows:
            return 1.0
        return float(np.mean([row.wire_fraction for row in self.rows]))

    def mean_routing_area_fraction(self) -> float:
        """Average remaining routing-area fraction (square of wire fractions)."""
        if not self.rows:
            return 1.0
        return float(np.mean([row.wire_fraction**2 for row in self.rows]))

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts (drops the training traces)."""
        return {
            "workload_name": self.workload_name,
            "baseline_accuracy": self.baseline_accuracy,
            "final_accuracy": self.final_accuracy,
            "rows": [
                {
                    "matrix": row.matrix,
                    "matrix_shape": list(row.matrix_shape),
                    "tile_shape": list(row.tile_shape),
                    "num_crossbars": row.num_crossbars,
                    "wire_fraction": row.wire_fraction,
                }
                for row in self.rows
            ],
            "mean_wire_fraction": self.mean_wire_fraction(),
            "mean_routing_area_fraction": self.mean_routing_area_fraction(),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Table3Result":
        """Rebuild from :meth:`to_payload` output (training traces are lost)."""
        return cls(
            workload_name=payload["workload_name"],
            baseline_accuracy=payload.get("baseline_accuracy"),
            final_accuracy=payload.get("final_accuracy"),
            rows=[
                Table3Row(
                    matrix=row["matrix"],
                    matrix_shape=tuple(row["matrix_shape"]),
                    tile_shape=tuple(row["tile_shape"]),
                    num_crossbars=int(row["num_crossbars"]),
                    wire_fraction=float(row["wire_fraction"]),
                )
                for row in payload.get("rows", [])
            ],
        )

    def format_table(self) -> str:
        """Render the table in the paper's layout."""
        header = f"{'matrix':<14}{'shape':<12}{'MBC size':<12}{'xbars':>6}{'% wires':>10}"
        lines = [f"Table 3 ({self.workload_name})", header, "-" * len(header)]
        for row in self.rows:
            shape = f"{row.matrix_shape[0]}x{row.matrix_shape[1]}"
            tile = f"{row.tile_shape[0]}x{row.tile_shape[1]}"
            lines.append(
                f"{row.matrix:<14}{shape:<12}{tile:<12}{row.num_crossbars:>6}"
                f"{row.wire_percent:>9.1f}%"
            )
        lines.append("-" * len(header))
        lines.append(
            f"mean wire fraction: {self.mean_wire_fraction():.2%}; "
            f"mean routing area: {self.mean_routing_area_fraction():.2%}"
        )
        if self.baseline_accuracy is not None and self.final_accuracy is not None:
            lines.append(
                f"accuracy: baseline {self.baseline_accuracy:.2%} -> final "
                f"{self.final_accuracy:.2%}"
            )
        return "\n".join(lines)


def run_table3(
    workload: Workload,
    *,
    tolerance: float = 0.03,
    strength: float = 0.01,
    include_small_matrices: bool = False,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
    engine: Optional[SweepEngine] = None,
) -> Table3Result:
    """Regenerate Table 3 for one workload (deprecated imperative entry point).

    .. deprecated::
        Build an :class:`~repro.experiments.spec.ExperimentSpec` with
        ``kind="table3"`` (or resolve the ``table3`` registry preset) and
        call :func:`~repro.experiments.plan.execute_spec` — that path adds
        artifact persistence and resume.  This shim lifts its arguments into
        the same spec and returns the identical result.
    """
    from repro.experiments.plan import (
        ExperimentContext,
        execute_spec,
        warn_deprecated_entry_point,
    )
    from repro.experiments.spec import spec_for_workload

    warn_deprecated_entry_point("run_table3", 'ExperimentSpec(kind="table3")')
    spec = spec_for_workload(
        "table3",
        workload,
        tolerance=tolerance,
        strength=strength,
        include_small_matrices=include_small_matrices,
        engine=engine,
    )
    run = execute_spec(
        spec,
        context=ExperimentContext(
            workload=workload,
            setup=setup,
            baseline_network=baseline_network,
            baseline_accuracy=baseline_accuracy,
        ),
    )
    return run.result
