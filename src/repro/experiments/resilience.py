"""Fault-tolerant sweep execution: retry, timeout, pool supervision, isolation.

Long sweeps and hardware evals run for hours across process pools, where a
single OOM-killed worker, transient exception, or SIGINT used to lose the
whole run.  This module supervises point execution so failure is contained
at point granularity:

* **Point-failure isolation** — a point that exhausts its retry budget is
  captured as a :class:`PointFailure` record (exception class, message,
  traceback, attempt count) on the :class:`RunMonitor` instead of aborting
  the run; the remaining points still execute and the caller persists a
  partial artifact.  ``strict=True`` restores abort-on-first-failure.
* **Retry with deterministic results** — :class:`RetryPolicy` re-runs
  transiently failing points.  Tasks are pure values and each attempt runs
  on a fresh copy (the pool pickles the pristine parent-side task per
  submission; the serial path deep-copies), with per-point seeds derived
  from ``(setup.seed, index)``, so a retried point's payload is
  bit-identical to a clean run's.
* **Worker supervision** — per-point wall-clock timeouts on the pool path
  (a hung worker is terminated and the pool rebuilt), ``BrokenProcessPool``
  recovery that resubmits only the lost points, and graceful degradation to
  supervised serial execution after repeated pool failures.
* **Interrupt draining** — on the first SIGINT the monitor stops submitting
  new points, drains in-flight futures, and lets the caller persist what
  finished; a second SIGINT aborts immediately.

Execution-policy only: none of this changes *what* a point computes, so
spec/point fingerprints exclude the retry policy entirely
(:meth:`repro.experiments.spec.ExperimentSpec.canonical` drops it).

Every point attempt passes through :func:`_call_point`, which is also the
:mod:`repro.utils.faultinject` hook site — the chaos test suites inject
crashes, hangs, worker kills, and interrupts there to prove each recovery
path above.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import signal
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, PointFailureError, PointTimeoutError
from repro.utils import faultinject
from repro.utils.logging import get_logger

logger = get_logger("experiments.resilience")

#: Pool supervision tick: how often the parent checks deadlines / interrupts.
_TICK_S = 0.2


# -------------------------------------------------------------------- policy
@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised executor responds to point failures.

    Execution policy, not science: the retry policy never changes what a
    point computes (retries run on fresh task copies with the same derived
    seed), so it is excluded from spec and point fingerprints.

    Attributes
    ----------
    max_attempts:
        Failure budget per point.  ``1`` (default) means no retries.
    backoff_s:
        Sleep before retry ``k`` of a point: ``backoff_s * 2**(k-1)``.
    timeout_s:
        Per-point wall-clock budget.  Enforced on the process-pool path,
        where a hung worker can be terminated; the serial path cannot
        preempt its own process and ignores it.
    retry_on:
        Exception class *names* that qualify for retry, matched against the
        failing exception's MRO (``("Exception",)`` retries everything;
        name-based so policies survive JSON round-trips).  Non-matching
        failures are recorded immediately.
    pool_rebuilds:
        Budget for ``BrokenProcessPool`` recovery: how many times (a) the
        pool is rebuilt before the remaining points degrade to supervised
        serial execution, and (b) a single point may be lost to a broken
        pool before it is marked failed (a point whose own execution keeps
        killing workers must not wedge the run — and is never retried
        serially, where it would kill the parent).
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    timeout_s: Optional[float] = None
    retry_on: Tuple[str, ...] = ("Exception",)
    pool_rebuilds: int = 2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive (or None), got {self.timeout_s}"
            )
        if self.pool_rebuilds < 0:
            raise ConfigurationError(
                f"pool_rebuilds must be >= 0, got {self.pool_rebuilds}"
            )
        object.__setattr__(
            self, "retry_on", tuple(str(name) for name in self.retry_on)
        )

    # ------------------------------------------------------- serialization
    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view; round-trips through :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "RetryPolicy":
        payload = dict(payload or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown RetryPolicy field(s) {unknown}; valid fields: {sorted(known)}"
            )
        return cls(**payload)

    # ------------------------------------------------------------ matching
    def matches(self, error: BaseException) -> bool:
        """Whether ``error`` qualifies for retry under ``retry_on``."""
        names = {cls.__name__ for cls in type(error).__mro__}
        return any(name in names for name in self.retry_on)

    def wants_retry(self, error: BaseException, failed_attempts: int) -> bool:
        """Whether to re-run a point after its ``failed_attempts``-th failure."""
        return failed_attempts < self.max_attempts and self.matches(error)

    def backoff_for(self, failed_attempts: int) -> float:
        """Exponential-backoff sleep before the next attempt."""
        if self.backoff_s <= 0:
            return 0.0
        return self.backoff_s * (2 ** (failed_attempts - 1))


# ------------------------------------------------------------------ failures
@dataclass
class PointFailure:
    """One permanently failed sweep point, as recorded in the artifact.

    ``index`` is the plan-point index (stable across resumed runs);
    ``attempts`` counts genuine failed executions (pool losses from a
    worker crash elsewhere do not consume the retry budget).
    """

    index: int
    label: str
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    elapsed_s: float = 0.0

    @classmethod
    def from_exception(
        cls,
        *,
        index: int,
        label: str,
        error: BaseException,
        attempts: int,
        elapsed_s: float = 0.0,
    ) -> "PointFailure":
        detail = "".join(
            traceback_module.format_exception(type(error), error, error.__traceback__)
        )
        return cls(
            index=index,
            label=label,
            error_type=type(error).__name__,
            message=str(error),
            traceback=detail,
            attempts=attempts,
            elapsed_s=elapsed_s,
        )

    def to_payload(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PointFailure":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


# ------------------------------------------------------------------- monitor
class RunMonitor:
    """Collects per-point outcomes and failures across one supervised run.

    One monitor spans every supervised stage of a run (sweep points,
    hardware evals).  ``on_success`` is the mid-run persistence hook: the
    planner sets it to a journaling finalizer so completed points hit disk
    as they finish, not only at the end.
    """

    def __init__(
        self,
        strict: bool = False,
        on_success: Optional[Callable[[int, Any], None]] = None,
    ):
        self.strict = strict
        self.on_success = on_success
        self.failures: Dict[int, PointFailure] = {}
        self.interrupted = False
        self._previous_sigint: Optional[Any] = None

    # ------------------------------------------------------------- records
    def record_success(self, slot: int, outcome: Any) -> None:
        if self.on_success is not None:
            self.on_success(slot, outcome)

    def record_failure(self, slot: int, failure: PointFailure) -> None:
        self.failures[slot] = failure
        logger.warning(
            "point %s failed permanently after %d attempt(s): %s: %s",
            failure.label,
            failure.attempts,
            failure.error_type,
            failure.message,
        )
        if self.strict:
            raise PointFailureError(
                f"strict mode: {failure.label} failed with "
                f"{failure.error_type}: {failure.message}"
            )

    def ordered_failures(self) -> List[PointFailure]:
        return [self.failures[slot] for slot in sorted(self.failures)]

    # ----------------------------------------------------------- interrupts
    def install_sigint(self) -> None:
        """Route SIGINT to drain-and-persist (second SIGINT aborts hard)."""
        try:
            self._previous_sigint = signal.signal(signal.SIGINT, self._handle_sigint)
        except ValueError:
            self._previous_sigint = None  # not the main thread; leave signals alone

    def _handle_sigint(self, signum, frame) -> None:
        if self.interrupted:
            raise KeyboardInterrupt
        self.interrupted = True
        logger.warning(
            "interrupt received: draining in-flight points and writing a "
            "partial artifact (interrupt again to abort immediately)"
        )

    def restore_sigint(self) -> None:
        if self._previous_sigint is not None:
            signal.signal(signal.SIGINT, self._previous_sigint)
            self._previous_sigint = None


# ----------------------------------------------------------------- execution
def _call_point(point_fn: Callable, task: Any, index: int, attempt: int) -> Any:
    """One supervised point attempt — the fault-injection hook site.

    Module-level so process pools can pickle it.  ``attempt`` is the
    1-based submission number for this point, pool resubmissions included,
    so attempt-scoped faults (``attempts=(1,)``) fire exactly once.
    """
    faultinject.fire("point", index=index, attempt=attempt)
    return point_fn(task)


def _task_label(task: Any, slot: int) -> str:
    for attr in ("tolerance", "strength"):
        value = getattr(task, attr, None)
        if isinstance(value, (int, float)):
            return f"{attr}={value:g}"
    return f"point[{getattr(task, 'index', slot)}]"


def _task_index(task: Any, slot: int) -> int:
    index = getattr(task, "index", None)
    return index if isinstance(index, int) else slot


def supervised_map(
    engine: Any,
    point_fn: Callable,
    tasks: Iterable[Any],
    monitor: RunMonitor,
    *,
    prepare: Optional[Callable[[Any], None]] = None,
    absorb: Optional[Callable[[Any], None]] = None,
) -> Dict[int, Any]:
    """Run ``point_fn`` over every task under supervision.

    Returns ``{slot: outcome}`` for the points that succeeded; permanent
    failures land on ``monitor.failures`` keyed by the same slot (the task's
    position in ``tasks``).  Serial when ``engine.workers == 1`` (tasks
    consumed lazily, like :meth:`SweepEngine.map_points`), process-fanned
    otherwise.  ``prepare``/``absorb`` are serial-only hooks for threading
    shared caches through the attempt stream.
    """
    if engine.workers > 1:
        tasks = list(tasks)
        if len(tasks) > 1:
            return _pool_map(engine, point_fn, tasks, monitor)
    return _serial_map(
        engine, point_fn, tasks, monitor, prepare=prepare, absorb=absorb
    )


def supervised_slot(
    engine: Any,
    point_fn: Callable,
    task: Any,
    monitor: RunMonitor,
    *,
    slot: int,
    prepare: Optional[Callable[[Any], None]] = None,
    absorb: Optional[Callable[[Any], None]] = None,
) -> Dict[int, Any]:
    """Run ONE task under serial supervision at an explicit slot number.

    The graph executor (:mod:`repro.experiments.graph`) dispatches sweep
    points one node at a time but must keep the batch path's bookkeeping:
    failures land on ``monitor.failures`` keyed by the point's position in
    the pending list, retries run per the engine's
    :class:`RetryPolicy` from pristine task copies, and the
    fault-injection attempt coordinates stay per point.  This is exactly
    :func:`_serial_map` with a pinned slot — the same code path the batch
    executor uses for serial sweeps and single-point submissions.
    """
    return _serial_map(
        engine, point_fn, [task], monitor, prepare=prepare, absorb=absorb, slots=[slot]
    )


def _serial_map(
    engine: Any,
    point_fn: Callable,
    tasks: Iterable[Any],
    monitor: RunMonitor,
    *,
    prepare: Optional[Callable[[Any], None]] = None,
    absorb: Optional[Callable[[Any], None]] = None,
    slots: Optional[Sequence[int]] = None,
    submissions: Optional[Mapping[int, int]] = None,
) -> Dict[int, Any]:
    """Supervised inline execution (lazy task consumption, retry per point).

    ``slots``/``submissions`` let the pool path hand over its remaining
    points after degradation, preserving slot numbering and the per-point
    fault-injection attempt coordinates.
    """
    policy: RetryPolicy = engine.retry
    results: Dict[int, Any] = {}
    for position, task in enumerate(tasks):
        if monitor.interrupted:
            break
        slot = slots[position] if slots is not None else position
        index = _task_index(task, slot)
        submission = (submissions or {}).get(slot, 0)
        failed = 0
        start = time.monotonic()
        while True:
            submission += 1
            # Point functions mutate their task's network in place, so a
            # retry must start from a pristine copy.  Only pay for the copy
            # when retries are actually possible.
            attempt_task = copy.deepcopy(task) if policy.max_attempts > 1 else task
            if prepare is not None:
                prepare(attempt_task)
            try:
                outcome = _call_point(point_fn, attempt_task, index, submission)
            except KeyboardInterrupt:
                monitor.interrupted = True
                break
            except Exception as error:
                failed += 1
                if not monitor.interrupted and policy.wants_retry(error, failed):
                    logger.warning(
                        "%s attempt %d/%d failed (%s: %s); retrying",
                        _task_label(task, slot),
                        failed,
                        policy.max_attempts,
                        type(error).__name__,
                        error,
                    )
                    delay = policy.backoff_for(failed)
                    if delay:
                        time.sleep(delay)
                    continue
                monitor.record_failure(
                    slot,
                    PointFailure.from_exception(
                        index=index,
                        label=_task_label(task, slot),
                        error=error,
                        attempts=failed,
                        elapsed_s=time.monotonic() - start,
                    ),
                )
                break
            results[slot] = outcome
            if absorb is not None:
                absorb(outcome)
            monitor.record_success(slot, outcome)
            break
    return results


def _make_pool(engine: Any, size: int) -> ProcessPoolExecutor:
    method = engine.start_method
    if method is None:
        method = "fork" if "fork" in mp.get_all_start_methods() else None
    context = mp.get_context(method)
    return ProcessPoolExecutor(
        max_workers=min(engine.workers, max(size, 1)), mp_context=context
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on its (possibly hung) workers."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _pool_map(
    engine: Any, point_fn: Callable, tasks: List[Any], monitor: RunMonitor
) -> Dict[int, Any]:
    """Supervised process fan-out: retry, timeout, and pool-rebuild recovery.

    A broken pool dooms every in-flight future without saying which task
    killed the worker, so after the first break the map switches to
    *isolation mode*: points are resubmitted one at a time into a fresh
    single-worker pool.  A solo point that breaks its pool is the culprit
    beyond doubt — it alone is charged the loss, and it alone fails
    permanently once its losses exceed ``policy.pool_rebuilds`` (it is never
    run in the parent, where its next crash would take the whole run down).
    If two *different* solo points each break a pool, the environment — not
    a point — is killing workers, and the remaining points degrade to
    supervised serial execution in the parent.
    """
    policy: RetryPolicy = engine.retry
    results: Dict[int, Any] = {}
    open_slots = set(range(len(tasks)))
    submissions = {slot: 0 for slot in open_slots}
    failed_attempts = {slot: 0 for slot in open_slots}
    losses = {slot: 0 for slot in open_slots}
    rebuilds = 0
    isolating = False
    queued: List[int] = []
    solo_breakers: set = set()
    pool = _make_pool(engine, len(tasks))
    futures: Dict[Any, int] = {}
    deadlines: Dict[Any, float] = {}
    broken_submits: List[int] = []
    clean = False

    def submit(slot: int) -> None:
        if isolating and futures:
            queued.append(slot)
            return
        submissions[slot] += 1
        index = _task_index(tasks[slot], slot)
        try:
            future = pool.submit(
                _call_point, point_fn, tasks[slot], index, submissions[slot]
            )
        except BrokenProcessPool:
            # The pool died between ticks; queue the slot for the rebuild
            # pass instead of losing it.
            broken_submits.append(slot)
            return
        futures[future] = slot
        if policy.timeout_s is not None:
            deadlines[future] = time.monotonic() + policy.timeout_s

    def fail(slot: int, error: BaseException, *, attempts: Optional[int] = None) -> None:
        open_slots.discard(slot)
        monitor.record_failure(
            slot,
            PointFailure.from_exception(
                index=_task_index(tasks[slot], slot),
                label=_task_label(tasks[slot], slot),
                error=error,
                attempts=failed_attempts[slot] if attempts is None else attempts,
            ),
        )

    def handle_failure(slot: int, error: BaseException) -> None:
        failed_attempts[slot] += 1
        if not monitor.interrupted and policy.wants_retry(error, failed_attempts[slot]):
            logger.warning(
                "%s attempt %d/%d failed (%s: %s); resubmitting",
                _task_label(tasks[slot], slot),
                failed_attempts[slot],
                policy.max_attempts,
                type(error).__name__,
                error,
            )
            delay = policy.backoff_for(failed_attempts[slot])
            if delay:
                time.sleep(delay)
            submit(slot)
        else:
            fail(slot, error)

    def record_success(slot: int, outcome: Any) -> None:
        results[slot] = outcome
        open_slots.discard(slot)
        monitor.record_success(slot, outcome)

    try:
        for slot in sorted(open_slots):
            submit(slot)
        while futures or broken_submits or queued:
            while not futures and queued:
                slot = queued.pop(0)
                if slot in open_slots:
                    submit(slot)
            if not (futures or broken_submits):
                continue  # queued slots all resolved meanwhile
            lost: List[int] = []
            if futures:
                done, _ = wait(
                    set(futures), timeout=_TICK_S, return_when=FIRST_COMPLETED
                )
                for future in done:
                    slot = futures.pop(future)
                    deadlines.pop(future, None)
                    if future.cancelled():
                        continue  # drained on interrupt; slot stays unrun
                    error = future.exception()
                    if error is None:
                        record_success(slot, future.result())
                    elif isinstance(error, BrokenProcessPool):
                        lost.append(slot)
                    elif isinstance(error, KeyboardInterrupt):
                        monitor.interrupted = True
                    else:
                        handle_failure(slot, error)
            if lost or broken_submits:
                # A worker died: every other in-flight future is doomed too.
                lost.extend(futures.values())
                lost.extend(broken_submits)
                broken_submits.clear()
                futures.clear()
                deadlines.clear()
                _kill_pool(pool)
                rebuilds += 1
                implicated = sorted(set(lost))
                if isolating and len(implicated) == 1:
                    solo_breakers.add(implicated[0])
                for slot in implicated:
                    losses[slot] += 1
                    if losses[slot] > policy.pool_rebuilds:
                        fail(
                            slot,
                            BrokenProcessPool(
                                f"{_task_label(tasks[slot], slot)} lost to a broken "
                                f"pool {losses[slot]} times; not retrying (a point "
                                "that kills its worker must not run in the parent)"
                            ),
                            attempts=max(failed_attempts[slot], losses[slot]),
                        )
                isolating = True
                remaining = [slot for slot in implicated if slot in open_slots]
                if monitor.interrupted:
                    break
                if len(solo_breakers) >= 2:
                    # Two different points each broke a pool they had to
                    # themselves: workers are dying for environmental
                    # reasons, so pools are hopeless here — finish the open
                    # points under serial supervision in the parent.
                    queued.clear()
                    survivors = sorted(open_slots)
                    logger.warning(
                        "pool broke under %d different solo points; degrading "
                        "%d remaining point(s) to supervised serial execution",
                        len(solo_breakers),
                        len(survivors),
                    )
                    results.update(
                        _serial_map(
                            engine,
                            point_fn,
                            [tasks[slot] for slot in survivors],
                            monitor,
                            slots=survivors,
                            submissions={
                                slot: submissions[slot] for slot in survivors
                            },
                        )
                    )
                    return results
                logger.warning(
                    "process pool broke (rebuild %d); isolating %d lost "
                    "point(s): resubmitting one at a time",
                    rebuilds,
                    len(remaining),
                )
                pool = _make_pool(engine, 1)
                for slot in remaining:
                    submit(slot)
                continue
            if monitor.interrupted:
                # Drain: stop anything not yet running, let running points
                # finish and be recorded by subsequent ticks.
                for future in list(futures):
                    future.cancel()
                continue
            if deadlines:
                now = time.monotonic()
                expired = [
                    future
                    for future, deadline in deadlines.items()
                    if deadline < now and not future.done()
                ]
                if expired:
                    # A running task cannot be cancelled: terminate the pool,
                    # charge the timed-out points a failed attempt, and
                    # resubmit the innocent bystanders penalty-free.
                    expired_slots = sorted(futures.pop(future) for future in expired)
                    survivors = sorted(futures.values())
                    futures.clear()
                    deadlines.clear()
                    _kill_pool(pool)
                    pool = _make_pool(engine, len(open_slots))
                    for slot in survivors:
                        submit(slot)
                    for slot in expired_slots:
                        handle_failure(
                            slot,
                            PointTimeoutError(
                                f"{_task_label(tasks[slot], slot)} exceeded its "
                                f"{policy.timeout_s:g}s wall-clock budget"
                            ),
                        )
        clean = True
    finally:
        if clean:
            pool.shutdown(wait=True, cancel_futures=True)
        else:
            _kill_pool(pool)
    return results


# ------------------------------------------------------- strength dispatch
def supervised_strength_points(
    engine: Any, tasks: Iterable[Any], monitor: RunMonitor
) -> Dict[int, Any]:
    """Supervised variant of :meth:`SweepEngine.run_strength_points`.

    Same dispatch (lockstep groups, serial cache threading, process
    fan-out), but failures isolate per point: a lockstep group that dies
    mid-training is re-run point-by-point under serial supervision from
    pristine task copies (lockstep mutates networks in place, so the failed
    stack cannot be reused).
    """
    from repro.experiments.runner import run_strength_point

    tasks = list(tasks)
    if engine.mode == "lockstep" and len(tasks) > 1:
        return _supervised_lockstep(engine, tasks, monitor)
    if engine.workers > 1 and len(tasks) > 1:
        return _pool_map(engine, run_strength_point, tasks, monitor)
    return _serial_strength_points(engine, tasks, monitor)


def _serial_strength_points(
    engine: Any, tasks: Sequence[Any], monitor: RunMonitor
) -> Dict[int, Any]:
    from repro.experiments.runner import run_strength_point
    from repro.hardware.routing import RoutingAnalysisCache

    if not engine.memoize_routing:
        return _serial_map(engine, run_strength_point, tasks, monitor)
    cache = RoutingAnalysisCache()

    def prepare(task):
        task.routing_cache_entries = cache.export_entries()

    def absorb(outcome):
        cache.merge_entries(outcome.routing_cache_entries)

    return _serial_map(
        engine, run_strength_point, tasks, monitor, prepare=prepare, absorb=absorb
    )


def _supervised_lockstep(
    engine: Any, tasks: List[Any], monitor: RunMonitor
) -> Dict[int, Any]:
    from repro.experiments.runner import _run_lockstep_strength_points

    # Lockstep trains every network in the group in place; keep pristine
    # copies so a mid-training failure can restart point-by-point cleanly.
    pristine = copy.deepcopy(tasks)
    try:
        outcomes = _run_lockstep_strength_points(engine, tasks)
    except KeyboardInterrupt:
        monitor.interrupted = True
        return {}
    except Exception as error:
        logger.warning(
            "lockstep sweep failed (%s: %s); re-running its points under "
            "serial supervision",
            type(error).__name__,
            error,
        )
        return _serial_strength_points(engine, pristine, monitor)
    results: Dict[int, Any] = {}
    for slot, outcome in enumerate(outcomes):
        results[slot] = outcome
        monitor.record_success(slot, outcome)
    return results
