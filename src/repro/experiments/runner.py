"""Sweep execution engine: process fan-out, batched evaluation, shared caches.

The paper's headline results (Figures 6–8, Tables 1/3) are hyper-parameter
sweeps: many ε rank-clipping points and λ group-deletion points, each a full
retrain from one shared baseline.  The points are mutually independent, so a
:class:`SweepEngine` executes them as self-contained *point tasks*:

* **Process fan-out** — with ``workers >= 2`` the tasks run on a
  ``ProcessPoolExecutor`` (``fork`` start method where available); with
  ``workers=1`` the same task functions run inline, so the serial path and
  the parallel path execute byte-for-byte identical code on identical
  payloads.  Every payload is a pure value (network copy, training setup,
  config): no shared mutable state crosses a task boundary, which is what
  makes parallel results bit-identical to serial ones.
* **Deterministic per-point seeding** — by default every point trains on the
  same data stream as the shared baseline (the paper's "points differ only in
  the swept hyper-parameter" protocol).  ``per_point_seed=True`` instead
  derives each point's seed as a pure function of ``(setup.seed, index)``
  via :func:`repro.utils.rng.derive_point_seed`, so even independently-seeded
  sweeps are reproducible regardless of execution order or process placement.
* **Batched multi-network evaluation** — the engine skips the per-point
  test-set passes whose results the sweep never reports
  (``inline_training_eval=False`` strips the held-out split from the point
  trainers) and instead evaluates all finished point networks together with
  :func:`repro.nn.batched.batched_evaluate`: im2col patches are extracted
  once per group of identical architectures and all K networks ride one
  stack of batched matmuls.
* **Routing memoization / structured group Lasso** — point tasks construct
  their :class:`~repro.core.group_deletion.GroupConnectionDeleter` through
  the engine flags, enabling the vectorized
  :class:`~repro.core.groups.CrossbarGroupLasso` penalty and the
  :class:`~repro.hardware.routing.RoutingAnalysisCache`.

``SweepEngine.reference()`` disables every optimization (inline per-point
evaluation, flat per-group Lasso, no memoization, no batching) and is kept as
the benchmark baseline configuration.

The engine serves two executors: the batch path (one engine stage for all
pending points, via :func:`~repro.experiments.resilience.supervised_map` /
:func:`~repro.experiments.resilience.supervised_strength_points`) and the
graph node path (:mod:`repro.experiments.graph`, one point task at a time
via :func:`~repro.experiments.resilience.supervised_slot`), both running
these same task functions — which is why their results are bit-identical.
"""

from __future__ import annotations

import multiprocessing as mp
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.core.config import GroupDeletionConfig, RankClippingConfig
from repro.core.group_deletion import GroupConnectionDeleter, run_lockstep_deletion
from repro.core.rank_clipping import RankClipper
from repro.exceptions import ConfigurationError, LayerError
from repro.experiments.resilience import RetryPolicy
from repro.experiments.training import TrainingSetup
from repro.hardware.routing import RoutingAnalysisCache
from repro.nn.batched import architecture_signature, batched_evaluate
from repro.nn.network import Sequential
from repro.utils.logging import get_logger
from repro.utils.rng import derive_point_seed

logger = get_logger("experiments.runner")

TaskT = TypeVar("TaskT")
OutcomeT = TypeVar("OutcomeT")


@dataclass(frozen=True)
class SweepEngine:
    """Execution policy for hyper-parameter sweeps.

    Attributes
    ----------
    workers:
        Number of worker processes for sweep points.  ``1`` (default) runs
        the point tasks inline; ``>= 2`` fans them out over a process pool.
        Results are bit-identical either way.
    batched_eval:
        Evaluate the finished point networks together through
        :func:`repro.nn.batched.batched_evaluate` instead of one ``predict``
        per network.
    memoize_routing:
        Give each point's deleter a
        :class:`~repro.hardware.routing.RoutingAnalysisCache`.
    structured_lasso:
        Use the vectorized crossbar-aware group-Lasso penalty.
    inline_training_eval:
        Keep the held-out split attached to the point trainers so every
        record/clip step evaluates, as the pre-engine sweeps did.  Off by
        default: the sweeps never report those intermediate accuracies, and
        the training trajectory is unaffected.
    per_point_seed:
        Derive an independent, order-insensitive seed per point instead of
        sharing the baseline's data stream across points.
    start_method:
        Multiprocessing start method (default: ``fork`` when available).
    mode:
        ``"points"`` (default) executes sweep points as independent tasks
        (inline or process-fanned).  ``"lockstep"`` trains all λ-points of
        one architecture group together in a single process via
        :func:`repro.core.group_deletion.run_lockstep_deletion` — stacked
        forward/backward/SGD with per-point λ, bit-identical per point to the
        serial path — which is the fastest policy on 1-core boxes with
        identical-shape λ grids.  Points that cannot be stacked (differing
        architectures or configs, active dropout) fall back to the serial
        path; ε rank-clipping sweeps always use the points path because their
        points diverge structurally at the first clip.
    retry:
        The :class:`~repro.experiments.resilience.RetryPolicy` the supervised
        execution paths apply (retries, per-point timeouts, pool-rebuild
        budget).  Pure execution policy: retries are bit-identical to clean
        runs, so this field is excluded from spec and point fingerprints.
    """

    workers: int = 1
    batched_eval: bool = True
    memoize_routing: bool = True
    structured_lasso: bool = True
    inline_training_eval: bool = False
    per_point_seed: bool = False
    start_method: Optional[str] = None
    mode: str = "points"
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if not isinstance(self.retry, RetryPolicy):
            if isinstance(self.retry, Mapping):
                object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
            else:
                raise ConfigurationError(
                    f"retry must be a RetryPolicy or mapping, got {type(self.retry).__name__}"
                )
        if self.start_method is not None:
            if self.start_method not in mp.get_all_start_methods():
                raise ConfigurationError(
                    f"unknown start method {self.start_method!r}; expected one of "
                    f"{mp.get_all_start_methods()}"
                )
        if self.mode not in ("points", "lockstep"):
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; expected 'points' or 'lockstep'"
            )

    # ------------------------------------------------------- serialization
    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view of the execution policy (JSON-serializable).

        This is the encoding the declarative experiment layer
        (:mod:`repro.experiments.spec`) embeds in specs and run artifacts.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["retry"] = self.retry.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, object]]) -> "SweepEngine":
        """Rebuild an engine from :meth:`as_dict` output.

        Unknown keys raise :class:`ConfigurationError` so stale or typo'd
        artifacts fail loudly instead of silently running a default policy.
        """
        payload = dict(payload or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown SweepEngine field(s) {unknown}; valid fields: {sorted(known)}"
            )
        return cls(**payload)

    @classmethod
    def reference(cls) -> "SweepEngine":
        """The pre-engine execution policy (serial, unbatched, unmemoized).

        Kept as the baseline configuration for the sweep-throughput
        benchmark so speedups are measured against like-for-like work.
        """
        return cls(
            workers=1,
            batched_eval=False,
            memoize_routing=False,
            structured_lasso=False,
            inline_training_eval=True,
        )

    # ------------------------------------------------------------ setups
    def point_setup(self, setup: TrainingSetup, index: int) -> TrainingSetup:
        """The training setup one sweep point should run with."""
        prepared = setup
        if self.per_point_seed:
            prepared = replace(prepared, seed=derive_point_seed(setup.seed, index))
        if not self.inline_training_eval and prepared.evaluate_during_training:
            prepared = replace(prepared, evaluate_during_training=False)
        return prepared

    def shared_setup(self, setup: TrainingSetup) -> TrainingSetup:
        """Setup for shared (pre-fan-out) phases, e.g. the λ sweep's clipping."""
        if not self.inline_training_eval and setup.evaluate_during_training:
            return replace(setup, evaluate_during_training=False)
        return setup

    # ----------------------------------------------------------- drivers
    def make_deleter(
        self, config: GroupDeletionConfig, *, record_interval: int, **kwargs
    ) -> GroupConnectionDeleter:
        """A :class:`GroupConnectionDeleter` honouring the engine flags."""
        return GroupConnectionDeleter(
            config,
            record_interval=record_interval,
            structured_lasso=self.structured_lasso,
            memoize_routing=self.memoize_routing,
            **kwargs,
        )

    # ----------------------------------------------------------- fan-out
    def map_points(
        self,
        point_fn: Callable[[TaskT], OutcomeT],
        tasks: Iterable[TaskT],
        monitor=None,
    ):
        """Run ``point_fn`` over every task, serially or process-fanned.

        ``point_fn`` must be a module-level function and every task a pure
        picklable value; results come back in task order.  The serial path
        consumes ``tasks`` lazily, so generators keep only one point's
        payload (e.g. its network deep copy) alive at a time; the parallel
        path materializes them to feed the pool.

        With a :class:`~repro.experiments.resilience.RunMonitor` the tasks
        run under supervision (retry/timeout/pool-rebuild per this engine's
        ``retry`` policy, failures isolated per point) and the return value
        is a ``{position: outcome}`` dict of the points that succeeded.
        """
        if monitor is not None:
            from repro.experiments.resilience import supervised_map

            return supervised_map(self, point_fn, tasks, monitor)
        if self.workers <= 1:
            return [point_fn(task) for task in tasks]
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [point_fn(task) for task in tasks]
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        context = mp.get_context(method)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks)), mp_context=context
        ) as pool:
            return list(pool.map(point_fn, tasks))

    # -------------------------------------------------------- evaluation
    def evaluate_networks(
        self, networks: Sequence[Sequential], setup: TrainingSetup
    ) -> List[float]:
        """Held-out accuracy of every network, batched when enabled."""
        inputs, targets = setup.test_dataset.arrays()
        if self.batched_eval:
            return batched_evaluate(networks, inputs, targets, batch_size=256)
        return [setup.evaluate(network) for network in networks]

    # --------------------------------------------------- strength execution
    def run_strength_points(
        self, tasks: Iterable["StrengthPointTask"], monitor=None
    ):
        """Execute λ group-deletion points under this engine's policy.

        ``mode="lockstep"`` trains every stackable architecture group in
        lockstep (singletons and unstackable groups run serially, warm-seeded
        from the group cache); ``mode="points"`` runs the tasks independently.
        On the serial points path, routing-analysis cache entries are
        threaded between tasks — each point starts with every entry earlier
        points discovered, consuming ``tasks`` lazily so only one point's
        network copy is alive at a time.  On the parallel path every worker's
        entries come back in its outcome (``routing_cache_entries``) for
        callers with later analysis phases to merge.

        With a :class:`~repro.experiments.resilience.RunMonitor` the points
        run under supervision (see :meth:`map_points`); the return value is
        then a ``{position: outcome}`` dict of the points that succeeded.
        """
        if monitor is not None:
            from repro.experiments.resilience import supervised_strength_points

            return supervised_strength_points(self, tasks, monitor)
        if self.mode == "lockstep":
            tasks = list(tasks)
            if len(tasks) > 1:
                return _run_lockstep_strength_points(self, tasks)
        if not self.memoize_routing or self.workers > 1:
            return self.map_points(run_strength_point, tasks)
        cache = RoutingAnalysisCache()
        outcomes = []
        for task in tasks:
            task.routing_cache_entries = cache.export_entries()
            outcome = run_strength_point(task)
            cache.merge_entries(outcome.routing_cache_entries)
            outcomes.append(outcome)
        return outcomes


# --------------------------------------------------------------- point tasks
@dataclass
class TolerancePointTask:
    """Self-contained payload for one ε rank-clipping point."""

    index: int
    tolerance: float
    network: Sequential
    setup: TrainingSetup
    config: RankClippingConfig


@dataclass
class TolerancePointOutcome:
    """What one ε point sends back to the sweep."""

    index: int
    tolerance: float
    network: Sequential
    ranks: Dict[str, int]
    accuracy: Optional[float]


def run_tolerance_point(task: TolerancePointTask) -> TolerancePointOutcome:
    """Execute one ε point (module-level so process pools can import it)."""
    clipping = RankClipper(task.config).run(task.network, task.setup.trainer_factory)
    return TolerancePointOutcome(
        index=task.index,
        tolerance=task.tolerance,
        network=task.network,
        ranks=dict(clipping.final_ranks),
        accuracy=clipping.final_accuracy,
    )


@dataclass
class StrengthPointTask:
    """Self-contained payload for one λ group-deletion point.

    ``routing_cache_entries`` optionally seeds the point's routing-analysis
    cache with entries earlier points already computed (see
    :meth:`SweepEngine.run_strength_points`).
    """

    index: int
    strength: float
    network: Sequential
    setup: TrainingSetup
    config: GroupDeletionConfig
    record_interval: int
    structured_lasso: bool = True
    memoize_routing: bool = True
    routing_cache_entries: Optional[List[Tuple[tuple, int]]] = None


@dataclass
class StrengthPointOutcome:
    """What one λ point sends back to the sweep.

    ``routing_cache_entries`` carries the point's memoized routing analyses
    back to the parent so the engine can warm later points and phases.
    """

    index: int
    strength: float
    network: Sequential
    wire_fractions: Dict[str, float]
    routing_area_fractions: Dict[str, float]
    accuracy: Optional[float]
    routing_cache_stats: Optional[Dict[str, int]] = None
    routing_cache_entries: Optional[List[Tuple[tuple, int]]] = None


def run_strength_point(task: StrengthPointTask) -> StrengthPointOutcome:
    """Execute one λ point (module-level so process pools can import it)."""
    cache = None
    if task.memoize_routing:
        cache = RoutingAnalysisCache()
        cache.merge_entries(task.routing_cache_entries)
    deleter = GroupConnectionDeleter(
        task.config,
        record_interval=task.record_interval,
        structured_lasso=task.structured_lasso,
        memoize_routing=task.memoize_routing,
        routing_cache=cache,
    )
    deletion = deleter.run(task.network, task.setup.trainer_factory)
    stats = None if deleter.routing_cache is None else deleter.routing_cache.stats()
    entries = None if deleter.routing_cache is None else deleter.routing_cache.export_entries()
    return StrengthPointOutcome(
        index=task.index,
        strength=task.strength,
        network=task.network,
        wire_fractions=deletion.wire_fractions(),
        routing_area_fractions=deletion.routing_area_fractions(),
        accuracy=deletion.accuracy_after_finetune,
        routing_cache_stats=stats,
        routing_cache_entries=entries,
    )


# ----------------------------------------------------------- lockstep driver
def _lockstep_group_key(task: StrengthPointTask) -> tuple:
    """Tasks sharing this key can train as one lockstep stack."""
    config = task.config
    return (
        architecture_signature(task.network),
        config.iterations,
        config.finetune_iterations,
        config.zero_threshold,
        config.relative_threshold,
        config.include_small_matrices,
        config.layers,
        task.record_interval,
        task.structured_lasso,
        task.memoize_routing,
    )


def _run_lockstep_strength_points(
    engine: SweepEngine, tasks: List[StrengthPointTask]
) -> List[StrengthPointOutcome]:
    """Train λ points in lockstep per architecture group (serial leftovers warm-cached)."""
    outcomes: List[Optional[StrengthPointOutcome]] = [None] * len(tasks)
    cache = RoutingAnalysisCache() if engine.memoize_routing else None
    groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
    for position, task in enumerate(tasks):
        groups.setdefault(_lockstep_group_key(task), []).append(position)

    serial_positions: List[int] = []
    for indices in groups.values():
        if len(indices) < 2:
            serial_positions.extend(indices)
            continue
        group = [tasks[i] for i in indices]
        setups = [task.setup for task in group]

        def factory(networks, callbacks_per_point, _setups=setups):
            return _setups[0].lockstep_trainer_factory(
                networks, callbacks_per_point, point_setups=_setups
            )

        before = cache.stats() if cache is not None else None
        try:
            results = run_lockstep_deletion(
                [task.network for task in group],
                [task.config for task in group],
                factory,
                record_interval=group[0].record_interval,
                structured_lasso=group[0].structured_lasso,
                memoize_routing=group[0].memoize_routing,
                routing_cache=cache if group[0].memoize_routing else None,
            )
        except LayerError as error:
            logger.info("lockstep group fell back to serial points: %s", error)
            serial_positions.extend(indices)
            continue
        stats = None
        if cache is not None and group[0].memoize_routing:
            after = cache.stats()
            stats = {
                "hits": after["hits"] - before["hits"],
                "misses": after["misses"] - before["misses"],
                "size": after["size"],
            }
        for slot, (position, result) in enumerate(zip(indices, results)):
            task = tasks[position]
            outcomes[position] = StrengthPointOutcome(
                index=task.index,
                strength=task.strength,
                network=result.network,
                wire_fractions=result.wire_fractions(),
                routing_area_fractions=result.routing_area_fractions(),
                accuracy=result.accuracy_after_finetune,
                routing_cache_stats=stats if slot == 0 else None,
            )

    for position in sorted(serial_positions):
        task = tasks[position]
        if cache is not None and task.memoize_routing:
            task.routing_cache_entries = cache.export_entries()
        outcome = run_strength_point(task)
        if cache is not None:
            cache.merge_entries(outcome.routing_cache_entries)
        outcomes[position] = outcome
    return outcomes
