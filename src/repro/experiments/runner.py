"""Sweep execution engine: process fan-out, batched evaluation, shared caches.

The paper's headline results (Figures 6–8, Tables 1/3) are hyper-parameter
sweeps: many ε rank-clipping points and λ group-deletion points, each a full
retrain from one shared baseline.  The points are mutually independent, so a
:class:`SweepEngine` executes them as self-contained *point tasks*:

* **Process fan-out** — with ``workers >= 2`` the tasks run on a
  ``ProcessPoolExecutor`` (``fork`` start method where available); with
  ``workers=1`` the same task functions run inline, so the serial path and
  the parallel path execute byte-for-byte identical code on identical
  payloads.  Every payload is a pure value (network copy, training setup,
  config): no shared mutable state crosses a task boundary, which is what
  makes parallel results bit-identical to serial ones.
* **Deterministic per-point seeding** — by default every point trains on the
  same data stream as the shared baseline (the paper's "points differ only in
  the swept hyper-parameter" protocol).  ``per_point_seed=True`` instead
  derives each point's seed as a pure function of ``(setup.seed, index)``
  via :func:`repro.utils.rng.derive_point_seed`, so even independently-seeded
  sweeps are reproducible regardless of execution order or process placement.
* **Batched multi-network evaluation** — the engine skips the per-point
  test-set passes whose results the sweep never reports
  (``inline_training_eval=False`` strips the held-out split from the point
  trainers) and instead evaluates all finished point networks together with
  :func:`repro.nn.batched.batched_evaluate`: im2col patches are extracted
  once per group of identical architectures and all K networks ride one
  stack of batched matmuls.
* **Routing memoization / structured group Lasso** — point tasks construct
  their :class:`~repro.core.group_deletion.GroupConnectionDeleter` through
  the engine flags, enabling the vectorized
  :class:`~repro.core.groups.CrossbarGroupLasso` penalty and the
  :class:`~repro.hardware.routing.RoutingAnalysisCache`.

``SweepEngine.reference()`` disables every optimization (inline per-point
evaluation, flat per-group Lasso, no memoization, no batching) and is kept as
the benchmark baseline configuration.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.core.config import GroupDeletionConfig, RankClippingConfig
from repro.core.group_deletion import GroupConnectionDeleter
from repro.core.rank_clipping import RankClipper
from repro.exceptions import ConfigurationError
from repro.experiments.training import TrainingSetup
from repro.nn.batched import batched_evaluate
from repro.nn.network import Sequential
from repro.utils.rng import derive_point_seed

TaskT = TypeVar("TaskT")
OutcomeT = TypeVar("OutcomeT")


@dataclass(frozen=True)
class SweepEngine:
    """Execution policy for hyper-parameter sweeps.

    Attributes
    ----------
    workers:
        Number of worker processes for sweep points.  ``1`` (default) runs
        the point tasks inline; ``>= 2`` fans them out over a process pool.
        Results are bit-identical either way.
    batched_eval:
        Evaluate the finished point networks together through
        :func:`repro.nn.batched.batched_evaluate` instead of one ``predict``
        per network.
    memoize_routing:
        Give each point's deleter a
        :class:`~repro.hardware.routing.RoutingAnalysisCache`.
    structured_lasso:
        Use the vectorized crossbar-aware group-Lasso penalty.
    inline_training_eval:
        Keep the held-out split attached to the point trainers so every
        record/clip step evaluates, as the pre-engine sweeps did.  Off by
        default: the sweeps never report those intermediate accuracies, and
        the training trajectory is unaffected.
    per_point_seed:
        Derive an independent, order-insensitive seed per point instead of
        sharing the baseline's data stream across points.
    start_method:
        Multiprocessing start method (default: ``fork`` when available).
    """

    workers: int = 1
    batched_eval: bool = True
    memoize_routing: bool = True
    structured_lasso: bool = True
    inline_training_eval: bool = False
    per_point_seed: bool = False
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.start_method is not None:
            if self.start_method not in mp.get_all_start_methods():
                raise ConfigurationError(
                    f"unknown start method {self.start_method!r}; expected one of "
                    f"{mp.get_all_start_methods()}"
                )

    @classmethod
    def reference(cls) -> "SweepEngine":
        """The pre-engine execution policy (serial, unbatched, unmemoized).

        Kept as the baseline configuration for the sweep-throughput
        benchmark so speedups are measured against like-for-like work.
        """
        return cls(
            workers=1,
            batched_eval=False,
            memoize_routing=False,
            structured_lasso=False,
            inline_training_eval=True,
        )

    # ------------------------------------------------------------ setups
    def point_setup(self, setup: TrainingSetup, index: int) -> TrainingSetup:
        """The training setup one sweep point should run with."""
        prepared = setup
        if self.per_point_seed:
            prepared = replace(prepared, seed=derive_point_seed(setup.seed, index))
        if not self.inline_training_eval and prepared.evaluate_during_training:
            prepared = replace(prepared, evaluate_during_training=False)
        return prepared

    def shared_setup(self, setup: TrainingSetup) -> TrainingSetup:
        """Setup for shared (pre-fan-out) phases, e.g. the λ sweep's clipping."""
        if not self.inline_training_eval and setup.evaluate_during_training:
            return replace(setup, evaluate_during_training=False)
        return setup

    # ----------------------------------------------------------- drivers
    def make_deleter(
        self, config: GroupDeletionConfig, *, record_interval: int, **kwargs
    ) -> GroupConnectionDeleter:
        """A :class:`GroupConnectionDeleter` honouring the engine flags."""
        return GroupConnectionDeleter(
            config,
            record_interval=record_interval,
            structured_lasso=self.structured_lasso,
            memoize_routing=self.memoize_routing,
            **kwargs,
        )

    # ----------------------------------------------------------- fan-out
    def map_points(
        self,
        point_fn: Callable[[TaskT], OutcomeT],
        tasks: Iterable[TaskT],
    ) -> List[OutcomeT]:
        """Run ``point_fn`` over every task, serially or process-fanned.

        ``point_fn`` must be a module-level function and every task a pure
        picklable value; results come back in task order.  The serial path
        consumes ``tasks`` lazily, so generators keep only one point's
        payload (e.g. its network deep copy) alive at a time; the parallel
        path materializes them to feed the pool.
        """
        if self.workers <= 1:
            return [point_fn(task) for task in tasks]
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [point_fn(task) for task in tasks]
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else None
        context = mp.get_context(method)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(tasks)), mp_context=context
        ) as pool:
            return list(pool.map(point_fn, tasks))

    # -------------------------------------------------------- evaluation
    def evaluate_networks(
        self, networks: Sequence[Sequential], setup: TrainingSetup
    ) -> List[float]:
        """Held-out accuracy of every network, batched when enabled."""
        inputs, targets = setup.test_dataset.arrays()
        if self.batched_eval:
            return batched_evaluate(networks, inputs, targets, batch_size=256)
        return [setup.evaluate(network) for network in networks]


# --------------------------------------------------------------- point tasks
@dataclass
class TolerancePointTask:
    """Self-contained payload for one ε rank-clipping point."""

    index: int
    tolerance: float
    network: Sequential
    setup: TrainingSetup
    config: RankClippingConfig


@dataclass
class TolerancePointOutcome:
    """What one ε point sends back to the sweep."""

    index: int
    tolerance: float
    network: Sequential
    ranks: Dict[str, int]
    accuracy: Optional[float]


def run_tolerance_point(task: TolerancePointTask) -> TolerancePointOutcome:
    """Execute one ε point (module-level so process pools can import it)."""
    clipping = RankClipper(task.config).run(task.network, task.setup.trainer_factory)
    return TolerancePointOutcome(
        index=task.index,
        tolerance=task.tolerance,
        network=task.network,
        ranks=dict(clipping.final_ranks),
        accuracy=clipping.final_accuracy,
    )


@dataclass
class StrengthPointTask:
    """Self-contained payload for one λ group-deletion point."""

    index: int
    strength: float
    network: Sequential
    setup: TrainingSetup
    config: GroupDeletionConfig
    record_interval: int
    structured_lasso: bool = True
    memoize_routing: bool = True


@dataclass
class StrengthPointOutcome:
    """What one λ point sends back to the sweep."""

    index: int
    strength: float
    network: Sequential
    wire_fractions: Dict[str, float]
    routing_area_fractions: Dict[str, float]
    accuracy: Optional[float]
    routing_cache_stats: Optional[Dict[str, int]] = None


def run_strength_point(task: StrengthPointTask) -> StrengthPointOutcome:
    """Execute one λ point (module-level so process pools can import it)."""
    deleter = GroupConnectionDeleter(
        task.config,
        record_interval=task.record_interval,
        structured_lasso=task.structured_lasso,
        memoize_routing=task.memoize_routing,
    )
    deletion = deleter.run(task.network, task.setup.trainer_factory)
    stats = None if deleter.routing_cache is None else deleter.routing_cache.stats()
    return StrengthPointOutcome(
        index=task.index,
        strength=task.strength,
        network=task.network,
        wire_fractions=deletion.wire_fractions(),
        routing_area_fractions=deletion.routing_area_fractions(),
        accuracy=deletion.accuracy_after_finetune,
        routing_cache_stats=stats,
    )
