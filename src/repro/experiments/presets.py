"""Experiment scale presets.

The paper trains full-size LeNet/ConvNet for tens of thousands of iterations
on MNIST/CIFAR-10.  A numpy substrate on a laptop cannot do that inside a
benchmark run, so every experiment harness accepts an
:class:`ExperimentScale` that fixes dataset sizes, network scale and
iteration counts.  Three presets are provided:

* ``TINY`` — seconds; used by the unit/integration tests.
* ``SMALL`` — tens of seconds; the default for the benchmark harness.
* ``PAPER`` — the paper's full configuration (hours on this substrate); kept
  for completeness and documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity against wall-clock time."""

    name: str
    train_samples: int
    test_samples: int
    image_size: int
    network_scale: float
    baseline_iterations: int
    clip_iterations: int
    clip_interval: int
    deletion_iterations: int
    finetune_iterations: int
    batch_size: int
    learning_rate: float
    momentum: float
    record_interval: int
    eval_interval: int
    seed: int = 0

    def __post_init__(self):
        positive_fields = (
            "train_samples",
            "test_samples",
            "image_size",
            "baseline_iterations",
            "clip_interval",
            "batch_size",
            "record_interval",
            "eval_interval",
        )
        for field_name in positive_fields:
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"{field_name} must be >= 1")
        for field_name in ("clip_iterations", "deletion_iterations", "finetune_iterations"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")
        if not (0 < self.network_scale <= 1):
            raise ConfigurationError(
                f"network_scale must be in (0, 1], got {self.network_scale}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {self.learning_rate}")
        if not (0 <= self.momentum < 1):
            raise ConfigurationError(f"momentum must be in [0, 1), got {self.momentum}")

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Return a copy with selected fields replaced.

        Unknown field names raise :class:`ValueError` listing the valid
        fields (``dataclasses.replace`` would raise an opaque ``TypeError``
        about ``__init__`` arguments instead, which reads like a library bug
        rather than a caller typo).
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ValueError(
                f"unknown ExperimentScale field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(self, **kwargs)


#: Seconds-scale preset used by the test suite.
TINY = ExperimentScale(
    name="tiny",
    train_samples=240,
    test_samples=96,
    image_size=14,
    network_scale=0.15,
    baseline_iterations=120,
    clip_iterations=80,
    clip_interval=20,
    deletion_iterations=80,
    finetune_iterations=40,
    batch_size=24,
    learning_rate=0.02,
    momentum=0.9,
    record_interval=20,
    eval_interval=40,
)

#: Default preset for the benchmark harness (tens of seconds per experiment).
SMALL = ExperimentScale(
    name="small",
    train_samples=600,
    test_samples=200,
    image_size=16,
    network_scale=0.25,
    baseline_iterations=250,
    clip_iterations=200,
    clip_interval=40,
    deletion_iterations=250,
    finetune_iterations=200,
    batch_size=32,
    learning_rate=0.01,
    momentum=0.9,
    record_interval=40,
    eval_interval=50,
)

#: The paper's full-scale configuration (not run in CI; hours on numpy).
PAPER = ExperimentScale(
    name="paper",
    train_samples=60000,
    test_samples=10000,
    image_size=28,
    network_scale=1.0,
    baseline_iterations=10000,
    clip_iterations=30000,
    clip_interval=500,
    deletion_iterations=30000,
    finetune_iterations=10000,
    batch_size=64,
    learning_rate=0.01,
    momentum=0.9,
    record_interval=500,
    eval_interval=500,
)

_PRESETS = {"tiny": TINY, "small": SMALL, "paper": PAPER}


def scale_names() -> Tuple[str, ...]:
    """Names of the registered scale presets (for CLIs and validation)."""
    return tuple(sorted(_PRESETS))


def get_scale(name_or_scale) -> ExperimentScale:
    """Resolve a preset by name (or pass an :class:`ExperimentScale` through)."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    key = str(name_or_scale).lower()
    if key not in _PRESETS:
        raise ConfigurationError(
            f"unknown experiment scale {name_or_scale!r}; expected one of {sorted(_PRESETS)}"
        )
    return _PRESETS[key]
