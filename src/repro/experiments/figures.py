"""Figure result views (3, 5 and 9) and the legacy figure entry points.

* Figure 3 — rank ratio of each clipped layer and accuracy versus training
  iteration during rank clipping (LeNet).
* Figure 5 — percentage of deleted routing wires and accuracy versus training
  iteration during group connection deletion.
* Figure 9 — structurally-sparse weight matrices after deletion (per-crossbar
  block sparsity), rendered as arrays and an ASCII sketch.

The trace-producing runs live in the declarative core
(:mod:`repro.experiments.plan`, ``kind="figure3"`` / ``kind="figure5"``); this
module keeps the plain data-series objects — with their text renderings and
JSON payload round-trips, so stored artifacts rebuild the same series — plus
:func:`run_figure3` / :func:`run_figure5` as deprecation shims.
:func:`sparsity_maps` (Figure 9) is a pure post-processing function over a
deleted network and stays imperative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.group_deletion import GroupDeletionResult, matrix_values
from repro.core.groups import derive_network_groups
from repro.core.rank_clipping import RankClippingResult
from repro.experiments.runner import SweepEngine
from repro.experiments.training import TrainingSetup
from repro.experiments.workloads import Workload


# --------------------------------------------------------------------------- Figure 3
@dataclass
class Figure3Series:
    """Rank-ratio and accuracy traces recorded during rank clipping."""

    workload_name: str
    iterations: List[int]
    rank_ratio: Dict[str, List[float]]
    accuracy: List[Optional[float]]
    clipping_result: Optional[RankClippingResult] = None

    def final_rank_ratios(self) -> Dict[str, float]:
        """Rank ratio of every layer at the end of clipping."""
        return {name: series[-1] for name, series in self.rank_ratio.items() if series}

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts (drops the training trace)."""
        return {
            "workload_name": self.workload_name,
            "iterations": list(self.iterations),
            "rank_ratio": {name: list(series) for name, series in self.rank_ratio.items()},
            "accuracy": list(self.accuracy),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Figure3Series":
        """Rebuild from :meth:`to_payload` output (``clipping_result`` is lost)."""
        return cls(
            workload_name=payload["workload_name"],
            iterations=[int(i) for i in payload["iterations"]],
            rank_ratio={
                name: [float(v) for v in series]
                for name, series in payload["rank_ratio"].items()
            },
            accuracy=[None if v is None else float(v) for v in payload["accuracy"]],
        )

    def format_series(self) -> str:
        """Text rendering of the traces (one line per recorded iteration)."""
        names = sorted(self.rank_ratio)
        header = f"{'iter':>8}" + "".join(f"{name:>12}" for name in names) + f"{'accuracy':>12}"
        lines = [f"Figure 3 ({self.workload_name}): rank ratio / accuracy", header]
        for idx, iteration in enumerate(self.iterations):
            ratios = "".join(f"{self.rank_ratio[name][idx]:>12.3f}" for name in names)
            acc = self.accuracy[idx]
            acc_str = f"{acc:>12.3f}" if acc is not None else f"{'n/a':>12}"
            lines.append(f"{iteration:>8}{ratios}{acc_str}")
        return "\n".join(lines)


def run_figure3(
    workload: Workload,
    *,
    tolerance: float = 0.03,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    baseline_accuracy: Optional[float] = None,
) -> Figure3Series:
    """Regenerate the Figure 3 traces (deprecated imperative entry point).

    .. deprecated::
        Build an :class:`~repro.experiments.spec.ExperimentSpec` with
        ``kind="figure3"`` (or resolve the ``figure3`` registry preset) and
        call :func:`~repro.experiments.plan.execute_spec`.  This shim lifts
        its arguments into the same spec and returns the identical result.
    """
    from repro.experiments.plan import (
        ExperimentContext,
        execute_spec,
        warn_deprecated_entry_point,
    )
    from repro.experiments.spec import spec_for_workload

    warn_deprecated_entry_point("run_figure3", 'ExperimentSpec(kind="figure3")')
    spec = spec_for_workload("figure3", workload, tolerance=tolerance)
    run = execute_spec(
        spec,
        context=ExperimentContext(
            workload=workload,
            setup=setup,
            baseline_network=baseline_network,
            baseline_accuracy=baseline_accuracy,
        ),
    )
    return run.result


# --------------------------------------------------------------------------- Figure 5
@dataclass
class Figure5Series:
    """Deleted-routing-wire and accuracy traces during group deletion.

    ``deleted_wire_fraction`` is the paper's norm-threshold estimate (which
    groups *would* be deleted right now); ``remaining_wire_fraction`` is the
    measured routing analysis of the current weights (memoized per mask
    fingerprint, so record steps pay a hash instead of a re-tiling).  The
    latter is empty when the deleter ran without routing memoization.
    """

    workload_name: str
    iterations: List[int]
    deleted_wire_fraction: Dict[str, List[float]]
    accuracy: List[Optional[float]]
    deletion_result: Optional[GroupDeletionResult] = None
    remaining_wire_fraction: Optional[Dict[str, List[float]]] = None

    def final_deleted_fractions(self) -> Dict[str, float]:
        """Deleted-wire fraction of every matrix at the last record."""
        return {k: v[-1] for k, v in self.deleted_wire_fraction.items() if v}

    def to_payload(self) -> Dict[str, Any]:
        """JSON view stored in run artifacts (drops the training trace)."""
        return {
            "workload_name": self.workload_name,
            "iterations": list(self.iterations),
            "deleted_wire_fraction": {
                name: list(series) for name, series in self.deleted_wire_fraction.items()
            },
            "accuracy": list(self.accuracy),
            "remaining_wire_fraction": None
            if self.remaining_wire_fraction is None
            else {
                name: list(series)
                for name, series in self.remaining_wire_fraction.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Figure5Series":
        """Rebuild from :meth:`to_payload` output (``deletion_result`` is lost)."""
        remaining = payload.get("remaining_wire_fraction")
        return cls(
            workload_name=payload["workload_name"],
            iterations=[int(i) for i in payload["iterations"]],
            deleted_wire_fraction={
                name: [float(v) for v in series]
                for name, series in payload["deleted_wire_fraction"].items()
            },
            accuracy=[None if v is None else float(v) for v in payload["accuracy"]],
            remaining_wire_fraction=None
            if remaining is None
            else {
                name: [float(v) for v in series] for name, series in remaining.items()
            },
        )

    def format_series(self) -> str:
        """Text rendering of the traces."""
        names = sorted(self.deleted_wire_fraction)
        header = f"{'iter':>8}" + "".join(f"{name:>14}" for name in names) + f"{'accuracy':>12}"
        lines = [f"Figure 5 ({self.workload_name}): % deleted wires / accuracy", header]
        for idx, iteration in enumerate(self.iterations):
            cells = "".join(
                f"{100 * self.deleted_wire_fraction[name][idx]:>13.1f}%" for name in names
            )
            acc = self.accuracy[idx]
            acc_str = f"{acc:>12.3f}" if acc is not None else f"{'n/a':>12}"
            lines.append(f"{iteration:>8}{cells}{acc_str}")
        return "\n".join(lines)


def run_figure5(
    workload: Workload,
    *,
    tolerance: float = 0.03,
    strength: float = 0.01,
    include_small_matrices: bool = False,
    setup: Optional[TrainingSetup] = None,
    baseline_network=None,
    engine: Optional[SweepEngine] = None,
) -> Figure5Series:
    """Regenerate the Figure 5 traces (deprecated imperative entry point).

    .. deprecated::
        Build an :class:`~repro.experiments.spec.ExperimentSpec` with
        ``kind="figure5"`` (or resolve the ``figure5`` registry preset) and
        call :func:`~repro.experiments.plan.execute_spec`.  This shim lifts
        its arguments into the same spec and returns the identical result.
    """
    from repro.experiments.plan import (
        ExperimentContext,
        execute_spec,
        warn_deprecated_entry_point,
    )
    from repro.experiments.spec import spec_for_workload

    warn_deprecated_entry_point("run_figure5", 'ExperimentSpec(kind="figure5")')
    spec = spec_for_workload(
        "figure5",
        workload,
        tolerance=tolerance,
        strength=strength,
        include_small_matrices=include_small_matrices,
        engine=engine,
    )
    run = execute_spec(
        spec,
        context=ExperimentContext(
            workload=workload, setup=setup, baseline_network=baseline_network
        ),
    )
    return run.result


# ------------------------------------------------------------------ Figure HW
@dataclass
class HardwareAccuracySeries:
    """Accuracy-versus-device-corner curves of a hardware-evaluated run.

    The view behind the ``figure_hw`` preset: one row per evaluated network
    (the single dense baseline, or every sweep point), one column per
    :class:`~repro.hardware.sim.HardwareConfig` corner label, cells holding
    the simulated accuracy.  Built from any result object that carries
    ``hardware`` blocks — :class:`~repro.experiments.plan.BaselineResult` or
    the sweep results — so stored artifacts rebuild the same series.
    """

    workload_name: str
    labels: List[str]
    rows: Dict[str, Dict[str, float]]

    @classmethod
    def from_result(cls, result) -> "HardwareAccuracySeries":
        """Extract the series from a hardware-evaluated result object."""
        from repro.experiments.sweeps import hardware_labels

        points = getattr(result, "points", None)
        rows: Dict[str, Dict[str, float]] = {}
        if points is None:
            hardware = getattr(result, "hardware", None) or {}
            if hardware:
                rows["baseline"] = dict(hardware)
        else:
            for point in points:
                hardware = getattr(point, "hardware", None) or {}
                if not hardware:
                    continue
                value = getattr(point, "strength", getattr(point, "tolerance", None))
                symbol = "lambda" if hasattr(point, "strength") else "eps"
                rows[f"{symbol}={value:g}"] = dict(hardware)
        return cls(
            workload_name=getattr(result, "workload_name", "?"),
            labels=hardware_labels([result] if points is None else points),
            rows=rows,
        )

    def series(self, label: str) -> List[float]:
        """Accuracy of every row at one device corner (row order)."""
        return [hardware[label] for hardware in self.rows.values() if label in hardware]

    def format_series(self) -> str:
        """Text rendering: networks as rows, device corners as columns."""
        if not self.rows:
            return f"Hardware accuracy ({self.workload_name}): no simulated corners"
        width = max(len("network"), max(len(name) for name in self.rows))
        columns = [max(10, len(label) + 2) for label in self.labels]
        header = f"{'network':<{width}}" + "".join(
            f"{label:>{column}}" for label, column in zip(self.labels, columns)
        )
        lines = [
            f"Hardware accuracy ({self.workload_name}): simulated device corners",
            header,
            "-" * len(header),
        ]
        for name, hardware in self.rows.items():
            cells = "".join(
                f"{hardware[label]:>{column}.3f}" if label in hardware else f"{'-':>{column}}"
                for label, column in zip(self.labels, columns)
            )
            lines.append(f"{name:<{width}}{cells}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- Figure 9
@dataclass(frozen=True)
class SparsityMap:
    """Structural sparsity of one crossbar matrix after deletion.

    ``mask`` marks non-zero weights; ``crossbar_density`` holds, per tile of
    the crossbar array, the fraction of non-zero cells (0.0 = the crossbar is
    empty and can be removed).
    """

    name: str
    mask: np.ndarray
    crossbar_density: np.ndarray
    tile_shape: Tuple[int, int]

    @property
    def nonzero_fraction(self) -> float:
        """Fraction of non-zero weights in the matrix."""
        return float(self.mask.mean())

    @property
    def empty_crossbars(self) -> int:
        """Number of crossbars with no remaining connection."""
        return int(np.sum(self.crossbar_density == 0.0))

    def ascii_sketch(self, width: int = 48) -> str:
        """Coarse ASCII rendering of the sparsity pattern (for terminals)."""
        rows, cols = self.mask.shape
        out_rows = max(1, min(16, rows))
        out_cols = max(1, min(width, cols))
        sketch_lines = []
        for r in range(out_rows):
            row_slice = slice(r * rows // out_rows, max(r * rows // out_rows + 1, (r + 1) * rows // out_rows))
            chars = []
            for c in range(out_cols):
                col_slice = slice(
                    c * cols // out_cols, max(c * cols // out_cols + 1, (c + 1) * cols // out_cols)
                )
                density = float(self.mask[row_slice, col_slice].mean())
                chars.append(" " if density == 0 else ("." if density < 0.5 else "#"))
            sketch_lines.append("".join(chars))
        return "\n".join(sketch_lines)


def sparsity_maps(
    network, *, layers=None, include_small_matrices: bool = False, zero_threshold: float = 0.0
) -> List[SparsityMap]:
    """Figure 9: block-sparsity maps of the (deleted) crossbar matrices."""
    grouped = derive_network_groups(
        network, layers=layers, include_small_matrices=include_small_matrices
    )
    maps: List[SparsityMap] = []
    for matrix in grouped:
        values = matrix_values(matrix)
        mask = np.abs(values) > zero_threshold
        plan = matrix.plan
        density = np.zeros((plan.grid_rows, plan.grid_cols))
        for tile_row, tile_col, row_slice, col_slice in plan.iter_tiles():
            density[tile_row, tile_col] = float(mask[row_slice, col_slice].mean())
        maps.append(
            SparsityMap(
                name=matrix.name,
                mask=mask,
                crossbar_density=density,
                tile_shape=plan.tile_shape(),
            )
        )
    return maps
