"""Robust hardware-inference serving: micro-batching, caching, degradation.

:class:`ServingRuntime` fronts :class:`~repro.hardware.sim.ProgrammedNetwork`
with the operational machinery deployment needs — bounded admission with
typed load-shedding, per-request deadlines enforced at every stage, a keyed
LRU cache of programmed networks with single-flight programming and drift
re-programming, per-network circuit breakers routing to a flagged
ideal-corner degraded mode, and graceful drain.  See ``README.md`` in this
package for the request lifecycle and state machine.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.cache import ProgrammedNetworkCache
from repro.serving.runtime import STATES, ServingRuntime
from repro.serving.types import (
    DeadlineRejection,
    DrainingRejection,
    FaultRejection,
    InferenceResponse,
    QueueFullRejection,
    Rejection,
    ResponseHandle,
    ServingConfig,
    ServingError,
)

__all__ = [
    "ServingRuntime",
    "ServingConfig",
    "ServingError",
    "Rejection",
    "QueueFullRejection",
    "DeadlineRejection",
    "DrainingRejection",
    "FaultRejection",
    "InferenceResponse",
    "ResponseHandle",
    "ProgrammedNetworkCache",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATES",
]
