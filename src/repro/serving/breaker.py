"""Per-network circuit breaker: fail fast to the degraded path, probe back.

A deployed crossbar that keeps faulting (drifted conductances, a failing
tile, a broken sense amplifier) must not keep absorbing traffic — every
request routed to it pays the fault and the retry.  The breaker implements
the classic three-state machine per cached network:

* ``closed`` — healthy; every batch may use the primary programmed network.
  ``threshold`` *consecutive* faults trip the breaker open.
* ``open`` — the primary path is skipped entirely (requests are served by
  the degraded ideal-corner fallback, flagged as such) until
  ``cooldown_s`` has elapsed.
* ``half-open`` — after the cool-down, exactly one probe batch is allowed
  through to the primary.  Success closes the breaker (full recovery); a
  fault re-opens it and restarts the cool-down.

The clock is injectable so tests can drive the cool-down deterministically;
the default is ``time.monotonic``.  All transitions are lock-protected —
multiple dispatcher threads may consult one breaker concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Three-state fault breaker guarding one programmed network."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        listener: Optional[Callable[[str, str], None]] = None,
    ):
        if not isinstance(threshold, int) or isinstance(threshold, bool) or threshold < 1:
            raise ConfigurationError(f"threshold must be a positive int, got {threshold!r}")
        if cooldown_s < 0:
            raise ConfigurationError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Called as ``listener(old_state, new_state)`` on every transition,
        #: *while the breaker lock is held* — it must be cheap and must never
        #: call back into this breaker (metric counters qualify).
        self._listener = listener
        #: Lifetime transition counters (observability / tests).
        self.times_opened = 0
        self.times_closed = 0

    def _transition(self, new_state: str) -> None:
        # Caller holds the lock.
        old_state = self._state
        self._state = new_state
        if self._listener is not None and old_state != new_state:
            self._listener(old_state, new_state)

    @property
    def state(self) -> str:
        """Current state, with the open → half-open transition applied lazily."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.  An open breaker whose cool-down elapsed
        # becomes half-open; the *next* allow() call hands out the probe.
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown_s:
            self._transition(HALF_OPEN)
            self._probe_inflight = False

    def allow(self) -> bool:
        """Whether the caller may dispatch to the primary path right now.

        In ``half-open`` exactly one caller receives ``True`` (the probe);
        everyone else is routed to the fallback until the probe reports.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """A primary dispatch succeeded: reset failures; close from half-open."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self._transition(CLOSED)
                self.times_closed += 1

    def abandon_probe(self) -> None:
        """Release a handed-out primary-path slot without an outcome.

        Used when a batch obtained ``allow()`` but never reached the device
        (e.g. its deadline expired while waiting on programming): in
        ``half-open`` the probe slot is freed so the *next* batch can probe,
        instead of the breaker wedging with ``_probe_inflight`` stuck.
        """
        with self._lock:
            self._probe_inflight = False

    def record_failure(self) -> None:
        """A primary dispatch faulted: count it; trip open at the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            should_open = (
                self._state == HALF_OPEN
                or self._probe_inflight
                or self._consecutive_failures >= self.threshold
            )
            self._probe_inflight = False
            if should_open and self._state != OPEN:
                self._transition(OPEN)
                self._opened_at = self._clock()
                self.times_opened += 1
            elif should_open:
                # Already open (e.g. a slow in-flight batch reporting after
                # another thread tripped it): restart the cool-down.
                self._opened_at = self._clock()

    def stats(self) -> Dict[str, object]:
        """State and counters (for runtime stats and the bench report)."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "times_closed": self.times_closed,
            }
