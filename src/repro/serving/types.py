"""Request/response vocabulary of the serving runtime.

Everything a caller sends to or receives from :class:`~repro.serving.runtime.
ServingRuntime` is defined here: the frozen :class:`ServingConfig`, the
:class:`InferenceResponse` value object, the :class:`ResponseHandle` futures
the front end hands back, and the **typed rejection hierarchy** — the
load-shedding contract's core.  A request is never silently dropped: it
either resolves to a response or raises exactly one :class:`Rejection`
subtype naming why it was shed (queue full, deadline infeasible or missed,
runtime draining, or both inference paths faulted).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ReproError

#: Extra seconds :meth:`ResponseHandle.result` waits past the request
#: deadline before declaring the runtime wedged.  The runtime's own contract
#: is to resolve every request by its deadline; the grace only covers
#: scheduler jitter between the deadline and the resolving thread running.
RESULT_GRACE_S = 5.0


class ServingError(ReproError):
    """Base class of every serving-runtime error."""


class Rejection(ServingError):
    """Base class of the typed load-shedding rejections.

    ``code`` is the stable machine-readable discriminator the runtime's
    stats counters and the bench report key on.
    """

    code = "rejected"


class QueueFullRejection(Rejection):
    """Admission refused: the bounded request queue is at capacity."""

    code = "queue-full"


class DeadlineRejection(Rejection):
    """The request's deadline cannot be met (or was missed).

    Raised *before work* when the deadline is already infeasible at
    admission or at dispatch, and *instead of a late response* when
    inference finished after the deadline — a response is never returned
    past its deadline.
    """

    code = "deadline"


class DrainingRejection(Rejection):
    """Admission refused: the runtime is draining or stopped."""

    code = "draining"


class FaultRejection(Rejection):
    """Both the primary and the degraded fallback path failed."""

    code = "fault"


@dataclass(frozen=True)
class ServingConfig:
    """Tuning knobs of one :class:`~repro.serving.runtime.ServingRuntime`.

    Attributes
    ----------
    max_queue:
        Capacity of the bounded admission queue.  Submissions beyond it are
        shed with :class:`QueueFullRejection` — the runtime never buffers
        unboundedly.
    max_batch:
        Largest micro-batch a worker coalesces before dispatching.
    batch_window_s:
        How long a worker waits for co-batchable requests after the first
        one arrives (the latency cost of batching).
    workers:
        Dispatcher thread count.  One thread preserves strict arrival-order
        batching (what the deterministic chaos drills use); more overlap
        GEMM time with queueing under load.
    default_deadline_s:
        Deadline applied when ``submit`` is called without one.
    breaker_threshold:
        Consecutive primary-path faults (per cached network) that trip its
        circuit breaker open.
    breaker_cooldown_s:
        Seconds an open breaker waits before letting one half-open probe
        batch try the primary path again.
    reprogram_after:
        Conductance-drift model: evict and re-program a cached network after
        it has served this many samples (``None`` disables).  Programming is
        deterministic per ``(network fingerprint, HardwareConfig)``, so a
        re-program restores the device to its exact original state.
    cache_size:
        Capacity of the programmed-network LRU cache.
    shed_window:
        The runtime reports ``shedding`` while any of the last
        ``shed_window`` submissions was shed for queue pressure.
    idle_poll_s:
        Worker poll interval on an empty queue (bounds every blocking wait;
        the no-hang contract).
    drain_timeout_s:
        Per-worker join budget during :meth:`~repro.serving.runtime.
        ServingRuntime.close`.
    """

    max_queue: int = 64
    max_batch: int = 16
    batch_window_s: float = 0.002
    workers: int = 1
    default_deadline_s: float = 1.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    reprogram_after: Optional[int] = None
    cache_size: int = 8
    shed_window: int = 32
    idle_poll_s: float = 0.05
    drain_timeout_s: float = 10.0

    def __post_init__(self):
        for name in ("max_queue", "max_batch", "workers", "cache_size", "shed_window"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigurationError(f"{name} must be a positive int, got {value!r}")
        if self.reprogram_after is not None and (
            not isinstance(self.reprogram_after, int) or self.reprogram_after < 1
        ):
            raise ConfigurationError(
                f"reprogram_after must be a positive int or None, got {self.reprogram_after!r}"
            )
        if not isinstance(self.breaker_threshold, int) or self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be a positive int, got {self.breaker_threshold!r}"
            )
        for name in ("batch_window_s", "breaker_cooldown_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("default_deadline_s", "idle_poll_s", "drain_timeout_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {getattr(self, name)}")


@dataclass(frozen=True)
class InferenceResponse:
    """One served inference result.

    ``degraded`` flags results computed on the ideal-corner fallback while
    the primary device path was faulted or its circuit breaker open — the
    caller always knows which fidelity it got.  Timing fields are measured
    on the runtime's clock: ``latency_s`` spans submit → resolve and is, by
    the runtime's deadline contract, never greater than the request's
    deadline budget.
    """

    prediction: int
    logits: np.ndarray = field(repr=False)
    degraded: bool
    corner: str
    batch_size: int
    latency_s: float
    service_s: float


class ResponseHandle:
    """Caller-side future for one submitted request.

    Resolved exactly once by the runtime — with a response, or with a typed
    :class:`Rejection` that :meth:`result` re-raises.  The default
    :meth:`result` wait is bounded by the request's own deadline plus
    :data:`RESULT_GRACE_S`, so a caller can never block forever.
    """

    def __init__(self, deadline: float, clock: Callable[[], float]):
        self._deadline = deadline
        self._clock = clock
        self._event = threading.Event()
        self._response: Optional[InferenceResponse] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------ runtime side
    def _resolve(self, response: InferenceResponse) -> None:
        if not self._event.is_set():
            self._response = response
            self._event.set()

    def _reject(self, error: BaseException) -> None:
        if not self._event.is_set():
            self._error = error
            self._event.set()

    # ------------------------------------------------------- caller side
    def done(self) -> bool:
        """Whether the request has been resolved (response or rejection)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> InferenceResponse:
        """Block for the response; re-raises the typed rejection on shed.

        ``timeout=None`` waits until the request's deadline plus a small
        grace — never unboundedly.
        """
        if timeout is None:
            timeout = max(0.0, self._deadline - self._clock()) + RESULT_GRACE_S
        if not self._event.wait(timeout=timeout):
            raise ServingError(
                "request unresolved within its wait budget; the runtime broke "
                "its resolve-by-deadline contract (or the handle outlived a "
                "non-draining shutdown)"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response
