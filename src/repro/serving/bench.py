"""Serving-runtime load benchmark and chaos drill.

Two entry points, shared by ``benchmarks/test_bench_serving.py`` and the
``python -m repro serve-bench`` CLI:

* :func:`collect_serving_stats` — calibrates the runtime's sustained serving
  capacity (burst-admitted, end-to-end through submit → micro-batch →
  programmed crossbar → resolve), then offers paced open-loop load at
  0.5× / 1× / 2× that capacity and records throughput, latency percentiles,
  and the typed-rejection breakdown per level.  The robustness claim under
  test is **shed, don't collapse**: at 2× saturation the runtime keeps
  serving near capacity and sheds the excess with typed rejections — every
  handle resolves, nothing is silently dropped and nothing hangs.
* :func:`run_chaos_drill` — a deterministic fault drill for CI: injected
  ``serve-infer`` faults trip a network's circuit breaker, traffic rides the
  degraded ideal-corner fallback (flagged), the half-open probe restores the
  primary after the cool-down, and the runtime drains cleanly.  Progress is
  emitted as stable greppable lines (``circuit opened``,
  ``degraded responses``, ``recovered: state=healthy``, ``drained``) that
  ``ci/run_ci.sh`` asserts on.

Both keep model and load sizes small: they run inside the tier-1 pytest
suite and must stay fast and flake-resistant (lenient thresholds; the exact
behavioural guarantees live in ``tests/test_serving.py``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.hardware.library import CrossbarLibrary
from repro.hardware.mapper import NetworkMapper
from repro.hardware.sim import HardwareConfig
from repro.hardware.technology import TechnologyParameters
from repro.models import build_mlp
from repro.serving.runtime import ServingRuntime
from repro.serving.types import Rejection, ServingConfig
from repro.utils import faultinject

#: Device corner the benchmark serves on (the hardware bench's corner).
CORNER = HardwareConfig(bits=6, program_noise=0.02, fault_rate=0.001, adc_bits=8, seed=0)

INPUT_DIM = 64
HIDDEN = [96]
CLASSES = 10

#: Offered-load multipliers relative to calibrated capacity.
LOAD_LEVELS = (0.5, 1.0, 2.0)

#: Spare seconds past a request's deadline allowed for result collection.
_COLLECT_GRACE_S = 10.0


def _mapper() -> NetworkMapper:
    technology = TechnologyParameters(max_crossbar_rows=32, max_crossbar_cols=32)
    return NetworkMapper(technology=technology, library=CrossbarLibrary(technology=technology))


def _network():
    return build_mlp(INPUT_DIM, HIDDEN, CLASSES, rng=0, name="serve-mlp")


def _inputs(samples: int = 64) -> np.ndarray:
    return np.random.default_rng(0).standard_normal((samples, INPUT_DIM))


def _percentile_ms(latencies: List[float], q: float) -> float:
    if not latencies:
        return float("nan")
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def _run_level(
    runtime: ServingRuntime,
    name: str,
    inputs: np.ndarray,
    *,
    rate: float,
    requests: int,
    deadline_s: float,
) -> Dict[str, object]:
    """Offer ``requests`` samples open-loop at ``rate``/s; account for all."""
    clock = time.monotonic
    handles = []
    rejections: Dict[str, int] = {}
    interarrival = 1.0 / rate
    start = clock()
    for index in range(requests):
        target = start + index * interarrival
        delay = target - clock()
        if delay > 0:
            time.sleep(delay)
        try:
            handles.append(
                runtime.submit(name, inputs[index % len(inputs)], deadline_s=deadline_s)
            )
        except Rejection as error:
            rejections[error.code] = rejections.get(error.code, 0) + 1
    latencies: List[float] = []
    degraded = 0
    for handle in handles:
        try:
            response = handle.result(timeout=deadline_s + _COLLECT_GRACE_S)
        except Rejection as error:
            rejections[error.code] = rejections.get(error.code, 0) + 1
            continue
        latencies.append(response.latency_s)
        degraded += int(response.degraded)
    elapsed = clock() - start
    completed = len(latencies)
    return {
        "offered_rate": rate,
        "requests": requests,
        "completed": completed,
        "degraded": degraded,
        "rejections": rejections,
        "shed_ratio": (requests - completed) / requests,
        "throughput": completed / elapsed if elapsed > 0 else float("nan"),
        "p50_ms": _percentile_ms(latencies, 50),
        "p99_ms": _percentile_ms(latencies, 99),
        "elapsed_s": elapsed,
    }


def _calibrate_capacity(
    runtime: ServingRuntime, name: str, inputs: np.ndarray, requests: int
) -> float:
    """Sustained end-to-end samples/s when admission is never the bottleneck.

    Burst-submits with retry-on-shed, so the measurement includes queueing,
    micro-batching, and dispatch overhead — the capacity the paced load
    levels are meaningful multiples of (raw ``predict`` throughput is much
    higher and would make even the 0.5× level saturate the front end).
    """
    clock = time.monotonic
    handles = []
    start = clock()
    for index in range(requests):
        while True:
            try:
                handles.append(
                    runtime.submit(name, inputs[index % len(inputs)], deadline_s=30.0)
                )
                break
            except Rejection:
                time.sleep(0.001)
    for handle in handles:
        handle.result(timeout=40.0)
    elapsed = clock() - start
    return requests / elapsed


def collect_serving_stats(
    requests_per_level: int = 80, *, obs=None
) -> Dict[str, object]:
    """Serving throughput/latency/shedding across load levels, as a flat dict.

    ``obs`` (a :class:`~repro.obs.Observability`) enables per-request trace
    records and the ``serving.*`` instruments for the run.
    """
    config = ServingConfig(
        max_queue=32,
        max_batch=16,
        batch_window_s=0.002,
        workers=2,
        default_deadline_s=5.0,
        cache_size=4,
    )
    runtime = ServingRuntime(config, mapper=_mapper(), obs=obs)
    inputs = _inputs()
    try:
        runtime.register("mlp", _network(), corner=CORNER, warm=True)
        # Warm the dispatch path itself (thread scheduling, allocator) before
        # calibrating, then measure sustained capacity.
        _calibrate_capacity(runtime, "mlp", inputs, requests=16)
        capacity = _calibrate_capacity(runtime, "mlp", inputs, requests=requests_per_level)
        stats: Dict[str, object] = {
            "capacity_rps": capacity,
            "requests_per_level": requests_per_level,
            "levels": {},
        }
        for multiple in LOAD_LEVELS:
            level = _run_level(
                runtime,
                "mlp",
                inputs,
                rate=multiple * capacity,
                requests=requests_per_level,
                deadline_s=5.0,
            )
            stats["levels"][f"{multiple:g}x"] = level
        stats["runtime"] = runtime.stats()
    finally:
        runtime.close(drain=True)
    return stats


def check_serving_stats(stats: Dict[str, object]) -> None:
    """The shed-don't-collapse guard (lenient: behaviour, not exact numbers).

    * Every request is accounted for at every level (completed + typed
      rejections == offered; the zero-silent-drop contract).
    * At 2× saturation the runtime still completes real work — shedding,
      not collapsing: throughput stays within 4× of the 1× level's.
    """
    levels = stats["levels"]
    for name, level in levels.items():
        accounted = level["completed"] + sum(level["rejections"].values())
        assert accounted == level["requests"], (name, level)
    nominal = levels["1x"]["throughput"]
    overload = levels["2x"]["throughput"]
    assert levels["2x"]["completed"] > 0, levels["2x"]
    assert overload >= 0.25 * nominal, (nominal, overload)


# ------------------------------------------------------------------ chaos drill
def run_chaos_drill(
    emit: Callable[[str], None] = print, *, obs=None
) -> Dict[str, object]:
    """Deterministic breaker drill; emits the greppable lines CI asserts on.

    Sequence (single worker, single-sample batches, so ``serve-infer``
    dispatch indices are deterministic):

    1. Faults are injected at primary-dispatch indices 0 and 1 with
       ``breaker_threshold=2`` — both requests are absorbed by the degraded
       ideal-corner fallback (flagged), and the second trips the breaker.
    2. While the breaker is open, traffic goes straight to the fallback
       (no primary dispatches are consumed).
    3. After the cool-down, the half-open probe hits dispatch index 2 — no
       fault there — and the breaker closes: full recovery to ``healthy``.
    4. The runtime drains cleanly with every request accounted for.
    """
    threshold = 2
    cooldown_s = 0.25
    config = ServingConfig(
        max_queue=16,
        max_batch=1,
        batch_window_s=0.0,
        workers=1,
        default_deadline_s=5.0,
        breaker_threshold=threshold,
        breaker_cooldown_s=cooldown_s,
    )
    runtime = ServingRuntime(config, mapper=_mapper(), obs=obs)
    inputs = _inputs(8)
    summary: Dict[str, object] = {"ok": False}
    faults = [
        {"site": "serve-infer", "kind": "raise", "index": index}
        for index in range(threshold)
    ]
    try:
        runtime.register("mlp", _network(), corner=CORNER, warm=True)
        emit(
            "serving chaos drill: injecting serve-infer faults at dispatch "
            f"indices {list(range(threshold))} (breaker threshold {threshold})"
        )
        with faultinject.injected(faults):
            for index in range(threshold):
                response = runtime.infer("mlp", inputs[index])
                assert response.degraded, "faulted dispatch must fall back degraded"
                emit(
                    f"fault {index + 1}/{threshold} absorbed: served on fallback "
                    f"(degraded=True, corner={response.corner})"
                )
            state = runtime.state()
            assert state == "degraded", f"breaker should be open, state={state}"
            emit(f"circuit opened after {threshold} consecutive faults: state={state}")

            open_responses = [runtime.infer("mlp", inputs[index]) for index in range(3)]
            assert all(response.degraded for response in open_responses)
            emit(
                f"degraded responses while open: {len(open_responses)} "
                "(all flagged degraded=True, primary path skipped)"
            )

            time.sleep(cooldown_s + 0.05)
            probe = runtime.infer("mlp", inputs[0])
            assert not probe.degraded, "probe past the cool-down must use the primary"
            state = runtime.state()
            assert state == "healthy", f"probe success should close the breaker, state={state}"
            emit(f"probe succeeded; recovered: state={state}")
        stats = runtime.stats()
        runtime.close(drain=True)
        accounted = stats["completed"] + sum(
            value for key, value in stats.items() if str(key).startswith("rejected.")
        )
        assert accounted == stats["submitted"], stats
        emit(
            f"drained: runtime closed cleanly, {accounted}/{stats['submitted']} "
            "requests accounted for (zero silent drops)"
        )
        summary = {
            "ok": True,
            "faults_injected": threshold,
            "submitted": stats["submitted"],
            "completed": stats["completed"],
            "degraded": stats["degraded"],
            "breakers": stats["breakers"],
        }
    finally:
        runtime.close(drain=True)
    return summary


# ------------------------------------------------------- observability overhead
def collect_obs_overhead(requests: int = 200) -> Dict[str, object]:
    """Serving throughput with the no-op registry vs live metrics.

    Runs the calibration burst twice on identical runtimes — once with the
    default :data:`~repro.obs.NULL_OBS`, once with a real
    :class:`~repro.obs.MetricsRegistry` (every request increments counters
    and observes the queue-wait/latency/batch-size histograms) — and
    reports the throughput ratio.  The benchmark guard holds the
    metrics-enabled path to ≥ 90% of the disabled path's throughput.
    Tracing is deliberately left disabled here: trace records append
    flocked, checksummed lines to ``traces.jsonl``, which is I/O-bound and
    opt-in per run, not a fixed tax on every served request.
    """
    from repro.obs import MetricsRegistry, Observability

    config = ServingConfig(
        max_queue=32,
        max_batch=16,
        batch_window_s=0.002,
        workers=2,
        default_deadline_s=5.0,
        cache_size=4,
    )
    inputs = _inputs()

    def _measure(obs, rounds: int = 3) -> float:
        # Peak throughput over a few bursts: scheduler jitter in shared CI
        # containers makes any single burst unreliable, and the *peak* is
        # what the instrumentation tax actually bounds.
        runtime = ServingRuntime(config, mapper=_mapper(), obs=obs)
        try:
            runtime.register("mlp", _network(), corner=CORNER, warm=True)
            _calibrate_capacity(runtime, "mlp", inputs, requests=16)
            return max(
                _calibrate_capacity(runtime, "mlp", inputs, requests=requests)
                for _ in range(rounds)
            )
        finally:
            runtime.close(drain=True)

    disabled_rps = _measure(None)
    enabled_rps = _measure(Observability(metrics=MetricsRegistry()))
    return {
        "requests": requests,
        "disabled_rps": disabled_rps,
        "enabled_rps": enabled_rps,
        "overhead_ratio": enabled_rps / disabled_rps,
    }
