"""The serving runtime: micro-batching front end over programmed crossbars.

:class:`ServingRuntime` turns :class:`~repro.hardware.sim.ProgrammedNetwork`
— program once, infer repeatedly — into an online service with robustness
as the headline contract:

* **Bounded admission** — requests enter one bounded queue; when it is full
  they are shed *at submit* with :class:`QueueFullRejection`.  Nothing in
  the runtime buffers unboundedly and every blocking wait has a timeout.
* **Micro-batching** — dispatcher threads coalesce same-network requests
  into micro-batches (up to ``max_batch`` within ``batch_window_s``),
  riding the batched MVM path one request at a time never could.
* **Deadlines everywhere** — every request carries an absolute deadline.
  Admission rejects infeasible deadlines before queueing (using a service
  EWMA), dispatch drops already-expired requests before touching the
  hardware path, and a result that misses its deadline is converted to a
  :class:`DeadlineRejection` rather than delivered late.
* **Circuit breaking + degraded mode** — repeated faults on a network's
  primary device corner trip its :class:`~repro.serving.breaker.
  CircuitBreaker`; while open, requests are served by the ideal-corner
  fallback with ``degraded=True`` in the response, and a half-open probe
  restores the primary after the cool-down.
* **Drift re-programming** — the programmed-network cache refreshes entries
  after ``reprogram_after`` served samples (see
  :class:`~repro.serving.cache.ProgrammedNetworkCache`).
* **Health states** — ``healthy / degraded / shedding / draining`` (plus
  terminal ``stopped``), and a graceful drain on :meth:`close`: admission
  stops, queued work finishes, nothing is silently dropped.

The ``serve-infer`` fault-injection site fires before each primary-path
micro-batch dispatch with a per-runtime sequence number, so chaos drills
can fault the Nth dispatch deterministically (the degraded fallback path is
deliberately uninstrumented — see :mod:`repro.utils.faultinject`).
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.mapper import NetworkMapper
from repro.hardware.sim import HardwareConfig, network_fingerprint
from repro.nn.dtype import as_float
from repro.nn.network import Sequential
from repro.obs import NULL_OBS, Observability
from repro.serving.breaker import CLOSED, CircuitBreaker
from repro.serving.cache import CacheKey, ProgrammedNetworkCache
from repro.serving.types import (
    DeadlineRejection,
    DrainingRejection,
    FaultRejection,
    InferenceResponse,
    QueueFullRejection,
    Rejection,
    ResponseHandle,
    ServingConfig,
    ServingError,
)
from repro.utils import faultinject
from repro.utils.logging import get_logger

logger = get_logger("serving.runtime")

#: Health states of the runtime, in reporting precedence order.
STATES = ("stopped", "draining", "shedding", "degraded", "healthy")

#: EWMA weight of the newest batch service time in the admission estimator.
_EWMA_ALPHA = 0.3


@dataclass
class _Registered:
    """One registered model: the digital network plus its serving corner."""

    name: str
    network: Sequential
    fingerprint: str
    corner: HardwareConfig
    fallback: HardwareConfig


class _PendingRequest:
    __slots__ = ("name", "x", "deadline", "submitted", "handle", "trace")

    def __init__(
        self,
        name: str,
        x: np.ndarray,
        deadline: float,
        submitted: float,
        handle: ResponseHandle,
        trace: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.x = x
        self.deadline = deadline
        self.submitted = submitted
        self.handle = handle
        # The request's trace record under construction (None when tracing
        # is off); emitted exactly once, at resolve or reject.
        self.trace = trace


class ServingRuntime:
    """Thread-based hardware-inference server over programmed crossbars."""

    #: Every accounting counter the runtime maintains.  The ``rejected.*``
    #: entries must cover every Rejection subclass in repro.serving.types —
    #: the ``uncounted-rejection`` lint rule cross-checks this tuple, which
    #: is what keeps ``submitted == completed + Σ rejected.*`` an enforced
    #: invariant rather than a convention.
    COUNTER_KEYS = (
        "submitted",
        "admitted",
        "completed",
        "degraded",
        "batches",
        "primary_faults",
        "rejected.queue-full",
        "rejected.deadline",
        "rejected.draining",
        "rejected.fault",
    )

    def __init__(
        self,
        config: Optional[ServingConfig] = None,
        *,
        mapper: Optional[NetworkMapper] = None,
        clock: Callable[[], float] = time.monotonic,
        obs: Optional[Observability] = None,
    ):
        self.config = config if config is not None else ServingConfig()
        self._clock = clock
        self.obs = obs if obs is not None else NULL_OBS
        self.cache = ProgrammedNetworkCache(
            maxsize=self.config.cache_size,
            reprogram_after=self.config.reprogram_after,
            mapper=mapper,
            clock=clock,
            obs=self.obs,
        )
        self._queue: "queue.Queue[_PendingRequest]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._registered: Dict[str, _Registered] = {}
        self._breakers: Dict[CacheKey, CircuitBreaker] = {}
        self._state_lock = threading.Lock()
        self._draining = False
        self._stopped = False
        self._service_ewma: Optional[float] = None
        self._dispatch_seq = 0
        self._submit_seq = 0
        self._last_shed_seq: Optional[int] = None
        self._counters = {key: 0 for key in self.COUNTER_KEYS}
        metrics = self.obs.metrics
        self._m_counters = {
            key: metrics.counter(f"serving.{key}") for key in self.COUNTER_KEYS
        }
        self._m_queue_wait = metrics.histogram("serving.queue_wait_s")
        self._m_service = metrics.histogram("serving.service_s")
        self._m_latency = metrics.histogram("serving.latency_s")
        self._m_batch_size = metrics.histogram(
            "serving.batch_size", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        self._m_queue_depth = metrics.gauge("serving.queue_depth")
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{index}", daemon=True
            )
            for index in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -------------------------------------------------------------- registry
    def register(
        self,
        name: str,
        network: Sequential,
        *,
        corner: Optional[HardwareConfig] = None,
        warm: bool = False,
    ) -> str:
        """Register ``network`` for serving under ``name``.

        The content fingerprint is computed once here — requests route by
        name without re-hashing parameters.  ``corner`` is the device
        corner the primary path serves on (default: ideal); the degraded
        fallback always uses ``HardwareConfig.ideal()`` at the corner's
        seed.  ``warm=True`` programs the primary entry eagerly so the
        first request does not pay programming latency.
        """
        if self._draining or self._stopped:
            raise ServingError("cannot register networks on a draining/stopped runtime")
        corner = corner if corner is not None else HardwareConfig.ideal()
        fingerprint = network_fingerprint(network)
        entry = _Registered(
            name=name,
            network=network,
            fingerprint=fingerprint,
            corner=corner,
            fallback=HardwareConfig.ideal(seed=corner.seed),
        )
        with self._state_lock:
            self._registered[name] = entry
            self._breakers.setdefault(
                (fingerprint, corner),
                CircuitBreaker(
                    self.config.breaker_threshold,
                    self.config.breaker_cooldown_s,
                    clock=self._clock,
                    listener=self._breaker_listener,
                ),
            )
        if warm:
            self.cache.get(network, corner, fingerprint=fingerprint, samples=0)
        return fingerprint

    def _breaker_listener(self, old_state: str, new_state: str) -> None:
        # Invoked under the breaker's lock: counter increments only (the
        # metric lock never takes a breaker or runtime lock).
        self.obs.metrics.counter(f"serving.breaker.{new_state}").inc()

    def _count(self, key: str, amount: int = 1) -> None:
        # Caller holds _state_lock (the dict half); the metric counter has
        # its own lock and never acquires _state_lock.
        self._counters[key] += amount
        self._m_counters[key].inc(amount)

    # ------------------------------------------------------------- admission
    def submit(
        self,
        name: str,
        x: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
    ) -> ResponseHandle:
        """Submit one sample for inference; returns a :class:`ResponseHandle`.

        Admission control runs here, before any queueing: draining/stopped
        runtimes, a full queue, and deadlines the service estimator already
        knows are infeasible all raise a typed :class:`Rejection`
        immediately (reject-before-work).
        """
        with self._state_lock:
            self._count("submitted")
            self._submit_seq += 1
            seq = self._submit_seq
            if self._draining or self._stopped:
                self._count("rejected.draining")
                # Not self.state(): that re-acquires _state_lock (non-reentrant).
                status = "stopped" if self._stopped else "draining"
                error = DrainingRejection(f"runtime is {status}; not accepting work")
            else:
                error = None
                entry = self._registered.get(name)
        if error is not None:
            self._trace_submit_rejection(seq, name, deadline_s, error)
            raise error
        if entry is None:
            raise ServingError(
                f"unregistered network {name!r}; registered: {sorted(self._registered)}"
            )
        deadline_s = (
            self.config.default_deadline_s if deadline_s is None else float(deadline_s)
        )
        now = self._clock()
        if deadline_s <= 0:
            with self._state_lock:
                self._count("rejected.deadline")
            error = DeadlineRejection(f"deadline_s must be > 0, got {deadline_s}")
            self._trace_submit_rejection(seq, name, deadline_s, error)
            raise error
        estimate = self._estimate_turnaround()
        if estimate is not None and estimate > deadline_s:
            with self._state_lock:
                self._count("rejected.deadline")
            error = DeadlineRejection(
                f"deadline {deadline_s * 1e3:.1f} ms is infeasible: estimated "
                f"queue+service turnaround is {estimate * 1e3:.1f} ms"
            )
            self._trace_submit_rejection(seq, name, deadline_s, error)
            raise error
        handle = ResponseHandle(now + deadline_s, self._clock)
        trace = None
        if self.obs.tracer.enabled:
            # Every non-timing field here is deterministic for a seeded run:
            # `request` is the submission sequence, `deadline_s` the caller's
            # relative deadline.
            trace = {
                "request": seq,
                "name": name,
                "deadline_s": deadline_s,
                "admission": "admitted",
            }
        request = _PendingRequest(
            name=name,
            x=as_float(np.asarray(x)),
            deadline=now + deadline_s,
            submitted=now,
            handle=handle,
            trace=trace,
        )
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._state_lock:
                self._count("rejected.queue-full")
                self._last_shed_seq = self._submit_seq
            error = QueueFullRejection(
                f"admission queue is at capacity ({self.config.max_queue}); "
                "request shed"
            )
            self._trace_submit_rejection(seq, name, deadline_s, error)
            raise error from None
        with self._state_lock:
            self._count("admitted")
        return handle

    def _trace_submit_rejection(
        self, seq: int, name: str, deadline_s: Optional[float], error: Rejection
    ) -> None:
        """Emit the terminal trace record for a request shed at submit."""
        if not self.obs.tracer.enabled:
            return
        self.obs.tracer.emit(
            "request",
            request=seq,
            name=name,
            deadline_s=deadline_s,
            admission="rejected",
            outcome=error.code,
            rejection=type(error).__name__,
        )

    def infer(
        self, name: str, x: np.ndarray, *, deadline_s: Optional[float] = None
    ) -> InferenceResponse:
        """Blocking convenience: ``submit`` + ``result``."""
        # ResponseHandle.result() defaults to the request's own deadline plus
        # a fixed grace — bounded by construction.  repro: ignore[unbounded-wait]
        return self.submit(name, x, deadline_s=deadline_s).result()

    def _estimate_turnaround(self) -> Optional[float]:
        """Expected queue-wait + service seconds for a new request, or None.

        Based on the batch-service EWMA: a queue of ``q`` requests needs
        ``ceil(q / max_batch)`` batches ahead of this one, plus its own.
        Deliberately conservative only under real backlog — an idle runtime
        estimates a single batch service time.
        """
        ewma = self._service_ewma
        if ewma is None:
            return None
        queued = self._queue.qsize()
        batches_ahead = -(-queued // self.config.max_batch)  # ceil division
        return (batches_ahead + 1) * ewma

    # ----------------------------------------------------------- state machine
    def state(self) -> str:
        """Health state: ``healthy / degraded / shedding / draining / stopped``.

        Precedence: ``stopped`` > ``draining`` > ``shedding`` (a shed within
        the last ``shed_window`` submissions) > ``degraded`` (any breaker
        not closed) > ``healthy``.
        """
        with self._state_lock:
            if self._stopped:
                return "stopped"
            if self._draining:
                return "draining"
            shedding = (
                self._last_shed_seq is not None
                and self._submit_seq - self._last_shed_seq < self.config.shed_window
            )
            breakers = list(self._breakers.values())
        if shedding:
            return "shedding"
        if any(breaker.state != CLOSED for breaker in breakers):
            return "degraded"
        return "healthy"

    def is_ready(self) -> bool:
        """Readiness: accepting new work (not draining, not stopped)."""
        with self._state_lock:
            return not (self._draining or self._stopped)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot, including cache and per-breaker stats.

        The snapshot is deep-copied: callers may mutate it (bench reports
        annotate it freely) without perturbing runtime state.
        """
        with self._state_lock:
            counters = dict(self._counters)
            names = {
                (entry.fingerprint, entry.corner): entry.name
                for entry in self._registered.values()
            }
            breakers = {
                f"{names.get(key, key[0][:8])}@{key[1].label}": breaker.stats()
                for key, breaker in self._breakers.items()
            }
        counters["state"] = self.state()
        counters["queue_depth"] = self._queue.qsize()
        counters["cache"] = self.cache.stats()
        counters["breakers"] = breakers
        return copy.deepcopy(counters)

    # ---------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        carry: Optional[_PendingRequest] = None
        while True:
            request = carry
            carry = None
            if request is None:
                try:
                    request = self._queue.get(timeout=self.config.idle_poll_s)
                except queue.Empty:
                    if self._draining or self._stopped:
                        break
                    continue
            batch = [request]
            window_end = self._clock() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                remaining = window_end - self._clock()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=max(remaining, 1e-4))
                except queue.Empty:
                    break
                if nxt.name == request.name:
                    batch.append(nxt)
                else:
                    # Different network: seed of the next batch, never dropped.
                    carry = nxt
                    break
            self._execute(batch)
        # Post-drain sweep: under a non-draining stop, reject whatever is left
        # so no handle is abandoned (zero silent drops).
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            self._reject(
                leftover,
                DrainingRejection("runtime stopped before this request was served"),
            )

    def _execute(self, batch: List[_PendingRequest]) -> None:
        now = self._clock()
        self._m_queue_depth.set(self._queue.qsize())
        live: List[_PendingRequest] = []
        for request in batch:
            # Queue wait is observed for every dequeued request — expired and
            # live alike — and mirrored into the request's trace record, so
            # an offline percentile over traces.jsonl sees exactly the same
            # observations as the serving.queue_wait_s histogram.
            queue_wait = now - request.submitted
            self._m_queue_wait.observe(queue_wait)
            if request.trace is not None:
                request.trace["queue_wait_s"] = queue_wait
            if now >= request.deadline:
                # Reject-before-work: the deadline passed while queued.
                self._reject(request, DeadlineRejection("deadline expired in queue"))
            else:
                live.append(request)
        if not live:
            return
        entry = self._registered[live[0].name]
        breaker = self._breakers[(entry.fingerprint, entry.corner)]
        self._m_batch_size.observe(len(live))
        breaker_state = breaker.state
        cache_trace: Optional[Dict[str, object]] = None
        if self.obs.tracer.enabled:
            cache_trace = {}
            for request in live:
                if request.trace is not None:
                    request.trace["batch_size"] = len(live)
                    request.trace["breaker_state"] = breaker_state
        x = np.stack([request.x for request in live])
        budget = max(request.deadline for request in live) - self._clock()

        logits: Optional[np.ndarray] = None
        service_s = 0.0
        degraded = False
        corner = entry.corner
        if breaker.allow():
            with self._state_lock:
                sequence = self._dispatch_seq
                self._dispatch_seq += 1
            try:
                programmed = self.cache.get(
                    entry.network,
                    entry.corner,
                    fingerprint=entry.fingerprint,
                    samples=len(live),
                    timeout=max(budget, 1e-4),
                    trace=cache_trace,
                )
                faultinject.fire("serve-infer", index=sequence)
                started = self._clock()
                logits = programmed.predict(x)
                service_s = self._clock() - started
                breaker.record_success()
            except Rejection as error:
                # Cache wait exceeded the batch budget: deadline semantics,
                # not a device fault — release the probe slot uncounted.
                breaker.abandon_probe()
                self._merge_cache_trace(live, cache_trace)
                for request in live:
                    self._reject(request, error)
                return
            except Exception as error:
                breaker.record_failure()
                with self._state_lock:
                    self._count("primary_faults")
                logger.warning(
                    "primary dispatch fault on %r (%s); falling back degraded",
                    entry.name,
                    error,
                )
        if logits is None:
            # Degraded mode: the ideal-corner fallback (breaker open, or the
            # primary just faulted).  Uninstrumented by design — see
            # repro.utils.faultinject.
            degraded = True
            corner = entry.fallback
            try:
                programmed = self.cache.get(
                    entry.network,
                    entry.fallback,
                    fingerprint=entry.fingerprint,
                    samples=len(live),
                    timeout=max(budget, 1e-4),
                    trace=cache_trace,
                )
                started = self._clock()
                logits = programmed.predict(x)
                service_s = self._clock() - started
            except Rejection as error:
                self._merge_cache_trace(live, cache_trace)
                for request in live:
                    self._reject(request, error)
                return
            except Exception as error:  # pragma: no cover - defensive
                logger.error("degraded fallback failed on %r: %s", entry.name, error)
                rejection = FaultRejection(
                    f"primary and fallback paths both failed: {error}"
                )
                self._merge_cache_trace(live, cache_trace)
                for request in live:
                    self._reject(request, rejection)
                return

        if cache_trace is not None:
            for request in live:
                if request.trace is not None:
                    request.trace.update(cache_trace)
                    request.trace["corner"] = corner.label
                    request.trace["degraded"] = degraded
        with self._state_lock:
            self._count("batches")
            if self._service_ewma is None:
                self._service_ewma = service_s
            else:
                self._service_ewma += _EWMA_ALPHA * (service_s - self._service_ewma)
        self._m_service.observe(service_s)
        done = self._clock()
        predictions = np.argmax(logits, axis=1)
        for slot, request in enumerate(live):
            if done > request.deadline:
                # Late result: never returned past its deadline.
                self._reject(
                    request,
                    DeadlineRejection("result ready after the deadline; discarded"),
                )
                continue
            request.handle._resolve(
                InferenceResponse(
                    prediction=int(predictions[slot]),
                    logits=logits[slot],
                    degraded=degraded,
                    corner=corner.label,
                    batch_size=len(live),
                    latency_s=done - request.submitted,
                    service_s=service_s,
                )
            )
            with self._state_lock:
                self._count("completed")
                if degraded:
                    self._count("degraded")
            self._m_latency.observe(done - request.submitted)
            trace = request.trace
            if trace is not None:
                request.trace = None
                trace["outcome"] = "completed"
                trace["deadline_slack_s"] = request.deadline - done
                trace["latency_s"] = done - request.submitted
                trace["service_s"] = service_s
                self.obs.tracer.emit("request", **trace)

    @staticmethod
    def _merge_cache_trace(
        live: List[_PendingRequest], cache_trace: Optional[Dict[str, object]]
    ) -> None:
        if not cache_trace:
            return
        for request in live:
            if request.trace is not None:
                request.trace.update(cache_trace)

    def _reject(self, request: _PendingRequest, error: Rejection) -> None:
        request.handle._reject(error)
        with self._state_lock:
            self._count(f"rejected.{error.code}")
        trace = request.trace
        if trace is not None:
            request.trace = None
            trace["outcome"] = error.code
            trace["rejection"] = type(error).__name__
            self.obs.tracer.emit("request", **trace)

    # ------------------------------------------------------------------ drain
    def close(self, *, drain: bool = True) -> None:
        """Stop the runtime; idempotent.

        ``drain=True`` (graceful): admission stops immediately, every queued
        request is still served (or deadline-rejected), workers exit once the
        queue is empty.  ``drain=False``: queued requests are rejected with
        :class:`DrainingRejection` instead of served.
        """
        with self._state_lock:
            if self._stopped:
                return
            self._draining = True
        if not drain:
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._reject(
                    request, DrainingRejection("runtime closed without draining")
                )
        for thread in self._threads:
            thread.join(timeout=self.config.drain_timeout_s)
        alive = [thread.name for thread in self._threads if thread.is_alive()]
        with self._state_lock:
            self._stopped = True
        if alive:
            raise ServingError(
                f"drain timed out: worker(s) {alive} still running after "
                f"{self.config.drain_timeout_s}s"
            )

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(drain=exc_type is None)
