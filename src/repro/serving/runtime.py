"""The serving runtime: micro-batching front end over programmed crossbars.

:class:`ServingRuntime` turns :class:`~repro.hardware.sim.ProgrammedNetwork`
— program once, infer repeatedly — into an online service with robustness
as the headline contract:

* **Bounded admission** — requests enter one bounded queue; when it is full
  they are shed *at submit* with :class:`QueueFullRejection`.  Nothing in
  the runtime buffers unboundedly and every blocking wait has a timeout.
* **Micro-batching** — dispatcher threads coalesce same-network requests
  into micro-batches (up to ``max_batch`` within ``batch_window_s``),
  riding the batched MVM path one request at a time never could.
* **Deadlines everywhere** — every request carries an absolute deadline.
  Admission rejects infeasible deadlines before queueing (using a service
  EWMA), dispatch drops already-expired requests before touching the
  hardware path, and a result that misses its deadline is converted to a
  :class:`DeadlineRejection` rather than delivered late.
* **Circuit breaking + degraded mode** — repeated faults on a network's
  primary device corner trip its :class:`~repro.serving.breaker.
  CircuitBreaker`; while open, requests are served by the ideal-corner
  fallback with ``degraded=True`` in the response, and a half-open probe
  restores the primary after the cool-down.
* **Drift re-programming** — the programmed-network cache refreshes entries
  after ``reprogram_after`` served samples (see
  :class:`~repro.serving.cache.ProgrammedNetworkCache`).
* **Health states** — ``healthy / degraded / shedding / draining`` (plus
  terminal ``stopped``), and a graceful drain on :meth:`close`: admission
  stops, queued work finishes, nothing is silently dropped.

The ``serve-infer`` fault-injection site fires before each primary-path
micro-batch dispatch with a per-runtime sequence number, so chaos drills
can fault the Nth dispatch deterministically (the degraded fallback path is
deliberately uninstrumented — see :mod:`repro.utils.faultinject`).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.hardware.mapper import NetworkMapper
from repro.hardware.sim import HardwareConfig, network_fingerprint
from repro.nn.dtype import as_float
from repro.nn.network import Sequential
from repro.serving.breaker import CLOSED, CircuitBreaker
from repro.serving.cache import CacheKey, ProgrammedNetworkCache
from repro.serving.types import (
    DeadlineRejection,
    DrainingRejection,
    FaultRejection,
    InferenceResponse,
    QueueFullRejection,
    Rejection,
    ResponseHandle,
    ServingConfig,
    ServingError,
)
from repro.utils import faultinject
from repro.utils.logging import get_logger

logger = get_logger("serving.runtime")

#: Health states of the runtime, in reporting precedence order.
STATES = ("stopped", "draining", "shedding", "degraded", "healthy")

#: EWMA weight of the newest batch service time in the admission estimator.
_EWMA_ALPHA = 0.3


@dataclass
class _Registered:
    """One registered model: the digital network plus its serving corner."""

    name: str
    network: Sequential
    fingerprint: str
    corner: HardwareConfig
    fallback: HardwareConfig


class _PendingRequest:
    __slots__ = ("name", "x", "deadline", "submitted", "handle")

    def __init__(
        self,
        name: str,
        x: np.ndarray,
        deadline: float,
        submitted: float,
        handle: ResponseHandle,
    ):
        self.name = name
        self.x = x
        self.deadline = deadline
        self.submitted = submitted
        self.handle = handle


class ServingRuntime:
    """Thread-based hardware-inference server over programmed crossbars."""

    def __init__(
        self,
        config: Optional[ServingConfig] = None,
        *,
        mapper: Optional[NetworkMapper] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config if config is not None else ServingConfig()
        self._clock = clock
        self.cache = ProgrammedNetworkCache(
            maxsize=self.config.cache_size,
            reprogram_after=self.config.reprogram_after,
            mapper=mapper,
            clock=clock,
        )
        self._queue: "queue.Queue[_PendingRequest]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._registered: Dict[str, _Registered] = {}
        self._breakers: Dict[CacheKey, CircuitBreaker] = {}
        self._state_lock = threading.Lock()
        self._draining = False
        self._stopped = False
        self._service_ewma: Optional[float] = None
        self._dispatch_seq = 0
        self._submit_seq = 0
        self._last_shed_seq: Optional[int] = None
        self._counters = {
            "submitted": 0,
            "admitted": 0,
            "completed": 0,
            "degraded": 0,
            "batches": 0,
            "primary_faults": 0,
            "rejected.queue-full": 0,
            "rejected.deadline": 0,
            "rejected.draining": 0,
            "rejected.fault": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{index}", daemon=True
            )
            for index in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -------------------------------------------------------------- registry
    def register(
        self,
        name: str,
        network: Sequential,
        *,
        corner: Optional[HardwareConfig] = None,
        warm: bool = False,
    ) -> str:
        """Register ``network`` for serving under ``name``.

        The content fingerprint is computed once here — requests route by
        name without re-hashing parameters.  ``corner`` is the device
        corner the primary path serves on (default: ideal); the degraded
        fallback always uses ``HardwareConfig.ideal()`` at the corner's
        seed.  ``warm=True`` programs the primary entry eagerly so the
        first request does not pay programming latency.
        """
        if self._draining or self._stopped:
            raise ServingError("cannot register networks on a draining/stopped runtime")
        corner = corner if corner is not None else HardwareConfig.ideal()
        fingerprint = network_fingerprint(network)
        entry = _Registered(
            name=name,
            network=network,
            fingerprint=fingerprint,
            corner=corner,
            fallback=HardwareConfig.ideal(seed=corner.seed),
        )
        with self._state_lock:
            self._registered[name] = entry
            self._breakers.setdefault(
                (fingerprint, corner),
                CircuitBreaker(
                    self.config.breaker_threshold,
                    self.config.breaker_cooldown_s,
                    clock=self._clock,
                ),
            )
        if warm:
            self.cache.get(network, corner, fingerprint=fingerprint, samples=0)
        return fingerprint

    # ------------------------------------------------------------- admission
    def submit(
        self,
        name: str,
        x: np.ndarray,
        *,
        deadline_s: Optional[float] = None,
    ) -> ResponseHandle:
        """Submit one sample for inference; returns a :class:`ResponseHandle`.

        Admission control runs here, before any queueing: draining/stopped
        runtimes, a full queue, and deadlines the service estimator already
        knows are infeasible all raise a typed :class:`Rejection`
        immediately (reject-before-work).
        """
        with self._state_lock:
            self._counters["submitted"] += 1
            self._submit_seq += 1
            if self._draining or self._stopped:
                self._counters["rejected.draining"] += 1
                # Not self.state(): that re-acquires _state_lock (non-reentrant).
                status = "stopped" if self._stopped else "draining"
                raise DrainingRejection(f"runtime is {status}; not accepting work")
            entry = self._registered.get(name)
        if entry is None:
            raise ServingError(
                f"unregistered network {name!r}; registered: {sorted(self._registered)}"
            )
        deadline_s = (
            self.config.default_deadline_s if deadline_s is None else float(deadline_s)
        )
        now = self._clock()
        if deadline_s <= 0:
            with self._state_lock:
                self._counters["rejected.deadline"] += 1
            raise DeadlineRejection(f"deadline_s must be > 0, got {deadline_s}")
        estimate = self._estimate_turnaround()
        if estimate is not None and estimate > deadline_s:
            with self._state_lock:
                self._counters["rejected.deadline"] += 1
            raise DeadlineRejection(
                f"deadline {deadline_s * 1e3:.1f} ms is infeasible: estimated "
                f"queue+service turnaround is {estimate * 1e3:.1f} ms"
            )
        handle = ResponseHandle(now + deadline_s, self._clock)
        request = _PendingRequest(
            name=name,
            x=as_float(np.asarray(x)),
            deadline=now + deadline_s,
            submitted=now,
            handle=handle,
        )
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._state_lock:
                self._counters["rejected.queue-full"] += 1
                self._last_shed_seq = self._submit_seq
            raise QueueFullRejection(
                f"admission queue is at capacity ({self.config.max_queue}); "
                "request shed"
            ) from None
        with self._state_lock:
            self._counters["admitted"] += 1
        return handle

    def infer(
        self, name: str, x: np.ndarray, *, deadline_s: Optional[float] = None
    ) -> InferenceResponse:
        """Blocking convenience: ``submit`` + ``result``."""
        # ResponseHandle.result() defaults to the request's own deadline plus
        # a fixed grace — bounded by construction.  repro: ignore[unbounded-wait]
        return self.submit(name, x, deadline_s=deadline_s).result()

    def _estimate_turnaround(self) -> Optional[float]:
        """Expected queue-wait + service seconds for a new request, or None.

        Based on the batch-service EWMA: a queue of ``q`` requests needs
        ``ceil(q / max_batch)`` batches ahead of this one, plus its own.
        Deliberately conservative only under real backlog — an idle runtime
        estimates a single batch service time.
        """
        ewma = self._service_ewma
        if ewma is None:
            return None
        queued = self._queue.qsize()
        batches_ahead = -(-queued // self.config.max_batch)  # ceil division
        return (batches_ahead + 1) * ewma

    # ----------------------------------------------------------- state machine
    def state(self) -> str:
        """Health state: ``healthy / degraded / shedding / draining / stopped``.

        Precedence: ``stopped`` > ``draining`` > ``shedding`` (a shed within
        the last ``shed_window`` submissions) > ``degraded`` (any breaker
        not closed) > ``healthy``.
        """
        with self._state_lock:
            if self._stopped:
                return "stopped"
            if self._draining:
                return "draining"
            shedding = (
                self._last_shed_seq is not None
                and self._submit_seq - self._last_shed_seq < self.config.shed_window
            )
            breakers = list(self._breakers.values())
        if shedding:
            return "shedding"
        if any(breaker.state != CLOSED for breaker in breakers):
            return "degraded"
        return "healthy"

    def is_ready(self) -> bool:
        """Readiness: accepting new work (not draining, not stopped)."""
        with self._state_lock:
            return not (self._draining or self._stopped)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot, including cache and per-breaker stats."""
        with self._state_lock:
            counters = dict(self._counters)
            names = {
                (entry.fingerprint, entry.corner): entry.name
                for entry in self._registered.values()
            }
            breakers = {
                f"{names.get(key, key[0][:8])}@{key[1].label}": breaker.stats()
                for key, breaker in self._breakers.items()
            }
        counters["state"] = self.state()
        counters["queue_depth"] = self._queue.qsize()
        counters["cache"] = self.cache.stats()
        counters["breakers"] = breakers
        return counters

    # ---------------------------------------------------------------- workers
    def _worker_loop(self) -> None:
        carry: Optional[_PendingRequest] = None
        while True:
            request = carry
            carry = None
            if request is None:
                try:
                    request = self._queue.get(timeout=self.config.idle_poll_s)
                except queue.Empty:
                    if self._draining or self._stopped:
                        break
                    continue
            batch = [request]
            window_end = self._clock() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                remaining = window_end - self._clock()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=max(remaining, 1e-4))
                except queue.Empty:
                    break
                if nxt.name == request.name:
                    batch.append(nxt)
                else:
                    # Different network: seed of the next batch, never dropped.
                    carry = nxt
                    break
            self._execute(batch)
        # Post-drain sweep: under a non-draining stop, reject whatever is left
        # so no handle is abandoned (zero silent drops).
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            leftover.handle._reject(
                DrainingRejection("runtime stopped before this request was served")
            )

    def _execute(self, batch: List[_PendingRequest]) -> None:
        now = self._clock()
        live: List[_PendingRequest] = []
        for request in batch:
            if now >= request.deadline:
                # Reject-before-work: the deadline passed while queued.
                self._reject(request, DeadlineRejection("deadline expired in queue"))
            else:
                live.append(request)
        if not live:
            return
        entry = self._registered[live[0].name]
        breaker = self._breakers[(entry.fingerprint, entry.corner)]
        x = np.stack([request.x for request in live])
        budget = max(request.deadline for request in live) - self._clock()

        logits: Optional[np.ndarray] = None
        service_s = 0.0
        degraded = False
        corner = entry.corner
        if breaker.allow():
            with self._state_lock:
                sequence = self._dispatch_seq
                self._dispatch_seq += 1
            try:
                programmed = self.cache.get(
                    entry.network,
                    entry.corner,
                    fingerprint=entry.fingerprint,
                    samples=len(live),
                    timeout=max(budget, 1e-4),
                )
                faultinject.fire("serve-infer", index=sequence)
                started = self._clock()
                logits = programmed.predict(x)
                service_s = self._clock() - started
                breaker.record_success()
            except Rejection as error:
                # Cache wait exceeded the batch budget: deadline semantics,
                # not a device fault — release the probe slot uncounted.
                breaker.abandon_probe()
                for request in live:
                    self._reject(request, error)
                return
            except Exception as error:
                breaker.record_failure()
                with self._state_lock:
                    self._counters["primary_faults"] += 1
                logger.warning(
                    "primary dispatch fault on %r (%s); falling back degraded",
                    entry.name,
                    error,
                )
        if logits is None:
            # Degraded mode: the ideal-corner fallback (breaker open, or the
            # primary just faulted).  Uninstrumented by design — see
            # repro.utils.faultinject.
            degraded = True
            corner = entry.fallback
            try:
                programmed = self.cache.get(
                    entry.network,
                    entry.fallback,
                    fingerprint=entry.fingerprint,
                    samples=len(live),
                    timeout=max(budget, 1e-4),
                )
                started = self._clock()
                logits = programmed.predict(x)
                service_s = self._clock() - started
            except Rejection as error:
                for request in live:
                    self._reject(request, error)
                return
            except Exception as error:  # pragma: no cover - defensive
                logger.error("degraded fallback failed on %r: %s", entry.name, error)
                rejection = FaultRejection(
                    f"primary and fallback paths both failed: {error}"
                )
                for request in live:
                    self._reject(request, rejection)
                return

        with self._state_lock:
            self._counters["batches"] += 1
            if self._service_ewma is None:
                self._service_ewma = service_s
            else:
                self._service_ewma += _EWMA_ALPHA * (service_s - self._service_ewma)
        done = self._clock()
        predictions = np.argmax(logits, axis=1)
        for slot, request in enumerate(live):
            if done > request.deadline:
                # Late result: never returned past its deadline.
                self._reject(
                    request,
                    DeadlineRejection("result ready after the deadline; discarded"),
                )
                continue
            request.handle._resolve(
                InferenceResponse(
                    prediction=int(predictions[slot]),
                    logits=logits[slot],
                    degraded=degraded,
                    corner=corner.label,
                    batch_size=len(live),
                    latency_s=done - request.submitted,
                    service_s=service_s,
                )
            )
            with self._state_lock:
                self._counters["completed"] += 1
                if degraded:
                    self._counters["degraded"] += 1

    def _reject(self, request: _PendingRequest, error: Rejection) -> None:
        request.handle._reject(error)
        with self._state_lock:
            self._counters[f"rejected.{error.code}"] += 1

    # ------------------------------------------------------------------ drain
    def close(self, *, drain: bool = True) -> None:
        """Stop the runtime; idempotent.

        ``drain=True`` (graceful): admission stops immediately, every queued
        request is still served (or deadline-rejected), workers exit once the
        queue is empty.  ``drain=False``: queued requests are rejected with
        :class:`DrainingRejection` instead of served.
        """
        with self._state_lock:
            if self._stopped:
                return
            self._draining = True
        if not drain:
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                self._reject(
                    request, DrainingRejection("runtime closed without draining")
                )
        for thread in self._threads:
            thread.join(timeout=self.config.drain_timeout_s)
        alive = [thread.name for thread in self._threads if thread.is_alive()]
        with self._state_lock:
            self._stopped = True
        if alive:
            raise ServingError(
                f"drain timed out: worker(s) {alive} still running after "
                f"{self.config.drain_timeout_s}s"
            )

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close(drain=exc_type is None)
