"""Keyed LRU cache of programmed networks with single-flight programming.

Programming a network onto simulated crossbars is the expensive, stateful
step of serving (differential split, write quantization, noise and fault
streams for every tile) — inference against the stored conductances is
cheap.  The cache keys programmed networks by
``(network fingerprint, HardwareConfig)`` — the same memoization idiom as
:class:`~repro.hardware.routing.RoutingAnalysisCache` — so repeated requests
for one deployment hit a dictionary lookup, while distinct device corners of
the same weights coexist as separate entries.

Robustness properties:

* **Single-flight programming** — concurrent misses on one key program the
  network exactly once: one caller becomes the leader and programs, the
  rest wait (always with a bounded timeout; the no-hang contract) and then
  read the cached entry.  A leader failure wakes the waiters, and the next
  caller retries leadership — a crash cannot wedge the key.
* **Drift re-programming** — with ``reprogram_after=T``, an entry that has
  served ``T`` samples is evicted and re-programmed on next access,
  modeling periodic conductance-refresh against drift.  Programming is a
  pure function of ``(fingerprint, config)`` (seeded streams), so the
  refresh restores bit-identical conductances — the cache policy is a
  correctness knob, guarded by tests, not just a performance one.
* **Bounded size** — at most ``maxsize`` programmed networks are held;
  least-recently-used entries are evicted.

The ``serve-program`` fault-injection site fires before each programming
call with the cache's programming sequence number as ``index``, so chaos
drills can fail or stall exactly the Nth programming deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.hardware.mapper import NetworkMapper
from repro.hardware.sim import (
    HardwareConfig,
    ProgrammedNetwork,
    network_fingerprint,
    program_network,
)
from repro.nn.network import Sequential
from repro.obs import NULL_OBS, Observability
from repro.serving.types import DeadlineRejection
from repro.utils import faultinject

#: Cache key: (network content fingerprint, device corner).
CacheKey = Tuple[str, HardwareConfig]

#: Follower poll interval while waiting on an unbounded (timeout=None) get;
#: every blocking wait in the serving layer is bounded by construction.
_WAIT_POLL_S = 0.05


@dataclass
class _Entry:
    programmed: ProgrammedNetwork
    served: int = 0
    programmed_at_seq: int = field(default=0)


class ProgrammedNetworkCache:
    """LRU of :class:`ProgrammedNetwork` keyed by ``(fingerprint, config)``."""

    def __init__(
        self,
        maxsize: int = 8,
        *,
        reprogram_after: Optional[int] = None,
        mapper: Optional[NetworkMapper] = None,
        clock: Callable[[], float] = time.monotonic,
        obs: Optional[Observability] = None,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if reprogram_after is not None and reprogram_after < 1:
            raise ValueError(f"reprogram_after must be >= 1, got {reprogram_after}")
        self.maxsize = int(maxsize)
        self.reprogram_after = reprogram_after
        self.mapper = mapper if mapper is not None else NetworkMapper()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._inflight: Dict[CacheKey, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.programs = 0
        self.reprograms = 0
        self.evictions = 0
        obs = obs if obs is not None else NULL_OBS
        self._metric = {
            name: obs.metrics.counter(f"serving.cache.{name}")
            for name in ("hits", "misses", "programs", "reprograms", "evictions")
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (hits/misses/programs/reprograms/evictions/size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "programs": self.programs,
                "reprograms": self.reprograms,
                "evictions": self.evictions,
                "size": len(self._entries),
            }

    def clear(self) -> None:
        """Drop every entry (waiters on in-flight programs are unaffected)."""
        with self._lock:
            self._entries.clear()

    # ----------------------------------------------------------------- get
    def get(
        self,
        network: Sequential,
        config: HardwareConfig,
        *,
        fingerprint: Optional[str] = None,
        samples: int = 1,
        timeout: Optional[float] = None,
        trace: Optional[Dict[str, object]] = None,
    ) -> ProgrammedNetwork:
        """The programmed network for ``(network, config)``, programming on miss.

        ``fingerprint`` skips re-hashing the parameters when the caller
        (the runtime registry) already knows it.  ``samples`` is how many
        samples this access will serve — it feeds the drift counter, so one
        call covers a whole micro-batch.  ``timeout`` bounds the total wait
        (including waiting on another thread's in-flight programming);
        exceeding it raises :class:`DeadlineRejection`.  ``trace`` is an
        out-param dict: the call records ``cache`` (``hit``/``miss``) and
        ``cache_waited`` (True when it waited on another thread's in-flight
        programming) into it for per-request trace records.
        """
        if fingerprint is None:
            fingerprint = network_fingerprint(network)
        key = (fingerprint, config)
        deadline = None if timeout is None else self._clock() + timeout
        waited = False
        while True:
            waiter = None
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    if (
                        self.reprogram_after is not None
                        and entry.served >= self.reprogram_after
                    ):
                        # Drift refresh: evict and fall through to re-program.
                        del self._entries[key]
                        self.reprograms += 1
                        self._metric["reprograms"].inc()
                    else:
                        entry.served += samples
                        self._entries.move_to_end(key)
                        self.hits += 1
                        self._metric["hits"].inc()
                        if trace is not None:
                            trace["cache"] = "hit"
                            trace["cache_waited"] = waited
                        return entry.programmed
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    sequence = self.programs
                    self.programs += 1
                    self._metric["programs"].inc()
                    break  # leader: program outside the lock
            waited = True
            remaining = _WAIT_POLL_S if deadline is None else deadline - self._clock()
            if remaining <= 0:
                if trace is not None:
                    trace["cache"] = "wait-timeout"
                    trace["cache_waited"] = True
                raise DeadlineRejection(
                    "timed out waiting for an in-flight programming of the "
                    "requested network"
                )
            waiter.wait(timeout=min(remaining, _WAIT_POLL_S))

        try:
            # Chaos hook: fail/stall exactly the Nth programming operation.
            faultinject.fire("serve-program", index=sequence)
            programmed = program_network(network, config, mapper=self.mapper)
        except BaseException:
            # Wake the waiters; the key is released so the next caller can
            # retry leadership instead of the miss being wedged forever.
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self._entries[key] = _Entry(
                programmed, served=samples, programmed_at_seq=sequence
            )
            self._entries.move_to_end(key)
            self.misses += 1
            self._metric["misses"].inc()
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._metric["evictions"].inc()
            self._inflight.pop(key).set()
        if trace is not None:
            trace["cache"] = "miss"
            trace["cache_waited"] = waited
        return programmed
