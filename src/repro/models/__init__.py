"""Reference network topologies evaluated in the paper (plus a test MLP)."""

from repro.models.convnet import (
    PAPER_CONVNET_RANKS,
    PAPER_CONVNET_SHAPES,
    ConvNetConfig,
    build_convnet,
)
from repro.models.lenet import (
    PAPER_LENET_RANKS,
    PAPER_LENET_SHAPES,
    LeNetConfig,
    build_lenet,
)
from repro.models.mlp import build_mlp, mlp_layer_shapes

__all__ = [
    "LeNetConfig",
    "build_lenet",
    "PAPER_LENET_SHAPES",
    "PAPER_LENET_RANKS",
    "ConvNetConfig",
    "build_convnet",
    "PAPER_CONVNET_SHAPES",
    "PAPER_CONVNET_RANKS",
    "build_mlp",
    "mlp_layer_shapes",
]
