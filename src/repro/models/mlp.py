"""Simple multi-layer-perceptron builder.

Not part of the paper's evaluation, but invaluable for fast unit tests and
for the quickstart example: the same rank-clipping / group-deletion pipeline
runs end-to-end on an MLP in a fraction of a second.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import Linear, ReLU
from repro.nn.network import Sequential
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


def build_mlp(
    input_dim: int,
    hidden_dims: Sequence[int],
    num_classes: int,
    *,
    rng: RngLike = None,
    name: str = "mlp",
) -> Sequential:
    """Build ``input → hidden… → classes`` with ReLU between dense layers.

    Layers are named ``fc1, fc2, …`` so the clipping/deletion helpers address
    them the same way as the LeNet/ConvNet layers.
    """
    check_positive_int(input_dim, "input_dim")
    check_positive_int(num_classes, "num_classes")
    if not hidden_dims:
        raise ConfigurationError("hidden_dims must contain at least one layer width")
    rng = as_rng(rng)
    network = Sequential(name=name)
    previous = input_dim
    for index, width in enumerate(hidden_dims, start=1):
        check_positive_int(width, f"hidden_dims[{index - 1}]")
        network.add(Linear(previous, width, name=f"fc{index}", rng=rng))
        network.add(ReLU(name=f"relu{index}"))
        previous = width
    network.add(Linear(previous, num_classes, name=f"fc{len(hidden_dims) + 1}", rng=rng))
    return network


def mlp_layer_shapes(
    input_dim: int, hidden_dims: Sequence[int], num_classes: int
) -> Dict[str, Tuple[int, int]]:
    """Weight-matrix shapes of the MLP built by :func:`build_mlp`."""
    shapes: Dict[str, Tuple[int, int]] = {}
    previous = input_dim
    for index, width in enumerate(hidden_dims, start=1):
        shapes[f"fc{index}"] = (width, previous)
        previous = width
    shapes[f"fc{len(hidden_dims) + 1}"] = (num_classes, previous)
    return shapes
