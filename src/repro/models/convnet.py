"""ConvNet model family (paper Table 1, CIFAR-10 experiments).

The paper's ConvNet follows the cuda-convnet "quick" CIFAR-10 model cited as
[1]: three 5×5 convolutions (32, 32, 64 filters) with padding 2, each
followed by 2×2 pooling, and a 10-way classifier.  On 32×32×3 inputs the
weight-matrix shapes are::

    conv1: 32 × 75     conv2: 32 × 800
    conv3: 64 × 800    fc1:   10 × 1024
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import AvgPool2D, Conv2D, Flatten, Linear, MaxPool2D, ReLU
from repro.nn.network import Sequential
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ConvNetConfig:
    """Topology parameters of the ConvNet family."""

    input_channels: int = 3
    image_size: int = 32
    conv1_filters: int = 32
    conv2_filters: int = 32
    conv3_filters: int = 64
    num_classes: int = 10
    kernel_size: int = 5
    padding: int = 2
    pool_size: int = 2

    def __post_init__(self):
        for field_name in (
            "input_channels",
            "image_size",
            "conv1_filters",
            "conv2_filters",
            "conv3_filters",
            "num_classes",
            "kernel_size",
            "pool_size",
        ):
            check_positive_int(getattr(self, field_name), field_name)
        if self.padding < 0:
            raise ConfigurationError(f"padding must be >= 0, got {self.padding}")
        if self.feature_map_size() < 1:
            raise ConfigurationError(
                f"image_size {self.image_size} is too small for three conv/pool stages"
            )

    # ------------------------------------------------------------ geometry
    def _stage_size(self, size: int) -> int:
        conv_out = size + 2 * self.padding - self.kernel_size + 1
        return conv_out // self.pool_size

    def feature_map_size(self) -> int:
        """Spatial size of the feature map entering the classifier."""
        size = self.image_size
        for _ in range(3):
            size = self._stage_size(size)
        return size

    def flattened_features(self) -> int:
        """Fan-in of the classifier (``conv3_filters · feature_map²``)."""
        return self.conv3_filters * self.feature_map_size() ** 2

    def layer_shapes(self) -> Dict[str, Tuple[int, int]]:
        """Weight-matrix shape ``(N, M)`` of every weighted layer."""
        k2 = self.kernel_size**2
        return {
            "conv1": (self.conv1_filters, self.input_channels * k2),
            "conv2": (self.conv2_filters, self.conv1_filters * k2),
            "conv3": (self.conv3_filters, self.conv2_filters * k2),
            "fc1": (self.num_classes, self.flattened_features()),
        }

    def clippable_layers(self) -> Tuple[str, ...]:
        """Layers subject to rank clipping (all but the final classifier)."""
        return ("conv1", "conv2", "conv3")

    # ------------------------------------------------------------ variants
    @classmethod
    def paper(cls) -> "ConvNetConfig":
        """The exact topology evaluated in the paper."""
        return cls()

    @classmethod
    def small(cls, *, image_size: int = 16, scale: float = 0.25) -> "ConvNetConfig":
        """A scaled-down ConvNet for fast tests and laptop-scale benchmarks."""
        if scale <= 0 or scale > 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        return cls(
            image_size=image_size,
            conv1_filters=max(2, int(round(32 * scale))),
            conv2_filters=max(2, int(round(32 * scale))),
            conv3_filters=max(2, int(round(64 * scale))),
            kernel_size=3,
            padding=1,
        )


def build_convnet(
    config: ConvNetConfig = ConvNetConfig(), *, rng: RngLike = None, name: str = "convnet"
) -> Sequential:
    """Construct the dense ConvNet network for ``config``.

    The original cuda-convnet recipe mixes max and average pooling; the first
    stage uses max pooling and the remaining stages average pooling, matching
    that recipe.
    """
    rng = as_rng(rng)
    network = Sequential(name=name)
    network.add(
        Conv2D(
            config.input_channels,
            config.conv1_filters,
            config.kernel_size,
            padding=config.padding,
            name="conv1",
            rng=rng,
        )
    )
    network.add(MaxPool2D(config.pool_size, name="pool1"))
    network.add(ReLU(name="relu1"))
    network.add(
        Conv2D(
            config.conv1_filters,
            config.conv2_filters,
            config.kernel_size,
            padding=config.padding,
            name="conv2",
            rng=rng,
        )
    )
    network.add(ReLU(name="relu2"))
    network.add(AvgPool2D(config.pool_size, name="pool2"))
    network.add(
        Conv2D(
            config.conv2_filters,
            config.conv3_filters,
            config.kernel_size,
            padding=config.padding,
            name="conv3",
            rng=rng,
        )
    )
    network.add(ReLU(name="relu3"))
    network.add(AvgPool2D(config.pool_size, name="pool3"))
    network.add(Flatten(name="flatten"))
    network.add(Linear(config.flattened_features(), config.num_classes, name="fc1", rng=rng))
    return network


#: Weight-matrix shapes of the paper's ConvNet, used by the closed-form benches.
PAPER_CONVNET_SHAPES: Dict[str, Tuple[int, int]] = ConvNetConfig.paper().layer_shapes()

#: Final ranks reported in Table 1 for ConvNet under rank clipping.
PAPER_CONVNET_RANKS: Dict[str, int] = {"conv1": 12, "conv2": 19, "conv3": 22}
