"""LeNet model family (paper Table 1, MNIST experiments).

The paper's LeNet is the Caffe LeNet variant: two 5×5 convolutions (20 and
50 filters) each followed by 2×2 max pooling, a 500-unit fully-connected
layer with ReLU and a 10-way classifier.  On 28×28 inputs the weight-matrix
shapes are::

    conv1: 20 × 25      conv2: 50 × 500
    fc1:   500 × 800    fc2:   10 × 500

:func:`build_lenet` constructs the dense network; scaled-down configurations
(for fast tests and laptop benchmarks) are available through
:meth:`LeNetConfig.small`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.nn.layers import Conv2D, Flatten, Linear, MaxPool2D, ReLU
from repro.nn.network import Sequential
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class LeNetConfig:
    """Topology parameters of the LeNet family."""

    input_channels: int = 1
    image_size: int = 28
    conv1_filters: int = 20
    conv2_filters: int = 50
    fc1_units: int = 500
    num_classes: int = 10
    kernel_size: int = 5
    pool_size: int = 2

    def __post_init__(self):
        for field_name in (
            "input_channels",
            "image_size",
            "conv1_filters",
            "conv2_filters",
            "fc1_units",
            "num_classes",
            "kernel_size",
            "pool_size",
        ):
            check_positive_int(getattr(self, field_name), field_name)
        if self.feature_map_size() < 1:
            raise ConfigurationError(
                f"image_size {self.image_size} is too small for kernel {self.kernel_size} "
                f"and pool {self.pool_size}"
            )

    # ------------------------------------------------------------ geometry
    def feature_map_size(self) -> int:
        """Spatial size of the feature map entering the first dense layer."""
        size = self.image_size
        size = (size - self.kernel_size + 1) // self.pool_size  # conv1 + pool1
        size = (size - self.kernel_size + 1) // self.pool_size  # conv2 + pool2
        return size

    def flattened_features(self) -> int:
        """Fan-in of fc1 (``conv2_filters · feature_map²``)."""
        return self.conv2_filters * self.feature_map_size() ** 2

    def layer_shapes(self) -> Dict[str, Tuple[int, int]]:
        """Weight-matrix shape ``(N, M)`` of every weighted layer."""
        fan1 = self.input_channels * self.kernel_size**2
        fan2 = self.conv1_filters * self.kernel_size**2
        return {
            "conv1": (self.conv1_filters, fan1),
            "conv2": (self.conv2_filters, fan2),
            "fc1": (self.fc1_units, self.flattened_features()),
            "fc2": (self.num_classes, self.fc1_units),
        }

    def clippable_layers(self) -> Tuple[str, ...]:
        """Layers subject to rank clipping (all but the final classifier)."""
        return ("conv1", "conv2", "fc1")

    # ------------------------------------------------------------ variants
    @classmethod
    def paper(cls) -> "LeNetConfig":
        """The exact topology evaluated in the paper."""
        return cls()

    @classmethod
    def small(cls, *, image_size: int = 16, scale: float = 0.25) -> "LeNetConfig":
        """A scaled-down LeNet for fast tests and laptop-scale benchmarks.

        Images smaller than 20 pixels use 3×3 kernels so two conv/pool stages
        still leave a non-empty feature map.
        """
        if scale <= 0 or scale > 1:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        return cls(
            image_size=image_size,
            conv1_filters=max(2, int(round(20 * scale))),
            conv2_filters=max(2, int(round(50 * scale))),
            fc1_units=max(8, int(round(500 * scale))),
            kernel_size=5 if image_size >= 20 else 3,
        )


def build_lenet(
    config: LeNetConfig = LeNetConfig(), *, rng: RngLike = None, name: str = "lenet"
) -> Sequential:
    """Construct the dense LeNet network for ``config``."""
    rng = as_rng(rng)
    network = Sequential(name=name)
    network.add(
        Conv2D(
            config.input_channels,
            config.conv1_filters,
            config.kernel_size,
            name="conv1",
            rng=rng,
        )
    )
    network.add(MaxPool2D(config.pool_size, name="pool1"))
    network.add(
        Conv2D(
            config.conv1_filters,
            config.conv2_filters,
            config.kernel_size,
            name="conv2",
            rng=rng,
        )
    )
    network.add(MaxPool2D(config.pool_size, name="pool2"))
    network.add(Flatten(name="flatten"))
    network.add(
        Linear(config.flattened_features(), config.fc1_units, name="fc1", rng=rng)
    )
    network.add(ReLU(name="relu1"))
    network.add(Linear(config.fc1_units, config.num_classes, name="fc2", rng=rng))
    return network


#: Weight-matrix shapes of the paper's LeNet, used by the closed-form benches.
PAPER_LENET_SHAPES: Dict[str, Tuple[int, int]] = LeNetConfig.paper().layer_shapes()

#: Final ranks reported in Table 1 for LeNet under rank clipping (ε such that
#: accuracy is preserved).  ``fc2`` is never clipped.
PAPER_LENET_RANKS: Dict[str, int] = {"conv1": 5, "conv2": 12, "fc1": 36}
