"""Tiling of weight matrices onto arrays of crossbars.

A :class:`TilingPlan` describes how a ``rows × cols`` crossbar matrix is cut
into a grid of ``tile_rows × tile_cols`` crossbars (Figure 4 of the paper).
Group connection deletion derives its row/column weight groups from exactly
this plan, and the routing estimator counts wires per tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import TilingError
from repro.hardware.crossbar import Crossbar, CrossbarInstance
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TilingPlan:
    """Placement of a matrix onto a grid of crossbars.

    Attributes
    ----------
    matrix_rows, matrix_cols:
        Dimensions of the crossbar matrix being implemented (inputs × outputs).
    tile_rows, tile_cols:
        Dimensions ``P × Q`` of a full tile.
    padded:
        True when the last tile row/column is only partially used (ceiling
        tiling fallback); always ``False`` for the paper's networks.
    name:
        Label used in reports, e.g. ``"fc1_u"``.
    """

    matrix_rows: int
    matrix_cols: int
    tile_rows: int
    tile_cols: int
    padded: bool = False
    name: str = ""

    def __post_init__(self):
        check_positive_int(self.matrix_rows, "matrix_rows")
        check_positive_int(self.matrix_cols, "matrix_cols")
        check_positive_int(self.tile_rows, "tile_rows")
        check_positive_int(self.tile_cols, "tile_cols")
        if not self.padded:
            if self.matrix_rows % self.tile_rows or self.matrix_cols % self.tile_cols:
                raise TilingError(
                    f"tile {self.tile_rows}x{self.tile_cols} does not evenly divide matrix "
                    f"{self.matrix_rows}x{self.matrix_cols} (mark the plan as padded instead)"
                )

    # ------------------------------------------------------------ geometry
    @property
    def grid_rows(self) -> int:
        """Number of tile rows in the crossbar array (``⌈N/P⌉``)."""
        return -(-self.matrix_rows // self.tile_rows)

    @property
    def grid_cols(self) -> int:
        """Number of tile columns in the crossbar array (``⌈K/Q⌉``)."""
        return -(-self.matrix_cols // self.tile_cols)

    @property
    def num_crossbars(self) -> int:
        """Total number of crossbars in the array."""
        return self.grid_rows * self.grid_cols

    @property
    def is_single_crossbar(self) -> bool:
        """True when the matrix fits in one crossbar."""
        return self.num_crossbars == 1

    def tile_shape(self) -> Tuple[int, int]:
        """The ``(P, Q)`` dimensions of a full tile."""
        return self.tile_rows, self.tile_cols

    def tile_bounds(self, tile_row: int, tile_col: int) -> Tuple[slice, slice]:
        """Return the (row slice, column slice) of matrix entries in a tile."""
        if not (0 <= tile_row < self.grid_rows and 0 <= tile_col < self.grid_cols):
            raise TilingError(
                f"tile index ({tile_row}, {tile_col}) outside grid "
                f"{self.grid_rows}x{self.grid_cols}"
            )
        row_start = tile_row * self.tile_rows
        col_start = tile_col * self.tile_cols
        row_stop = min(row_start + self.tile_rows, self.matrix_rows)
        col_stop = min(col_start + self.tile_cols, self.matrix_cols)
        return slice(row_start, row_stop), slice(col_start, col_stop)

    def iter_tiles(self) -> Iterator[Tuple[int, int, slice, slice]]:
        """Yield ``(tile_row, tile_col, row_slice, col_slice)`` for every tile."""
        for tile_row in range(self.grid_rows):
            for tile_col in range(self.grid_cols):
                row_slice, col_slice = self.tile_bounds(tile_row, tile_col)
                yield tile_row, tile_col, row_slice, col_slice

    def block_view(self, matrix: np.ndarray) -> Optional[np.ndarray]:
        """Zero-copy ``(grid_rows, tile_rows, grid_cols, tile_cols)`` tile view.

        Reshapes a ``(matrix_rows, matrix_cols)`` array so that
        ``view[r, :, c, :]`` is the block implemented by tile ``(r, c)``;
        per-tile statistics then reduce over axes 1/3 without any Python-level
        tile loop.  Returns ``None`` for padded plans, whose ragged edge tiles
        do not admit a rectangular view (callers fall back to
        :meth:`iter_tiles`).
        """
        if self.padded:
            return None
        return matrix.reshape(self.grid_rows, self.tile_rows, self.grid_cols, self.tile_cols)

    # ---------------------------------------------------------------- wires
    def dense_wire_count(self) -> int:
        """Routing wires of the fully-connected (undeleted) crossbar array.

        Each crossbar contributes one routing wire per (occupied) input row
        and one per (occupied) output column, so the dense total is
        ``Σ_tiles (tile_height + tile_width)``.
        """
        if not self.padded:
            return self.num_crossbars * (self.tile_rows + self.tile_cols)
        total = 0
        for _, _, row_slice, col_slice in self.iter_tiles():
            total += (row_slice.stop - row_slice.start) + (col_slice.stop - col_slice.start)
        return total

    def count_empty_tiles(self, weights: np.ndarray, zero_threshold: float = 0.0) -> int:
        """Number of tiles whose block holds no weight with ``|w| > threshold``.

        Empty crossbars can be removed from the design entirely (Figure 9).
        """
        weights = np.asarray(weights)
        if weights.shape != (self.matrix_rows, self.matrix_cols):
            raise TilingError(
                f"weights shape {weights.shape} does not match matrix "
                f"{self.matrix_rows}x{self.matrix_cols}"
            )
        live = np.abs(weights) > zero_threshold
        blocks = self.block_view(live)
        if blocks is not None:
            return int(np.count_nonzero(~blocks.any(axis=(1, 3))))
        return sum(
            1
            for _, _, row_slice, col_slice in self.iter_tiles()
            if not live[row_slice, col_slice].any()
        )

    @property
    def total_cells(self) -> int:
        """Number of memristor cells actually holding matrix entries."""
        return self.matrix_rows * self.matrix_cols

    @property
    def allocated_cells(self) -> int:
        """Number of cells across all crossbars (>= ``total_cells`` when padded)."""
        return self.num_crossbars * self.tile_rows * self.tile_cols

    # ------------------------------------------------------------ instances
    def instantiate(
        self, weights: Optional[np.ndarray] = None, technology=None
    ) -> List[CrossbarInstance]:
        """Materialise :class:`CrossbarInstance` objects, optionally with weights.

        ``weights`` must have shape ``(matrix_rows, matrix_cols)`` and is cut
        into per-tile blocks.
        """
        from repro.hardware.technology import PAPER_TECHNOLOGY

        technology = technology or PAPER_TECHNOLOGY
        if weights is not None:
            # Analytical area model: deliberately float64.  repro: ignore[dtype-literal]
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (self.matrix_rows, self.matrix_cols):
                raise TilingError(
                    f"weights shape {weights.shape} does not match matrix "
                    f"{self.matrix_rows}x{self.matrix_cols}"
                )
        instances = []
        for tile_row, tile_col, row_slice, col_slice in self.iter_tiles():
            rows = row_slice.stop - row_slice.start
            cols = col_slice.stop - col_slice.start
            block = None if weights is None else weights[row_slice, col_slice]
            instances.append(
                CrossbarInstance(
                    crossbar=Crossbar(rows, cols, technology),
                    grid_position=(tile_row, tile_col),
                    weights=block,
                )
            )
        return instances

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name or 'matrix'}: {self.matrix_rows}x{self.matrix_cols} -> "
            f"{self.grid_rows}x{self.grid_cols} tiles of {self.tile_rows}x{self.tile_cols}"
        )


def plan_tiling(
    matrix_rows: int,
    matrix_cols: int,
    *,
    library: CrossbarLibrary = PAPER_LIBRARY,
    name: str = "",
) -> TilingPlan:
    """Build a :class:`TilingPlan` using the library's MBC selection criteria."""
    tile_rows, tile_cols, padded = library.select_tile_shape(matrix_rows, matrix_cols)
    return TilingPlan(
        matrix_rows=matrix_rows,
        matrix_cols=matrix_cols,
        tile_rows=tile_rows,
        tile_cols=tile_cols,
        padded=padded,
        name=name,
    )


def plan_for_matrix(
    matrix: np.ndarray, *, library: CrossbarLibrary = PAPER_LIBRARY, name: str = ""
) -> TilingPlan:
    """Convenience wrapper: tiling plan for an explicit weight matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise TilingError(f"expected a 2-D matrix, got shape {matrix.shape}")
    return plan_tiling(matrix.shape[0], matrix.shape[1], library=library, name=name)
