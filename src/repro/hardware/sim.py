"""Device-level crossbar simulation: hardware-fidelity inference.

The analytical hardware layer (:mod:`repro.hardware.area`,
:mod:`repro.hardware.routing`) answers "how big is the deleted design?".
This module answers the question the paper's deployment story ultimately
hinges on: *what accuracy does a rank-clipped / group-deleted network
actually achieve when it executes on memristor crossbars* — with finite
conductance precision, analog programming/read noise, defective cells, and
ADC-quantized column currents.

Execution model
---------------
Every crossbar matrix of a network (as extracted by
:func:`~repro.hardware.mapper.extract_crossbar_matrices`, oriented
inputs × outputs) is *programmed* onto the tiles of its
:class:`~repro.hardware.tiling.TilingPlan`:

1. each weight is split into a **differential conductance pair**
   ``(g⁺, g⁻) = (max(w, 0), max(-w, 0)) / s`` with the per-matrix scale
   ``s = max|W|``, so one column is realised by two bitlines read
   differentially;
2. with ``bits=B`` each conductance snaps to one of ``2^B − 1`` uniformly
   spaced levels (write quantization);
3. programming non-idealities perturb the stored conductances —
   multiplicative (``program_noise``) and additive
   (``program_noise_additive``) Gaussian write errors, clamped at zero
   conductance;
4. a ``fault_rate`` fraction of cells is stuck: ``stuck_on_fraction`` of the
   faults at full conductance (``g = 1``), the rest at zero.  Fault
   placement is a pure function of ``(seed, matrix name)``;
5. ``read_noise`` models a static multiplicative read-path gain error per
   cell, drawn from its own deterministic stream.

Inference then swaps every weighted layer's matmul for simulated tile MVMs:
activations hit each tile row-block, per-tile column currents are quantized
by an auto-ranging ``adc_bits``-bit ADC, and the partial sums accumulate
digitally across tile rows.  Biases and all parameter-free layers (ReLU,
pooling, flatten, softmax at the loss) stay digital, as in mixed-signal
accelerators.

Determinism
-----------
Every stochastic draw comes from a stream keyed by
``(config.seed, matrix name, purpose)`` via SHA-256 — never from global
state — so results are bit-reproducible across processes, across the serial
and batched execution paths, and regardless of evaluation order.  Networks
simulated with equal seeds see the *same* noise streams (the controlled
comparison the experiment pipeline wants); pass distinct seeds for
independent device instances.  The ADC auto-ranges per conversion (per
input row and tile), so its quantization is invariant to batch chunking by
construction; across different ``batch_size`` choices only BLAS kernel
selection can perturb the underlying matmuls at the last-ulp level —
results are always bit-stable for a fixed chunking.

The ideal configuration (``HardwareConfig.ideal()``: infinite precision, no
noise, no faults, no ADC) reproduces :meth:`Sequential.predict` within
float64 round-off — guarded by ``tests/test_hardware_sim.py``.

The batched path (:func:`stacked_simulate_predict` /
:func:`simulate_evaluate`) mirrors :mod:`repro.nn.batched`: K
same-architecture networks share one im2col patch extraction per
convolution and ride one ``(K, …)`` stacked blocked matmul per tile
row-block, bit-identical per network to the serial path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.hardware.mapper import NetworkMapper, extract_crossbar_matrices
from repro.hardware.tiling import TilingPlan
from repro.nn import functional as F
from repro.nn.batched import architecture_signature
from repro.nn.dtype import as_float
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential

_WEIGHTED = (Linear, LowRankLinear, Conv2D, LowRankConv2D)

_MAX_BITS = 32


# ----------------------------------------------------------------- config
def _as_finite_float(name: str, value) -> float:
    """Coerce a config field to a finite float, failing with the typed error."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be a number, got {value!r}"
        ) from None
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    return value


@dataclass(frozen=True)
class HardwareConfig:
    """Non-ideality knobs of one simulated crossbar device corner.

    Attributes
    ----------
    bits:
        Write precision: conductances snap to ``2^bits − 1`` uniform levels.
        ``None`` keeps continuous (ideal) conductances.
    program_noise:
        Std of the multiplicative Gaussian write error,
        ``g ← g · (1 + σ·ε)``.
    program_noise_additive:
        Std of the additive Gaussian write error in normalized conductance
        units (``g ← g + σ·ε``); unlike the multiplicative term it also
        perturbs zero cells.
    read_noise:
        Std of the static per-cell multiplicative read-path gain error.
        Applied after faults (a stuck cell is still read through a noisy
        sense path).
    fault_rate:
        Probability that a physical cell is stuck.  Each half of a
        differential pair faults independently.
    stuck_on_fraction:
        Fraction of stuck cells pinned at full conductance (``g = 1``);
        the remainder are stuck off (``g = 0``).
    adc_bits:
        Resolution of the per-tile column-current ADC (signed,
        auto-ranging on the observed full scale).  ``None`` keeps analog
        partial sums.  The quantizer is sign-symmetric — ``2^B + 1`` codes
        spanning ``±full_scale`` — rather than the two's-complement
        ``[-2^(B−1), 2^(B−1)−1]`` range, trading one extra code for a
        bias-free transfer curve.
    seed:
        Root of every noise/fault stream (see module docstring).
    """

    bits: Optional[int] = None
    program_noise: float = 0.0
    program_noise_additive: float = 0.0
    read_noise: float = 0.0
    fault_rate: float = 0.0
    stuck_on_fraction: float = 0.5
    adc_bits: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        for name in ("bits", "adc_bits"):
            value = getattr(self, name)
            if value is not None:
                if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                    raise ConfigurationError(f"{name} must be an int or None, got {value!r}")
                if not (1 <= value <= _MAX_BITS):
                    raise ConfigurationError(
                        f"{name} must be in [1, {_MAX_BITS}], got {value}"
                    )
                object.__setattr__(self, name, int(value))
        for name in ("program_noise", "program_noise_additive", "read_noise"):
            value = _as_finite_float(name, getattr(self, name))
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
            object.__setattr__(self, name, value)
        for name in ("fault_rate", "stuck_on_fraction"):
            value = _as_finite_float(name, getattr(self, name))
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
            object.__setattr__(self, name, value)
        object.__setattr__(self, "seed", int(self.seed))

    @classmethod
    def ideal(cls, seed: int = 0) -> "HardwareConfig":
        """The no-op device: infinite precision, no noise, no faults, no ADC."""
        return cls(seed=seed)

    @property
    def is_ideal(self) -> bool:
        """True when simulation reduces to exact (float) crossbar arithmetic."""
        return (
            self.bits is None
            and self.program_noise == 0.0
            and self.program_noise_additive == 0.0
            and self.read_noise == 0.0
            and self.fault_rate == 0.0
            and self.adc_bits is None
        )

    @property
    def label(self) -> str:
        """Compact corner name used as the column key in results/artifacts."""
        if self.is_ideal:
            return "ideal"
        parts = []
        if self.bits is not None:
            parts.append(f"b{self.bits}")
        if self.program_noise:
            parts.append(f"pn{self.program_noise:g}")
        if self.program_noise_additive:
            parts.append(f"an{self.program_noise_additive:g}")
        if self.read_noise:
            parts.append(f"rn{self.read_noise:g}")
        if self.fault_rate:
            parts.append(f"f{self.fault_rate:g}")
            if self.stuck_on_fraction != 0.5:
                parts.append(f"so{self.stuck_on_fraction:g}")
        if self.adc_bits is not None:
            parts.append(f"adc{self.adc_bits}")
        if self.seed:
            parts.append(f"s{self.seed}")
        return "-".join(parts)

    # ------------------------------------------------------- serialization
    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (what experiment specs and artifacts embed)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "HardwareConfig":
        """Rebuild from :meth:`as_dict` output; unknown keys fail loudly."""
        payload = dict(payload or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown HardwareConfig field(s) {unknown}; valid fields: {sorted(known)}"
            )
        return cls(**payload)


# ------------------------------------------------------------ fingerprints
def network_fingerprint(network: Sequential) -> str:
    """Content hash of a network's architecture and parameter values.

    Two networks with equal fingerprints program to bit-identical
    conductances under any given :class:`HardwareConfig` (programming is a
    pure function of the weight values, the tiling plan, and the seeded
    noise streams), so the fingerprint — paired with the config — is a
    correct cache key for programmed networks.  The hash covers the
    architecture signature (layer types, configuration, parameter shapes)
    and every parameter's raw bytes; the network's display name is
    deliberately excluded.
    """
    digest = hashlib.sha256()
    digest.update(repr(architecture_signature(network)).encode("utf-8"))
    for parameter in network.parameters():
        data = np.ascontiguousarray(parameter.data)
        digest.update(str(data.dtype).encode("utf-8"))
        digest.update(repr(data.shape).encode("utf-8"))
        digest.update(data.tobytes())
    return digest.hexdigest()


# ------------------------------------------------------------- programming
def _stream(seed: int, name: str, purpose: str) -> np.random.Generator:
    """Deterministic per-(seed, matrix, purpose) generator (process-stable)."""
    digest = hashlib.sha256(f"{seed}|{name}|{purpose}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@dataclass
class ProgrammedMatrix:
    """One crossbar matrix after programming: the device-effective weights.

    ``weights`` is the weight-domain matrix the tiles realise,
    ``scale · (G⁺ − G⁻)`` with every configured write non-ideality folded
    in; the MVM kernels tile it according to ``plan``.
    """

    name: str
    plan: TilingPlan
    scale: float
    weights: np.ndarray = field(repr=False)
    stuck_on: int = 0
    stuck_off: int = 0

    @property
    def num_cells(self) -> int:
        """Physical memristor count (two cells per matrix entry)."""
        return 2 * self.plan.total_cells


def program_matrix(
    values: np.ndarray,
    plan: TilingPlan,
    config: HardwareConfig,
    *,
    name: str = "",
) -> ProgrammedMatrix:
    """Program a crossbar matrix into differential conductance pairs.

    Applies, in order: differential split and per-matrix normalization,
    B-bit write quantization, multiplicative/additive programming noise,
    stuck-at faults, and the static read-path gain error — each drawn from
    its own deterministic stream (see the module docstring).
    """
    values = as_float(values)
    if values.shape != (plan.matrix_rows, plan.matrix_cols):
        raise ShapeError(
            f"matrix shape {values.shape} does not match tiling plan "
            f"{plan.matrix_rows}x{plan.matrix_cols}"
        )
    name = name or plan.name or "matrix"
    scale = float(np.max(np.abs(values))) if values.size else 0.0
    if scale == 0.0:
        scale = 1.0
    g_plus = np.maximum(values, 0.0) / scale
    g_minus = np.maximum(-values, 0.0) / scale

    if config.bits is not None:
        levels = float(2**config.bits - 1)
        g_plus = np.round(g_plus * levels) / levels
        g_minus = np.round(g_minus * levels) / levels

    if config.program_noise or config.program_noise_additive:
        rng = _stream(config.seed, name, "program")
        if config.program_noise:
            g_plus = g_plus * (1.0 + config.program_noise * rng.standard_normal(g_plus.shape))
            g_minus = g_minus * (1.0 + config.program_noise * rng.standard_normal(g_minus.shape))
        if config.program_noise_additive:
            g_plus = g_plus + config.program_noise_additive * rng.standard_normal(g_plus.shape)
            g_minus = g_minus + config.program_noise_additive * rng.standard_normal(g_minus.shape)
        np.maximum(g_plus, 0.0, out=g_plus)
        np.maximum(g_minus, 0.0, out=g_minus)

    stuck_on = stuck_off = 0
    if config.fault_rate:
        rng = _stream(config.seed, name, "faults")
        for g in (g_plus, g_minus):
            stuck = rng.random(g.shape) < config.fault_rate
            pinned_on = rng.random(g.shape) < config.stuck_on_fraction
            on_mask = stuck & pinned_on
            off_mask = stuck & ~pinned_on
            g[on_mask] = 1.0
            g[off_mask] = 0.0
            stuck_on += int(on_mask.sum())
            stuck_off += int(off_mask.sum())

    if config.read_noise:
        rng = _stream(config.seed, name, "read")
        g_plus = g_plus * (1.0 + config.read_noise * rng.standard_normal(g_plus.shape))
        g_minus = g_minus * (1.0 + config.read_noise * rng.standard_normal(g_minus.shape))
        np.maximum(g_plus, 0.0, out=g_plus)
        np.maximum(g_minus, 0.0, out=g_minus)

    effective = (g_plus - g_minus) * scale
    return ProgrammedMatrix(
        name=name,
        plan=plan,
        scale=scale,
        weights=np.ascontiguousarray(effective),
        stuck_on=stuck_on,
        stuck_off=stuck_off,
    )


# -------------------------------------------------------------- MVM kernels
#: Target element count of one ADC partial chunk (~2 MB of float64): the
#: chunk stays cache-resident across the quantizer's in-place passes.  Chunk
#: boundaries cannot change results — the ADC ranges per conversion (row).
_ADC_CHUNK_ELEMENTS = 1 << 18

#: Ceiling on ``grid_rows · rows · cols`` (~16 MB of float64) below which the
#: ADC path materializes every tile row-block's partials in one batched
#:  matmul + one vectorized quantize call (the fat-kernel regime for the
#: many-tile fully-connected stages); above it, a chunked per-row-block loop
#: bounds memory.  Selection depends only on the plan and the batch, so the
#: serial and stacked paths always agree.
_ADC_BATCH_ELEMENTS = 1 << 21


def _adc_quantize(partials: np.ndarray, grid_cols: int, tile_cols: int, adc_bits: int) -> np.ndarray:
    """Per-conversion signed ADC over column currents, **in place**.

    ``partials`` is ``(..., cols)`` with the last axis covering ``grid_cols``
    tiles of ``tile_cols`` columns.  Each analog read converts one input
    row's currents through one tile's ADC, auto-ranging on that conversion's
    peak current — so the quantization step is
    ``max|currents| / 2^(adc_bits−1)`` per ``(row, tile)`` and every row is
    quantized independently (the quantization itself is invariant to batch
    chunking).  All-zero conversions pass through as zeros.
    """
    shape = partials.shape
    blocks = partials.reshape(shape[:-1] + (grid_cols, tile_cols))
    # max(x, -min(x)) == max|x| without materializing a full |x| temporary;
    # all further full-size work is three in-place passes (scale, round,
    # rescale) against per-conversion scalars.  The peak code is
    # ``fs · (levels/fs) = levels·(1 ± 2⁻⁵²)`` which rounds back to
    # ``levels`` exactly, so no clip pass is needed.
    full_scale = blocks.max(axis=-1, keepdims=True)
    negative_min = blocks.min(axis=-1, keepdims=True)
    np.negative(negative_min, out=negative_min)
    np.maximum(full_scale, negative_min, out=full_scale)
    levels = float(2 ** (adc_bits - 1))
    # Zero-current conversions hold only zeros; a unit dummy scale keeps them
    # exactly zero through the scale/round/rescale passes.
    np.copyto(full_scale, 1.0, where=full_scale <= 0)
    inverse_step = levels / full_scale
    step = full_scale
    step /= levels
    blocks *= inverse_step
    np.rint(blocks, out=blocks)
    blocks *= step
    return partials


def _mvm_tiles(x: np.ndarray, programmed: ProgrammedMatrix, config: HardwareConfig) -> np.ndarray:
    """Naive per-tile MVM loop (reference path; also handles padded plans)."""
    plan = programmed.plan
    weights = programmed.weights
    out = np.zeros((x.shape[0], plan.matrix_cols), dtype=np.result_type(x, weights))
    for _, _, row_slice, col_slice in plan.iter_tiles():
        partial = x[:, row_slice] @ weights[row_slice, col_slice]
        if config.adc_bits is not None:
            # One tile: a single column group for the shared quantizer.
            _adc_quantize(partial, 1, partial.shape[1], config.adc_bits)
        out[:, col_slice] += partial
    return out


def _mvm_blocked(x: np.ndarray, programmed: ProgrammedMatrix, config: HardwareConfig) -> np.ndarray:
    """Vectorized tile MVM.

    Without an ADC the digital accumulation over tile row-blocks is exact, so
    the whole array collapses to one GEMM against the device-effective matrix
    (every write non-ideality is already folded into the weights).  With an
    ADC, one GEMM per tile *row-block* produces that block's column currents
    for every tile column at once; the per-tile quantization is vectorized
    across the row, and partial sums accumulate digitally.
    """
    plan = programmed.plan
    if plan.padded:
        return _mvm_tiles(x, programmed, config)
    weights = programmed.weights
    if config.adc_bits is None:
        return x @ weights
    tile_rows = plan.tile_rows
    cols = plan.matrix_cols
    rows = x.shape[0]
    if plan.grid_rows * rows * cols <= _ADC_BATCH_ELEMENTS:
        x_blocks = x.reshape(rows, plan.grid_rows, tile_rows).transpose(1, 0, 2)
        w_blocks = weights.reshape(plan.grid_rows, tile_rows, cols)
        partials = np.matmul(x_blocks, w_blocks)  # (grid_rows, rows, cols)
        _adc_quantize(partials, plan.grid_cols, plan.tile_cols, config.adc_bits)
        return partials.sum(axis=0)
    out = np.empty((rows, cols), dtype=np.result_type(x, weights))
    chunk = max(32, _ADC_CHUNK_ELEMENTS // max(1, cols))
    for start in range(0, x.shape[0], chunk):
        x_chunk = x[start : start + chunk]
        accumulator = np.zeros((x_chunk.shape[0], cols), dtype=out.dtype)
        for block in range(plan.grid_rows):
            row_slice = slice(block * tile_rows, (block + 1) * tile_rows)
            partial = x_chunk[:, row_slice] @ weights[row_slice, :]
            accumulator += _adc_quantize(
                partial, plan.grid_cols, plan.tile_cols, config.adc_bits
            )
        out[start : start + chunk] = accumulator
    return out


def simulate_mvm(
    x: np.ndarray,
    programmed: ProgrammedMatrix,
    config: HardwareConfig,
    *,
    reference: bool = False,
) -> np.ndarray:
    """Simulated crossbar product ``x @ W_effective`` with per-tile ADC.

    ``reference=True`` forces the naive per-tile Python loop (the benchmark
    baseline); the default blocked path is numerically equivalent and is
    what both the serial and batched predictors use.
    """
    x = as_float(x)
    if x.ndim != 2 or x.shape[1] != programmed.plan.matrix_rows:
        raise ShapeError(
            f"expected activations of shape (rows, {programmed.plan.matrix_rows}), "
            f"got {x.shape}"
        )
    if reference:
        return _mvm_tiles(x, programmed, config)
    return _mvm_blocked(x, programmed, config)


def _stacked_mvm(
    x: np.ndarray,
    programmed: Sequence[ProgrammedMatrix],
    config: HardwareConfig,
    *,
    shared: bool,
    num_networks: int,
) -> np.ndarray:
    """K-network tile MVM: ``(rows, in)`` shared or ``(K·rows, in)`` super-batch.

    Returns the ``(K·rows, cols)`` super-batch.  Every per-network slice is
    bit-identical to :func:`simulate_mvm` on that network alone: the blocked
    matmul runs the same GEMM per ``(network, tile row)`` slice and the ADC
    sees the same per-tile currents.
    """
    plan = programmed[0].plan
    k = num_networks
    if plan.padded:
        per_rows = x.shape[0] if shared else x.shape[0] // k
        out = np.empty((k * per_rows, plan.matrix_cols), dtype=as_float(x).dtype)
        for slot in range(k):
            chunk = x if shared else x[slot * per_rows : (slot + 1) * per_rows]
            out[slot * per_rows : (slot + 1) * per_rows] = _mvm_tiles(
                chunk, programmed[slot], config
            )
        return out
    rows = x.shape[0] if shared else x.shape[0] // k
    cols = plan.matrix_cols
    x_ref = x if shared else x.reshape(k, rows, x.shape[1])
    if config.adc_bits is None:
        w_stack = np.stack([pm.weights for pm in programmed])  # (K, in, cols)
        out = np.matmul(x_ref, w_stack)  # broadcast over K when shared
        return out.reshape(k * rows, cols)
    # With an ADC, each network runs the exact serial kernel on its slice of
    # the super-batch: the batched win is the shared input-side prefix (one
    # im2col per convolution), not cross-network GEMM batching — stacking the
    # (K, grid_rows, rows, cols) partials would multiply the working set by K
    # for no arithmetic saving, and reusing the serial kernel keeps the
    # per-network bit-identity guarantee structural.
    out = np.empty((k * rows, cols), dtype=np.result_type(x, programmed[0].weights))
    for slot in range(k):
        x_slot = x if shared else x_ref[slot]
        out[slot * rows : (slot + 1) * rows] = _mvm_blocked(x_slot, programmed[slot], config)
    return out


# ------------------------------------------------------------ serial driver
class ProgrammedNetwork:
    """A network programmed onto simulated crossbar hardware.

    Programs every crossbar matrix once at construction (tiling plans come
    from ``mapper``, memoized per shape) and serves repeated
    :meth:`predict` calls against the stored conductances — mirroring a
    deployed accelerator, where inference never reprograms the arrays.
    """

    def __init__(
        self,
        network: Sequential,
        config: HardwareConfig,
        *,
        mapper: Optional[NetworkMapper] = None,
    ):
        self.network = network
        self.config = config
        self.mapper = mapper if mapper is not None else NetworkMapper()
        self.stages: Dict[str, Dict[str, ProgrammedMatrix]] = {}
        for matrix in extract_crossbar_matrices(network):
            plan = self.mapper.plan_matrix(matrix)
            self.stages.setdefault(matrix.layer_name, {})[matrix.stage] = program_matrix(
                matrix.values, plan, config, name=matrix.name
            )

    # -------------------------------------------------------------- stats
    def total_crossbars(self) -> int:
        """Number of physical crossbar tiles across all programmed matrices."""
        return sum(
            pm.plan.num_crossbars
            for stages in self.stages.values()
            for pm in stages.values()
        )

    def stuck_cells(self) -> Tuple[int, int]:
        """Total ``(stuck_on, stuck_off)`` cell counts across the design."""
        on = sum(pm.stuck_on for s in self.stages.values() for pm in s.values())
        off = sum(pm.stuck_off for s in self.stages.values() for pm in s.values())
        return on, off

    # ------------------------------------------------------------ forward
    def _simulate_weighted(self, layer, value: np.ndarray, reference: bool) -> np.ndarray:
        stages = self.stages[layer.name]
        config = self.config
        if isinstance(layer, (Conv2D, LowRankConv2D)):
            cols, out_h, out_w = F.im2col(
                value, layer.kernel_size, layer.kernel_size, layer.stride, layer.padding
            )
            if isinstance(layer, LowRankConv2D):
                mid = simulate_mvm(cols, stages["v"], config, reference=reference)
                out = simulate_mvm(mid, stages["u"], config, reference=reference)
            else:
                out = simulate_mvm(cols, stages["w"], config, reference=reference)
            if layer.bias is not None:
                out = out + layer.bias.data
            n = value.shape[0]
            return out.reshape(n, out_h, out_w, layer.out_channels).transpose(0, 3, 1, 2)
        if isinstance(layer, LowRankLinear):
            mid = simulate_mvm(value, stages["v"], config, reference=reference)
            out = simulate_mvm(mid, stages["u"], config, reference=reference)
        else:
            out = simulate_mvm(value, stages["w"], config, reference=reference)
        if layer.bias is not None:
            out = out + layer.bias.data
        return out

    def _forward(self, x: np.ndarray, reference: bool) -> np.ndarray:
        value = as_float(x)
        for layer in self.network:
            if isinstance(layer, _WEIGHTED):
                value = self._simulate_weighted(layer, value, reference)
            else:
                value = layer.forward(value)
        return value

    def predict(
        self,
        inputs: np.ndarray,
        *,
        batch_size: Optional[int] = None,
        reference: bool = False,
    ) -> np.ndarray:
        """Simulated inference logits (inference mode enforced and restored)."""
        saved = [layer.training for layer in self.network]
        self.network.eval()
        try:
            if batch_size is None:
                return self._forward(inputs, reference)
            chunks = [
                self._forward(inputs[start : start + batch_size], reference)
                for start in range(0, inputs.shape[0], batch_size)
            ]
            return np.concatenate(chunks, axis=0)
        finally:
            for layer, flag in zip(self.network, saved):
                layer.training = flag


def program_network(
    network: Sequential,
    config: HardwareConfig,
    *,
    mapper: Optional[NetworkMapper] = None,
) -> ProgrammedNetwork:
    """Program ``network`` onto simulated crossbars (see :class:`ProgrammedNetwork`)."""
    return ProgrammedNetwork(network, config, mapper=mapper)


def simulate_predict(
    network: Sequential,
    inputs: np.ndarray,
    config: HardwareConfig,
    *,
    mapper: Optional[NetworkMapper] = None,
    batch_size: Optional[int] = None,
    reference: bool = False,
) -> np.ndarray:
    """Hardware-fidelity inference logits of ``network`` under ``config``.

    One-shot convenience over :class:`ProgrammedNetwork`; reuse a programmed
    network (or :func:`simulate_evaluate`) when evaluating many batches.
    """
    programmed = ProgrammedNetwork(network, config, mapper=mapper)
    return programmed.predict(inputs, batch_size=batch_size, reference=reference)


# ----------------------------------------------------------- batched driver
def stacked_simulate_predict(
    networks: Sequence[Sequential],
    inputs: np.ndarray,
    config: HardwareConfig,
    *,
    mapper: Optional[NetworkMapper] = None,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Simulated logits ``(K, N, classes)`` of K same-architecture networks.

    The batched twin of :func:`simulate_predict`: the pre-divergence prefix
    and every convolution's im2col run once for all K networks, and each
    weighted stage executes one stacked blocked matmul against the K
    programmed weight stacks.  Per-network results are bit-identical to the
    serial path.
    """
    networks = list(networks)
    if not networks:
        raise ShapeError("stacked_simulate_predict needs at least one network")
    mapper = mapper if mapper is not None else NetworkMapper()
    programmed = [ProgrammedNetwork(network, config, mapper=mapper) for network in networks]
    return stacked_programmed_predict(programmed, inputs, batch_size=batch_size)


def stacked_programmed_predict(
    programmed: Sequence[ProgrammedNetwork],
    inputs: np.ndarray,
    *,
    batch_size: Optional[int] = None,
) -> np.ndarray:
    """Batched inference over networks that are **already programmed**.

    The deployment-shaped entry point: arrays are programmed once
    (:func:`program_network`) and inference reruns against the stored
    conductances — repeated evaluations pay no reprogramming.  All
    programmed networks must share one architecture and one
    :class:`HardwareConfig`.
    """
    programmed = list(programmed)
    if not programmed:
        raise ShapeError("stacked_programmed_predict needs at least one network")
    networks = [pn.network for pn in programmed]
    signatures = {architecture_signature(network) for network in networks}
    if len(signatures) != 1:
        raise ShapeError(
            "stacked simulation requires identical architectures; "
            "use simulate_evaluate to group mixed networks"
        )
    configs = {pn.config for pn in programmed}
    if len(configs) != 1:
        raise ShapeError("stacked simulation requires one shared HardwareConfig")
    config = programmed[0].config
    saved = [[layer.training for layer in network] for network in networks]
    for network in networks:
        network.eval()
    try:
        if batch_size is None:
            return _stacked_forward(networks, programmed, inputs, config)
        chunks = [
            _stacked_forward(networks, programmed, inputs[start : start + batch_size], config)
            for start in range(0, inputs.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=1)
    finally:
        for network, flags in zip(networks, saved):
            for layer, flag in zip(network, flags):
                layer.training = flag


def _stacked_forward(
    networks: Sequence[Sequential],
    programmed: Sequence[ProgrammedNetwork],
    x: np.ndarray,
    config: HardwareConfig,
) -> np.ndarray:
    k = len(networks)
    n = x.shape[0]
    value = as_float(x)
    shared = True
    for position, layer0 in enumerate(networks[0]):
        if not isinstance(layer0, _WEIGHTED):
            # Parameter-free layers are per-sample maps: the (K·N, …)
            # super-batch (or the still-shared batch) rides one call.
            value = layer0.forward(value)
            continue
        stage_maps = [
            pn.stages[net[position].name] for pn, net in zip(programmed, networks)
        ]
        bias0 = getattr(networks[0][position], "bias", None)
        bias_stack = (
            None
            if bias0 is None
            else np.stack([net[position].bias.data for net in networks])[:, None, :]
        )
        if isinstance(layer0, (Conv2D, LowRankConv2D)):
            per_rows = value.shape[0] if shared else value.shape[0] // k
            cols, out_h, out_w = F.im2col(
                value, layer0.kernel_size, layer0.kernel_size, layer0.stride, layer0.padding
            )
            if isinstance(layer0, LowRankConv2D):
                mid = _stacked_mvm(
                    cols, [s["v"] for s in stage_maps], config, shared=shared, num_networks=k
                )
                out = _stacked_mvm(
                    mid, [s["u"] for s in stage_maps], config, shared=False, num_networks=k
                )
            else:
                out = _stacked_mvm(
                    cols, [s["w"] for s in stage_maps], config, shared=shared, num_networks=k
                )
            if bias_stack is not None:
                rows = out.shape[0] // k
                out = (out.reshape(k, rows, out.shape[1]) + bias_stack).reshape(out.shape)
            value = out.reshape(
                k * per_rows, out_h, out_w, layer0.out_channels
            ).transpose(0, 3, 1, 2)
        else:
            if isinstance(layer0, LowRankLinear):
                mid = _stacked_mvm(
                    value, [s["v"] for s in stage_maps], config, shared=shared, num_networks=k
                )
                out = _stacked_mvm(
                    mid, [s["u"] for s in stage_maps], config, shared=False, num_networks=k
                )
            else:
                out = _stacked_mvm(
                    value, [s["w"] for s in stage_maps], config, shared=shared, num_networks=k
                )
            if bias_stack is not None:
                rows = out.shape[0] // k
                out = (out.reshape(k, rows, out.shape[1]) + bias_stack).reshape(out.shape)
            value = out
        shared = False
    if shared:  # pragma: no cover - extract_crossbar_matrices rejects this
        value = np.broadcast_to(value[None], (k,) + value.shape)
        return value.reshape(k, n, *value.shape[2:])
    logits = value.reshape(k, n, *value.shape[1:])
    if logits.ndim != 3:
        raise ShapeError(
            f"stacked simulation expected (K, N, classes) logits, got shape {logits.shape}"
        )
    return logits


def simulate_evaluate(
    networks: Sequence[Sequential],
    inputs: np.ndarray,
    targets: np.ndarray,
    config: HardwareConfig,
    *,
    mapper: Optional[NetworkMapper] = None,
    batch_size: Optional[int] = None,
) -> List[float]:
    """Simulated test accuracy of every network under one device corner.

    Networks are grouped by
    :func:`~repro.nn.batched.architecture_signature`; groups of two or more
    ride :func:`stacked_simulate_predict` (shared im2col, stacked tile
    MVMs), singletons the serial path.  Results are returned in input
    order.
    """
    networks = list(networks)
    if not networks:
        return []
    mapper = mapper if mapper is not None else NetworkMapper()
    groups: Dict[Tuple, List[int]] = {}
    for index, network in enumerate(networks):
        groups.setdefault(architecture_signature(network), []).append(index)
    accuracies: List[Optional[float]] = [None] * len(networks)
    for indices in groups.values():
        if len(indices) == 1:
            logits = simulate_predict(
                networks[indices[0]], inputs, config, mapper=mapper, batch_size=batch_size
            )
            accuracies[indices[0]] = accuracy(logits, targets)
            continue
        stacked = stacked_simulate_predict(
            [networks[i] for i in indices], inputs, config, mapper=mapper, batch_size=batch_size
        )
        for slot, index in enumerate(indices):
            accuracies[index] = accuracy(stacked[slot], targets)
    return [float(value) for value in accuracies]
