"""Crossbar primitives.

A :class:`Crossbar` is a ``rows × cols`` array of memristor cells; its area
is ``rows · cols · cell_area``.  A :class:`CrossbarInstance` additionally
carries the weight block it implements, which is what the group-connection
deletion analysis inspects to decide which input/output wires survive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import TilingError
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Crossbar:
    """A physical crossbar of ``rows`` wordlines by ``cols`` bitlines."""

    rows: int
    cols: int
    technology: TechnologyParameters = PAPER_TECHNOLOGY

    def __post_init__(self):
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")
        if (
            self.rows > self.technology.max_crossbar_rows
            or self.cols > self.technology.max_crossbar_cols
        ):
            raise TilingError(
                f"crossbar {self.rows}x{self.cols} exceeds the technology limit "
                f"{self.technology.max_crossbar_rows}x{self.technology.max_crossbar_cols}"
            )

    @property
    def num_cells(self) -> int:
        """Number of memristor cells in the crossbar."""
        return self.rows * self.cols

    @property
    def area_f2(self) -> float:
        """Crossbar cell area in units of ``F²``."""
        return self.num_cells * self.technology.cell_area_f2

    @property
    def area_nm2(self) -> float:
        """Crossbar cell area in ``nm²`` for the configured feature size."""
        return self.num_cells * self.technology.cell_area_nm2

    @property
    def num_io_wires(self) -> int:
        """Input + output wires this crossbar exposes to the routing fabric."""
        return self.rows + self.cols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.rows}x{self.cols}"


@dataclass
class CrossbarInstance:
    """One crossbar in a tiled matrix, together with the weights it stores.

    Attributes
    ----------
    crossbar:
        The physical crossbar geometry.
    grid_position:
        ``(tile_row, tile_col)`` position inside the tiling grid.
    weights:
        The weight block assigned to this crossbar (may be ``None`` when only
        geometry is being analysed).
    """

    crossbar: Crossbar
    grid_position: tuple
    weights: Optional[np.ndarray] = field(default=None, repr=False)

    def live_rows(self, zero_threshold: float = 0.0) -> int:
        """Number of input rows with at least one weight above ``zero_threshold``.

        Rows whose weights are all (near) zero correspond to deletable input
        routing wires.  With no weights attached, every row counts as live.
        """
        if self.weights is None:
            return self.crossbar.rows
        return int(np.sum(np.any(np.abs(self.weights) > zero_threshold, axis=1)))

    def live_cols(self, zero_threshold: float = 0.0) -> int:
        """Number of output columns with at least one weight above ``zero_threshold``."""
        if self.weights is None:
            return self.crossbar.cols
        return int(np.sum(np.any(np.abs(self.weights) > zero_threshold, axis=0)))

    def live_wires(self, zero_threshold: float = 0.0) -> int:
        """Routing wires that must be kept for this crossbar."""
        return self.live_rows(zero_threshold) + self.live_cols(zero_threshold)

    def is_empty(self, zero_threshold: float = 0.0) -> bool:
        """True when every weight in the block is (near) zero.

        An empty crossbar can be removed from the design entirely — the case
        the paper highlights in Figure 9.
        """
        if self.weights is None:
            return False
        return not bool(np.any(np.abs(self.weights) > zero_threshold))

    def density(self, zero_threshold: float = 0.0) -> float:
        """Fraction of cells holding a non-zero weight."""
        if self.weights is None:
            return 1.0
        return float(np.mean(np.abs(self.weights) > zero_threshold))
