"""Memristor-crossbar hardware model: technology, tiling, area, routing and
device-level simulation (:mod:`repro.hardware.sim`)."""

from repro.hardware.compaction import (
    CompactedCrossbar,
    CompactionReport,
    compact_matrix,
    compact_network,
    total_compacted_area_fraction,
)
from repro.hardware.area import (
    area_reduction_rank_bound,
    dense_layer_area,
    factorized_layer_area,
    layer_area_fraction,
    matrix_crossbar_area,
    network_area_fraction,
    per_layer_area_fractions,
)
from repro.hardware.crossbar import Crossbar, CrossbarInstance
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary, largest_divisor_at_most
from repro.hardware.mapper import CrossbarMatrix, NetworkMapper, extract_crossbar_matrices
from repro.hardware.report import (
    LayerHardwareReport,
    MatrixHardwareReport,
    NetworkHardwareReport,
)
from repro.hardware.routing import (
    RoutingAnalysisCache,
    RoutingReport,
    analyze_routing,
    count_remaining_wires,
    live_weight_mask,
    mask_fingerprint,
    routing_area,
    routing_area_from_lengths,
)
from repro.hardware.sim import (
    HardwareConfig,
    ProgrammedMatrix,
    ProgrammedNetwork,
    network_fingerprint,
    program_matrix,
    program_network,
    simulate_evaluate,
    simulate_mvm,
    simulate_predict,
    stacked_programmed_predict,
    stacked_simulate_predict,
)
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.hardware.tiling import TilingPlan, plan_for_matrix, plan_tiling

__all__ = [
    "TechnologyParameters",
    "PAPER_TECHNOLOGY",
    "Crossbar",
    "CrossbarInstance",
    "CrossbarLibrary",
    "PAPER_LIBRARY",
    "largest_divisor_at_most",
    "TilingPlan",
    "plan_tiling",
    "plan_for_matrix",
    "RoutingReport",
    "RoutingAnalysisCache",
    "analyze_routing",
    "count_remaining_wires",
    "live_weight_mask",
    "mask_fingerprint",
    "routing_area",
    "routing_area_from_lengths",
    "matrix_crossbar_area",
    "dense_layer_area",
    "factorized_layer_area",
    "layer_area_fraction",
    "network_area_fraction",
    "per_layer_area_fractions",
    "area_reduction_rank_bound",
    "CrossbarMatrix",
    "NetworkMapper",
    "extract_crossbar_matrices",
    "MatrixHardwareReport",
    "LayerHardwareReport",
    "NetworkHardwareReport",
    "HardwareConfig",
    "ProgrammedMatrix",
    "ProgrammedNetwork",
    "network_fingerprint",
    "program_matrix",
    "program_network",
    "simulate_evaluate",
    "simulate_mvm",
    "simulate_predict",
    "stacked_programmed_predict",
    "stacked_simulate_predict",
    "CompactedCrossbar",
    "CompactionReport",
    "compact_matrix",
    "compact_network",
    "total_compacted_area_fraction",
]
