"""Crossbar-area estimation.

Crossbar area of a weight matrix is the number of memristor cells it needs
times the per-cell area (``4F²``, Table 2).  For a factorized layer the two
stages ``U (N×K)`` and ``Vᵀ (K×M)`` together need ``NK + KM`` cells, versus
``NM`` for the dense layer, so the relative crossbar area of a clipped layer
is ``(NK + KM)/(NM)`` — the quantity behind the paper's headline
13.62 % (LeNet) and 51.81 % (ConvNet) numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.exceptions import RankError
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.utils.validation import check_positive_int


def matrix_crossbar_area(
    rows: int, cols: int, technology: TechnologyParameters = PAPER_TECHNOLOGY
) -> float:
    """Crossbar area (in ``F²``) of a dense ``rows × cols`` weight matrix."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    return rows * cols * technology.cell_area_f2


def dense_layer_area(
    n: int, m: int, technology: TechnologyParameters = PAPER_TECHNOLOGY
) -> float:
    """Crossbar area of an unfactorized layer with ``N`` outputs and ``M`` inputs."""
    return matrix_crossbar_area(n, m, technology)


def factorized_layer_area(
    n: int, m: int, rank: int, technology: TechnologyParameters = PAPER_TECHNOLOGY
) -> float:
    """Crossbar area of a rank-``K`` factorized layer (``U: N×K`` plus ``Vᵀ: K×M``)."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    rank = check_positive_int(rank, "rank")
    if rank > min(n, m):
        raise RankError(f"rank {rank} exceeds min(N, M) = {min(n, m)}")
    return matrix_crossbar_area(n, rank, technology) + matrix_crossbar_area(rank, m, technology)


def area_reduction_rank_bound(n: int, m: int) -> float:
    """The rank below which factorization saves area: ``K < NM/(N+M)`` (Eq. 2)."""
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    return n * m / (n + m)


def layer_area_fraction(n: int, m: int, rank: Optional[int]) -> float:
    """Relative crossbar area of a layer after clipping to ``rank``.

    ``rank=None`` means the layer is kept dense (fraction 1.0).
    """
    if rank is None:
        return 1.0
    return factorized_layer_area(n, m, rank) / dense_layer_area(n, m)


def network_area_fraction(
    layer_shapes: Mapping[str, Tuple[int, int]],
    ranks: Mapping[str, Optional[int]],
    technology: TechnologyParameters = PAPER_TECHNOLOGY,
) -> float:
    """Total crossbar-area fraction of a network after rank clipping.

    Parameters
    ----------
    layer_shapes:
        Mapping ``layer name -> (N, M)`` of every layer's weight-matrix shape.
    ranks:
        Mapping ``layer name -> rank`` (``None`` or a missing key keeps the
        layer dense).  The total includes unclipped layers, mirroring the
        paper's "total area includes the area of the last classifier layer".
    """
    if not layer_shapes:
        raise ValueError("layer_shapes must not be empty")
    original = 0.0
    clipped = 0.0
    for name, (n, m) in layer_shapes.items():
        original += dense_layer_area(n, m, technology)
        rank = ranks.get(name)
        if rank is None:
            clipped += dense_layer_area(n, m, technology)
        else:
            clipped += factorized_layer_area(n, m, rank, technology)
    return clipped / original


def per_layer_area_fractions(
    layer_shapes: Mapping[str, Tuple[int, int]],
    ranks: Mapping[str, Optional[int]],
) -> Dict[str, float]:
    """Per-layer relative crossbar areas (the bars in Figure 7)."""
    fractions = {}
    for name, (n, m) in layer_shapes.items():
        fractions[name] = layer_area_fraction(n, m, ranks.get(name))
    return fractions
