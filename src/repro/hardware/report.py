"""Hardware report dataclasses and text formatting.

The mapper produces a :class:`NetworkHardwareReport` composed of one
:class:`MatrixHardwareReport` per crossbar matrix (a dense layer contributes
one matrix, a factorized layer contributes its two stages).  Reports carry
everything the paper's tables/figures need: crossbar area, tile shapes,
dense and remaining routing wires, and empty-crossbar counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.routing import RoutingReport
from repro.hardware.tiling import TilingPlan


@dataclass(frozen=True)
class MatrixHardwareReport:
    """Hardware statistics of one crossbar matrix."""

    name: str
    layer_name: str
    plan: TilingPlan
    crossbar_area_f2: float
    routing: RoutingReport
    empty_crossbars: int = 0
    nonzero_fraction: float = 1.0

    @property
    def matrix_shape(self) -> tuple:
        """``(rows, cols)`` of the crossbar matrix."""
        return (self.plan.matrix_rows, self.plan.matrix_cols)

    @property
    def tile_shape(self) -> tuple:
        """``(P, Q)`` of the selected crossbar size."""
        return self.plan.tile_shape()

    @property
    def num_crossbars(self) -> int:
        """Number of crossbars the matrix occupies."""
        return self.plan.num_crossbars

    @property
    def wire_fraction(self) -> float:
        """Remaining routing wires / dense routing wires."""
        return self.routing.wire_fraction

    @property
    def routing_area_fraction(self) -> float:
        """Remaining routing area fraction (square of the wire fraction)."""
        return self.routing.area_fraction


@dataclass(frozen=True)
class LayerHardwareReport:
    """Hardware statistics of one network layer (one or two crossbar matrices)."""

    layer_name: str
    matrices: List[MatrixHardwareReport]

    @property
    def crossbar_area_f2(self) -> float:
        """Total crossbar area of the layer in ``F²``."""
        return sum(m.crossbar_area_f2 for m in self.matrices)

    @property
    def num_crossbars(self) -> int:
        """Total crossbars occupied by the layer."""
        return sum(m.num_crossbars for m in self.matrices)

    @property
    def dense_wires(self) -> int:
        """Routing wires of the undeleted layer."""
        return sum(m.routing.dense_wires for m in self.matrices)

    @property
    def remaining_wires(self) -> int:
        """Routing wires surviving group connection deletion."""
        return sum(m.routing.remaining_wires for m in self.matrices)

    @property
    def wire_fraction(self) -> float:
        """Remaining wires as a fraction of the dense count."""
        dense = self.dense_wires
        return self.remaining_wires / dense if dense else 0.0

    @property
    def routing_area_fraction(self) -> float:
        """Remaining routing area fraction of the layer."""
        return self.wire_fraction**2


@dataclass
class NetworkHardwareReport:
    """Hardware statistics of a whole network mapped onto crossbars."""

    network_name: str
    layers: List[LayerHardwareReport] = field(default_factory=list)

    # ------------------------------------------------------------- lookups
    def layer(self, name: str) -> LayerHardwareReport:
        """Return the report of the layer called ``name``."""
        for layer in self.layers:
            if layer.layer_name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in report for {self.network_name!r}")

    def matrices(self) -> List[MatrixHardwareReport]:
        """All matrix reports in network order."""
        return [m for layer in self.layers for m in layer.matrices]

    def matrix(self, name: str) -> MatrixHardwareReport:
        """Return the report of the crossbar matrix called ``name``."""
        for m in self.matrices():
            if m.name == name:
                return m
        raise KeyError(f"no matrix named {name!r} in report for {self.network_name!r}")

    # -------------------------------------------------------------- totals
    @property
    def total_crossbar_area_f2(self) -> float:
        """Total crossbar area of the network in ``F²``."""
        return sum(layer.crossbar_area_f2 for layer in self.layers)

    @property
    def total_crossbars(self) -> int:
        """Total number of crossbars in the design."""
        return sum(layer.num_crossbars for layer in self.layers)

    @property
    def total_dense_wires(self) -> int:
        """Total routing wires before any deletion."""
        return sum(layer.dense_wires for layer in self.layers)

    @property
    def total_remaining_wires(self) -> int:
        """Total routing wires after deletion."""
        return sum(layer.remaining_wires for layer in self.layers)

    def mean_layer_wire_fraction(self, layer_names: Optional[List[str]] = None) -> float:
        """Average of per-layer remaining-wire fractions (the paper's metric)."""
        layers = self.layers if layer_names is None else [self.layer(n) for n in layer_names]
        layers = [l for l in layers if l.dense_wires > 0]
        if not layers:
            return 0.0
        return sum(l.wire_fraction for l in layers) / len(layers)

    def mean_layer_routing_area_fraction(
        self, layer_names: Optional[List[str]] = None
    ) -> float:
        """Average of per-layer routing-area fractions (the paper's 8.1 % / 52.06 %)."""
        layers = self.layers if layer_names is None else [self.layer(n) for n in layer_names]
        layers = [l for l in layers if l.dense_wires > 0]
        if not layers:
            return 0.0
        return sum(l.routing_area_fraction for l in layers) / len(layers)

    def area_fraction_of(self, reference: "NetworkHardwareReport") -> float:
        """Crossbar area of this design relative to ``reference``."""
        ref_area = reference.total_crossbar_area_f2
        if ref_area == 0:
            raise ValueError("reference report has zero crossbar area")
        return self.total_crossbar_area_f2 / ref_area

    # ------------------------------------------------------------- display
    def format_table(self) -> str:
        """Human-readable per-matrix table (sizes, crossbars, wires, areas)."""
        header = (
            f"{'matrix':<16}{'shape':<12}{'tile':<10}{'xbars':>6}"
            f"{'area(F^2)':>12}{'wires':>8}{'remain':>8}{'wire%':>8}{'area%':>8}"
        )
        lines = [f"Hardware report for {self.network_name!r}", header, "-" * len(header)]
        for matrix in self.matrices():
            rows, cols = matrix.matrix_shape
            p, q = matrix.tile_shape
            lines.append(
                f"{matrix.name:<16}{f'{rows}x{cols}':<12}{f'{p}x{q}':<10}"
                f"{matrix.num_crossbars:>6}{matrix.crossbar_area_f2:>12.0f}"
                f"{matrix.routing.dense_wires:>8}{matrix.routing.remaining_wires:>8}"
                f"{100 * matrix.wire_fraction:>7.1f}%{100 * matrix.routing_area_fraction:>7.1f}%"
            )
        lines.append("-" * len(header))
        lines.append(
            f"total crossbar area: {self.total_crossbar_area_f2:.0f} F^2 over "
            f"{self.total_crossbars} crossbars; wires {self.total_remaining_wires}/"
            f"{self.total_dense_wires}"
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, dict]:
        """JSON-friendly nested dictionary of the per-matrix statistics."""
        payload: Dict[str, dict] = {}
        for matrix in self.matrices():
            payload[matrix.name] = {
                "layer": matrix.layer_name,
                "shape": list(matrix.matrix_shape),
                "tile": list(matrix.tile_shape),
                "crossbars": matrix.num_crossbars,
                "crossbar_area_f2": matrix.crossbar_area_f2,
                "dense_wires": matrix.routing.dense_wires,
                "remaining_wires": matrix.routing.remaining_wires,
                "wire_fraction": matrix.wire_fraction,
                "routing_area_fraction": matrix.routing_area_fraction,
                "empty_crossbars": matrix.empty_crossbars,
                "nonzero_fraction": matrix.nonzero_fraction,
            }
        return payload
