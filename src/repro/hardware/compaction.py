"""Crossbar compaction after group connection deletion.

The last paragraph of the paper's Section 4.2 observes two further area
savings that structural sparsity enables beyond routing-wire removal:

* a crossbar whose weights are *all* zero can be removed from the design
  entirely;
* a crossbar with some all-zero rows/columns can be replaced by a smaller but
  dense crossbar obtained by deleting those rows/columns.

This module quantifies both effects: for every tile of a (deleted) crossbar
matrix it computes the compacted crossbar dimensions (live rows × live
columns) and compares the compacted cell area against the original tiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.hardware.tiling import TilingPlan
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class CompactedCrossbar:
    """One crossbar tile before and after removing its all-zero rows/columns."""

    grid_position: tuple
    original_rows: int
    original_cols: int
    live_rows: int
    live_cols: int

    @property
    def is_removable(self) -> bool:
        """True when the crossbar holds no connection at all (Figure 9's empty blocks)."""
        return self.live_rows == 0 or self.live_cols == 0

    @property
    def original_cells(self) -> int:
        """Cell count of the original crossbar."""
        return self.original_rows * self.original_cols

    @property
    def compacted_cells(self) -> int:
        """Cell count of the dense crossbar that remains after compaction."""
        return self.live_rows * self.live_cols

    @property
    def cell_saving(self) -> int:
        """Cells saved by compacting this crossbar."""
        return self.original_cells - self.compacted_cells


@dataclass(frozen=True)
class CompactionReport:
    """Compaction summary of one tiled crossbar matrix."""

    name: str
    crossbars: List[CompactedCrossbar]
    technology: TechnologyParameters = PAPER_TECHNOLOGY

    @property
    def num_crossbars(self) -> int:
        """Number of crossbars in the original (uncompacted) array."""
        return len(self.crossbars)

    @property
    def removable_crossbars(self) -> int:
        """Crossbars that can be dropped from the design entirely."""
        return sum(1 for xbar in self.crossbars if xbar.is_removable)

    @property
    def original_area_f2(self) -> float:
        """Cell area of the original crossbar array (``F²``)."""
        return self.technology.cell_area_f2 * sum(x.original_cells for x in self.crossbars)

    @property
    def compacted_area_f2(self) -> float:
        """Cell area after removing empty crossbars and all-zero rows/columns."""
        return self.technology.cell_area_f2 * sum(x.compacted_cells for x in self.crossbars)

    @property
    def area_fraction(self) -> float:
        """Compacted area relative to the original array (1.0 when dense)."""
        original = self.original_area_f2
        if original == 0:
            return 0.0
        return self.compacted_area_f2 / original

    def format_summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.num_crossbars} crossbars, "
            f"{self.removable_crossbars} removable, compacted area "
            f"{self.area_fraction:.1%} of original"
        )


def compact_matrix(
    weights: np.ndarray,
    plan: TilingPlan,
    *,
    zero_threshold: float = 0.0,
    technology: TechnologyParameters = PAPER_TECHNOLOGY,
    name: str = "",
) -> CompactionReport:
    """Compute the compaction report of a weight matrix under a tiling plan.

    Parameters
    ----------
    weights:
        The crossbar-matrix values (inputs × outputs), typically after group
        connection deletion.
    plan:
        The tiling that assigns weights to crossbars.
    zero_threshold:
        Entries with ``|w| <= zero_threshold`` count as deleted.
    """
    # Analytical area model: deliberately float64.  repro: ignore[dtype-literal]
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (plan.matrix_rows, plan.matrix_cols):
        raise ShapeError(
            f"weights shape {weights.shape} does not match tiling plan "
            f"{plan.matrix_rows}x{plan.matrix_cols}"
        )
    check_non_negative(zero_threshold, "zero_threshold")
    crossbars: List[CompactedCrossbar] = []
    for tile_row, tile_col, row_slice, col_slice in plan.iter_tiles():
        block = np.abs(weights[row_slice, col_slice]) > zero_threshold
        crossbars.append(
            CompactedCrossbar(
                grid_position=(tile_row, tile_col),
                original_rows=row_slice.stop - row_slice.start,
                original_cols=col_slice.stop - col_slice.start,
                live_rows=int(np.sum(np.any(block, axis=1))),
                live_cols=int(np.sum(np.any(block, axis=0))),
            )
        )
    return CompactionReport(name=name or plan.name, crossbars=crossbars, technology=technology)


def compact_network(
    network,
    *,
    zero_threshold: float = 0.0,
    technology: TechnologyParameters = PAPER_TECHNOLOGY,
    library=None,
) -> List[CompactionReport]:
    """Compaction reports for every crossbar matrix of a network.

    This is the post-deletion counterpart of
    :meth:`repro.hardware.mapper.NetworkMapper.map_network`: it quantifies the
    extra crossbar-area reduction available by shrinking partially-empty
    crossbars, the effect the paper highlights with Figure 9.
    """
    from repro.hardware.library import PAPER_LIBRARY
    from repro.hardware.mapper import NetworkMapper, extract_crossbar_matrices

    mapper = NetworkMapper(
        technology=technology,
        library=library if library is not None else PAPER_LIBRARY,
        zero_threshold=zero_threshold,
    )
    reports = []
    for matrix in extract_crossbar_matrices(network):
        plan = mapper.plan_matrix(matrix)
        reports.append(
            compact_matrix(
                matrix.values,
                plan,
                zero_threshold=zero_threshold,
                technology=technology,
                name=matrix.name,
            )
        )
    return reports


def total_compacted_area_fraction(reports: Sequence[CompactionReport]) -> float:
    """Network-level compacted crossbar area relative to the uncompacted design."""
    original = sum(report.original_area_f2 for report in reports)
    if original == 0:
        raise ValueError("reports contain no crossbar area")
    compacted = sum(report.compacted_area_f2 for report in reports)
    return compacted / original
