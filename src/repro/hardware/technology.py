"""Technology parameters for the memristor-based crossbar (MBC) hardware model.

The defaults reproduce Table 2 of the paper:

* memristor cell area = ``4F²``,
* maximum crossbar size = ``64 × 64``,
* wire length between two memristors = ``2F``,

where ``F`` is the minimum feature size.  Areas are reported in units of
``F²`` by default so results are technology-node independent; an absolute
feature size (in nanometres) can be supplied to convert to ``nm²``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TechnologyParameters:
    """Device/technology constants used by the area and routing estimators.

    Attributes
    ----------
    cell_area_f2:
        Area of one memristor cell in units of ``F²`` (paper: 4).
    max_crossbar_rows, max_crossbar_cols:
        Largest reliable crossbar dimensions (paper: 64 × 64).
    cell_pitch_f:
        Wire length between two adjacent memristors, in ``F`` (paper: 2).
    metal_width_f, metal_spacing_f:
        Routing metal width ``W_m`` and spacing ``W_d`` in ``F`` (Eq. 7).
    routing_alpha:
        Scalar ``α`` of Eq. (8): routing area ``A_r = α · N_w²``.  Only
        *relative* routing areas are reported in the paper, so the default of
        1.0 simply makes ``A_r`` equal to ``N_w²``.
    feature_size_nm:
        Minimum feature size ``F`` in nanometres, used when absolute areas
        are requested.
    """

    cell_area_f2: float = 4.0
    max_crossbar_rows: int = 64
    max_crossbar_cols: int = 64
    cell_pitch_f: float = 2.0
    metal_width_f: float = 1.0
    metal_spacing_f: float = 1.0
    routing_alpha: float = 1.0
    feature_size_nm: float = 10.0

    def __post_init__(self):
        if self.cell_area_f2 <= 0:
            raise ConfigurationError(f"cell_area_f2 must be > 0, got {self.cell_area_f2}")
        if self.max_crossbar_rows < 1 or self.max_crossbar_cols < 1:
            raise ConfigurationError(
                "max crossbar dimensions must be >= 1, got "
                f"{self.max_crossbar_rows}x{self.max_crossbar_cols}"
            )
        if self.cell_pitch_f <= 0:
            raise ConfigurationError(f"cell_pitch_f must be > 0, got {self.cell_pitch_f}")
        if self.metal_width_f <= 0 or self.metal_spacing_f < 0:
            raise ConfigurationError("metal width must be > 0 and spacing >= 0")
        if self.routing_alpha <= 0:
            raise ConfigurationError(f"routing_alpha must be > 0, got {self.routing_alpha}")
        if self.feature_size_nm <= 0:
            raise ConfigurationError(f"feature_size_nm must be > 0, got {self.feature_size_nm}")

    # ------------------------------------------------------------ derived
    @property
    def cell_area_nm2(self) -> float:
        """Absolute area of one memristor cell in ``nm²``."""
        return self.cell_area_f2 * self.feature_size_nm**2

    @property
    def wire_pitch_f(self) -> float:
        """Routing pitch ``W_m + W_d`` in units of ``F`` (Eq. 7)."""
        return self.metal_width_f + self.metal_spacing_f

    def crossbar_cell_limit(self) -> int:
        """Maximum number of cells a single crossbar in the library may hold."""
        return self.max_crossbar_rows * self.max_crossbar_cols

    def fits_single_crossbar(self, rows: int, cols: int) -> bool:
        """True when a ``rows × cols`` matrix fits in one library crossbar."""
        return rows <= self.max_crossbar_rows and cols <= self.max_crossbar_cols


#: Parameters of Table 2, used as the library default everywhere.
PAPER_TECHNOLOGY = TechnologyParameters()
