"""Routing-wire counting and routing-area estimation (paper Eq. 7–8).

The paper estimates the routing area between crossbars as

``A_r = (W_m + W_d) · Σ_i L_i  ≈  α · N_w²``            (Eq. 7, 8)

where ``N_w`` is the number of routing wires.  Group connection deletion
reduces ``N_w`` by removing the input wire of every all-zero row group and
the output wire of every all-zero column group, so the relative routing area
of a layer is ``(N_w_remaining / N_w_dense)²``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.hardware.tiling import TilingPlan
from repro.utils.validation import check_non_negative


def count_remaining_wires(
    weights: np.ndarray, plan: TilingPlan, *, zero_threshold: float = 0.0
) -> int:
    """Count the routing wires that survive after deleting all-zero groups.

    For every crossbar tile, one input wire is needed per row that contains
    at least one weight with ``|w| > zero_threshold``, and one output wire per
    such column.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (plan.matrix_rows, plan.matrix_cols):
        raise ShapeError(
            f"weights shape {weights.shape} does not match tiling plan "
            f"{plan.matrix_rows}x{plan.matrix_cols}"
        )
    check_non_negative(zero_threshold, "zero_threshold")
    live = np.abs(weights) > zero_threshold
    blocks = plan.block_view(live)
    if blocks is not None:
        # (grid_rows, tile_rows, grid_cols, tile_cols): a row wire survives
        # when its tile row has any live weight (reduce over tile columns),
        # a column wire when its tile column does (reduce over tile rows).
        return int(np.count_nonzero(blocks.any(axis=3)) + np.count_nonzero(blocks.any(axis=1)))
    remaining = 0
    for _, _, row_slice, col_slice in plan.iter_tiles():
        block = live[row_slice, col_slice]
        remaining += int(np.sum(np.any(block, axis=1)))  # live input rows
        remaining += int(np.sum(np.any(block, axis=0)))  # live output columns
    return remaining


def routing_area(num_wires: int, technology: TechnologyParameters = PAPER_TECHNOLOGY) -> float:
    """Absolute routing-area estimate ``α · N_w²`` (Eq. 8)."""
    if num_wires < 0:
        raise ValueError(f"num_wires must be >= 0, got {num_wires}")
    return technology.routing_alpha * float(num_wires) ** 2


def routing_area_from_lengths(
    wire_lengths_f: np.ndarray, technology: TechnologyParameters = PAPER_TECHNOLOGY
) -> float:
    """Routing area from explicit wire lengths (Eq. 7): ``(W_m + W_d)·Σ L_i``.

    Lengths are expressed in units of ``F``; the result is in ``F²``.
    """
    wire_lengths_f = np.asarray(wire_lengths_f, dtype=np.float64)
    if np.any(wire_lengths_f < 0):
        raise ValueError("wire lengths must be non-negative")
    return float(technology.wire_pitch_f * wire_lengths_f.sum())


@dataclass(frozen=True)
class RoutingReport:
    """Routing statistics of one tiled matrix.

    ``wire_fraction`` is the paper's "% remained routing wires";
    ``area_fraction`` is its square (Eq. 8).
    """

    name: str
    dense_wires: int
    remaining_wires: int

    def __post_init__(self):
        if self.dense_wires < 0 or self.remaining_wires < 0:
            raise ValueError("wire counts must be non-negative")
        if self.remaining_wires > self.dense_wires:
            raise ValueError(
                f"remaining wires ({self.remaining_wires}) cannot exceed dense wires "
                f"({self.dense_wires})"
            )

    @property
    def deleted_wires(self) -> int:
        """Number of routing wires removed by group connection deletion."""
        return self.dense_wires - self.remaining_wires

    @property
    def wire_fraction(self) -> float:
        """Remaining wires as a fraction of the dense wire count."""
        if self.dense_wires == 0:
            return 0.0
        return self.remaining_wires / self.dense_wires

    @property
    def deleted_fraction(self) -> float:
        """Deleted wires as a fraction of the dense wire count (Figure 5's y-axis)."""
        return 1.0 - self.wire_fraction

    @property
    def area_fraction(self) -> float:
        """Remaining routing area relative to the dense design (Eq. 8)."""
        return self.wire_fraction**2


def analyze_routing(
    weights: np.ndarray,
    plan: TilingPlan,
    *,
    zero_threshold: float = 0.0,
    name: Optional[str] = None,
) -> RoutingReport:
    """Build a :class:`RoutingReport` for a weight matrix under a tiling plan."""
    dense = plan.dense_wire_count()
    remaining = count_remaining_wires(weights, plan, zero_threshold=zero_threshold)
    return RoutingReport(
        name=name if name is not None else plan.name,
        dense_wires=dense,
        remaining_wires=remaining,
    )
