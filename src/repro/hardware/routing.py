"""Routing-wire counting and routing-area estimation (paper Eq. 7–8).

The paper estimates the routing area between crossbars as

``A_r = (W_m + W_d) · Σ_i L_i  ≈  α · N_w²``            (Eq. 7, 8)

where ``N_w`` is the number of routing wires.  Group connection deletion
reduces ``N_w`` by removing the input wire of every all-zero row group and
the output wire of every all-zero column group, so the relative routing area
of a layer is ``(N_w_remaining / N_w_dense)²``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.hardware.tiling import TilingPlan
from repro.utils.validation import check_non_negative


def live_weight_mask(
    weights: np.ndarray, plan: TilingPlan, *, zero_threshold: float = 0.0
) -> np.ndarray:
    """Boolean mask of weights with ``|w| > zero_threshold``, shape-checked."""
    # Analytical area model: deliberately float64, independent of the nn
    # dtype policy.  repro: ignore[dtype-literal]
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (plan.matrix_rows, plan.matrix_cols):
        raise ShapeError(
            f"weights shape {weights.shape} does not match tiling plan "
            f"{plan.matrix_rows}x{plan.matrix_cols}"
        )
    check_non_negative(zero_threshold, "zero_threshold")
    return np.abs(weights) > zero_threshold


def _count_live_wires(live: np.ndarray, plan: TilingPlan) -> int:
    blocks = plan.block_view(live)
    if blocks is not None:
        # (grid_rows, tile_rows, grid_cols, tile_cols): a row wire survives
        # when its tile row has any live weight (reduce over tile columns),
        # a column wire when its tile column does (reduce over tile rows).
        return int(np.count_nonzero(blocks.any(axis=3)) + np.count_nonzero(blocks.any(axis=1)))
    remaining = 0
    for _, _, row_slice, col_slice in plan.iter_tiles():
        block = live[row_slice, col_slice]
        remaining += int(np.sum(np.any(block, axis=1)))  # live input rows
        remaining += int(np.sum(np.any(block, axis=0)))  # live output columns
    return remaining


def count_remaining_wires(
    weights: np.ndarray, plan: TilingPlan, *, zero_threshold: float = 0.0
) -> int:
    """Count the routing wires that survive after deleting all-zero groups.

    For every crossbar tile, one input wire is needed per row that contains
    at least one weight with ``|w| > zero_threshold``, and one output wire per
    such column.
    """
    return _count_live_wires(
        live_weight_mask(weights, plan, zero_threshold=zero_threshold), plan
    )


def mask_fingerprint(mask: np.ndarray) -> bytes:
    """Compact digest of a boolean mask (bit-packed, shape-sensitive).

    Two masks collide only when they agree on every entry (up to hash
    collision of SHA-1, which is negligible here), so the fingerprint can key
    memoized routing analyses across record steps whose live masks rarely
    change.
    """
    mask = np.ascontiguousarray(mask, dtype=bool)
    digest = hashlib.sha1(np.packbits(mask, axis=None).tobytes())
    digest.update(repr(mask.shape).encode())
    return digest.digest()


def routing_area(num_wires: int, technology: TechnologyParameters = PAPER_TECHNOLOGY) -> float:
    """Absolute routing-area estimate ``α · N_w²`` (Eq. 8)."""
    if num_wires < 0:
        raise ValueError(f"num_wires must be >= 0, got {num_wires}")
    return technology.routing_alpha * float(num_wires) ** 2


def routing_area_from_lengths(
    wire_lengths_f: np.ndarray, technology: TechnologyParameters = PAPER_TECHNOLOGY
) -> float:
    """Routing area from explicit wire lengths (Eq. 7): ``(W_m + W_d)·Σ L_i``.

    Lengths are expressed in units of ``F``; the result is in ``F²``.
    """
    # Analytical area model: deliberately float64.  repro: ignore[dtype-literal]
    wire_lengths_f = np.asarray(wire_lengths_f, dtype=np.float64)
    if np.any(wire_lengths_f < 0):
        raise ValueError("wire lengths must be non-negative")
    return float(technology.wire_pitch_f * wire_lengths_f.sum())


@dataclass(frozen=True)
class RoutingReport:
    """Routing statistics of one tiled matrix.

    ``wire_fraction`` is the paper's "% remained routing wires";
    ``area_fraction`` is its square (Eq. 8).
    """

    name: str
    dense_wires: int
    remaining_wires: int

    def __post_init__(self):
        if self.dense_wires < 0 or self.remaining_wires < 0:
            raise ValueError("wire counts must be non-negative")
        if self.remaining_wires > self.dense_wires:
            raise ValueError(
                f"remaining wires ({self.remaining_wires}) cannot exceed dense wires "
                f"({self.dense_wires})"
            )

    @property
    def deleted_wires(self) -> int:
        """Number of routing wires removed by group connection deletion."""
        return self.dense_wires - self.remaining_wires

    @property
    def wire_fraction(self) -> float:
        """Remaining wires as a fraction of the dense wire count."""
        if self.dense_wires == 0:
            return 0.0
        return self.remaining_wires / self.dense_wires

    @property
    def deleted_fraction(self) -> float:
        """Deleted wires as a fraction of the dense wire count (Figure 5's y-axis)."""
        return 1.0 - self.wire_fraction

    @property
    def area_fraction(self) -> float:
        """Remaining routing area relative to the dense design (Eq. 8)."""
        return self.wire_fraction**2


def analyze_routing(
    weights: np.ndarray,
    plan: TilingPlan,
    *,
    zero_threshold: float = 0.0,
    name: Optional[str] = None,
) -> RoutingReport:
    """Build a :class:`RoutingReport` for a weight matrix under a tiling plan."""
    dense = plan.dense_wire_count()
    remaining = count_remaining_wires(weights, plan, zero_threshold=zero_threshold)
    return RoutingReport(
        name=name if name is not None else plan.name,
        dense_wires=dense,
        remaining_wires=remaining,
    )


class RoutingAnalysisCache:
    """Memoized :func:`analyze_routing` keyed on (mask fingerprint, plan).

    Group-deletion record steps analyze the same matrices over and over with
    near-identical live masks: before deletion essentially every weight is
    non-zero (the mask never changes between records), and after deletion the
    pruning mask is frozen for the whole fine-tuning phase.  Hashing the
    bit-packed live mask is orders of magnitude cheaper than re-tiling and
    re-reducing the matrix, so repeated analyses collapse to a dictionary
    lookup.  Reports are value objects, so cache hits are observationally
    identical to fresh analyses.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._wires: "OrderedDict[tuple, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._wires)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for tests and benchmark reports)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._wires)}

    def clear(self) -> None:
        """Drop all memoized analyses and reset the counters."""
        self._wires.clear()
        self.hits = 0
        self.misses = 0

    # --------------------------------------------------- cross-process use
    def export_entries(self) -> List[Tuple[tuple, int]]:
        """Memoized ``(key, remaining_wires)`` pairs, oldest first.

        Entries are plain picklable values, so a sweep engine can ship them
        to worker processes (seeding each point task warm) and merge the
        workers' entries back into a parent cache.
        """
        return list(self._wires.items())

    def merge_entries(self, entries: Optional[Iterable[Tuple[tuple, int]]]) -> int:
        """Absorb entries exported from another cache; returns how many were new.

        Existing keys are kept (both caches computed the same deterministic
        analysis, so values can only agree); hit/miss counters are untouched
        — they describe this cache's own lookups, not the donor's.
        """
        added = 0
        for key, remaining in entries or ():
            if key not in self._wires:
                self._wires[key] = remaining
                added += 1
                if len(self._wires) > self.maxsize:
                    self._wires.popitem(last=False)
        return added

    def _plan_key(self, plan: TilingPlan) -> tuple:
        return (
            plan.matrix_rows,
            plan.matrix_cols,
            plan.tile_rows,
            plan.tile_cols,
            plan.padded,
        )

    def analyze(
        self,
        weights: np.ndarray,
        plan: TilingPlan,
        *,
        zero_threshold: float = 0.0,
        name: Optional[str] = None,
    ) -> RoutingReport:
        """Memoized equivalent of :func:`analyze_routing`."""
        live = live_weight_mask(weights, plan, zero_threshold=zero_threshold)
        key = (self._plan_key(plan), mask_fingerprint(live))
        remaining = self._wires.get(key)
        if remaining is None:
            self.misses += 1
            remaining = _count_live_wires(live, plan)
            self._wires[key] = remaining
            if len(self._wires) > self.maxsize:
                self._wires.popitem(last=False)
        else:
            self.hits += 1
            self._wires.move_to_end(key)
        return RoutingReport(
            name=name if name is not None else plan.name,
            dense_wires=plan.dense_wire_count(),
            remaining_wires=remaining,
        )
