"""Crossbar standard library and MBC size selection.

Section 4.2 of the paper defines the selection criteria used when a weight
matrix is implemented on crossbars from a standard library that contains all
crossbar shapes up to ``64 × 64``:

1. a ``N × K`` matrix with ``N ≤ 64`` and ``K ≤ 64`` is implemented in a
   single ``N × K`` crossbar;
2. otherwise it is implemented by an array of the largest available crossbars
   ``P × Q`` such that ``P`` divides ``N`` and ``Q`` divides ``K``.

The paper's networks always admit such divisors.  For generality this module
also supports a *padded* fallback (ceiling tiling with the maximum crossbar
size) that callers can opt into instead of receiving a
:class:`~repro.exceptions.TilingError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import TilingError
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.utils.validation import check_positive_int


def largest_divisor_at_most(value: int, limit: int) -> int:
    """Largest divisor of ``value`` that is ``<= limit`` (at least 1)."""
    value = check_positive_int(value, "value")
    limit = check_positive_int(limit, "limit")
    if value <= limit:
        return value
    for candidate in range(limit, 0, -1):
        if value % candidate == 0:
            return candidate
    return 1


@dataclass(frozen=True)
class CrossbarLibrary:
    """The standard library of crossbars available to the mapper.

    Attributes
    ----------
    technology:
        Technology constants providing the maximum crossbar dimensions.
    allow_padding:
        When a dimension exceeding the maximum has no divisor larger than
        ``min_divisor``, fall back to ceiling tiling with the maximum size
        instead of raising :class:`TilingError`.
    min_divisor:
        Smallest acceptable divisor-based tile dimension before the padded
        fallback (or error) kicks in.  A value of 2 rejects degenerate 1-wide
        tilings of prime dimensions.
    """

    technology: TechnologyParameters = PAPER_TECHNOLOGY
    allow_padding: bool = True
    min_divisor: int = 2

    @property
    def max_rows(self) -> int:
        """Maximum crossbar row count in the library."""
        return self.technology.max_crossbar_rows

    @property
    def max_cols(self) -> int:
        """Maximum crossbar column count in the library."""
        return self.technology.max_crossbar_cols

    def contains(self, rows: int, cols: int) -> bool:
        """Whether a ``rows × cols`` crossbar exists in the library."""
        return 1 <= rows <= self.max_rows and 1 <= cols <= self.max_cols

    # ----------------------------------------------------------- selection
    def _select_dimension(self, size: int, limit: int, label: str) -> Tuple[int, bool]:
        """Pick the tile extent for one dimension.

        Returns ``(tile_size, padded)`` where ``padded`` indicates the
        ceiling-tiling fallback was used.
        """
        if size <= limit:
            return size, False
        divisor = largest_divisor_at_most(size, limit)
        if divisor >= self.min_divisor:
            return divisor, False
        if self.allow_padding:
            return limit, True
        raise TilingError(
            f"dimension {label}={size} has no divisor in [{self.min_divisor}, {limit}] "
            "and padding is disabled"
        )

    def select_tile_shape(self, rows: int, cols: int) -> Tuple[int, int, bool]:
        """Return ``(tile_rows, tile_cols, padded)`` for a ``rows × cols`` matrix.

        Follows the paper's two selection criteria, with the optional padded
        fallback described in the class docstring.
        """
        rows = check_positive_int(rows, "rows")
        cols = check_positive_int(cols, "cols")
        if self.contains(rows, cols):
            return rows, cols, False
        tile_rows, padded_rows = self._select_dimension(rows, self.max_rows, "rows")
        tile_cols, padded_cols = self._select_dimension(cols, self.max_cols, "cols")
        return tile_rows, tile_cols, padded_rows or padded_cols


#: Library with the paper's Table 2 parameters.
PAPER_LIBRARY = CrossbarLibrary()
