"""Mapping of neural networks onto crossbar hardware.

:class:`NetworkMapper` walks a :class:`~repro.nn.network.Sequential`, extracts
the crossbar matrix (or matrices) of every weighted layer, tiles each matrix
onto the crossbar library, and assembles a
:class:`~repro.hardware.report.NetworkHardwareReport` with crossbar areas and
routing-wire statistics.

Orientation convention (documented in DESIGN.md): crossbar matrices are laid
out inputs × outputs, i.e. rows are wordlines driven by the layer inputs and
columns are bitlines producing the outputs (Figure 1 of the paper).  A dense
layer with weight ``W ∈ R^{N×M}`` therefore maps to ``Wᵀ (M×N)``; a
factorized layer maps to the two stages ``V (M×K)`` and ``Uᵀ (K×N)``.  Since
crossbar area and wire counts are invariant under transposition this differs
from the paper's Table 3 only by swapped tile labels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import MappingError
from repro.hardware.area import matrix_crossbar_area
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.hardware.report import (
    LayerHardwareReport,
    MatrixHardwareReport,
    NetworkHardwareReport,
)
from repro.hardware.routing import analyze_routing
from repro.hardware.technology import PAPER_TECHNOLOGY, TechnologyParameters
from repro.hardware.tiling import TilingPlan, plan_tiling
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.network import Sequential


@dataclass(frozen=True)
class CrossbarMatrix:
    """One matrix to be implemented on crossbars.

    Attributes
    ----------
    name:
        Report name, e.g. ``"fc1_u"`` (factor stage) or ``"conv1_w"`` (dense).
    layer_name:
        Name of the owning network layer.
    values:
        The matrix entries, oriented inputs × outputs.
    stage:
        ``"w"`` for a dense layer, ``"v"`` / ``"u"`` for the first / second
        factor stage of a low-rank layer.
    """

    name: str
    layer_name: str
    values: np.ndarray
    stage: str


def extract_crossbar_matrices(network: Sequential) -> List[CrossbarMatrix]:
    """Collect the crossbar matrices of every weighted layer in ``network``."""
    matrices: List[CrossbarMatrix] = []
    for layer in network:
        if isinstance(layer, (LowRankLinear, LowRankConv2D)):
            # Stage 1: V maps the layer inputs onto K intermediate lines.
            matrices.append(
                CrossbarMatrix(
                    name=f"{layer.name}_v",
                    layer_name=layer.name,
                    values=layer.v.data.copy(),
                    stage="v",
                )
            )
            # Stage 2: Uᵀ maps the K intermediate lines onto the outputs.
            matrices.append(
                CrossbarMatrix(
                    name=f"{layer.name}_u",
                    layer_name=layer.name,
                    values=layer.u.data.T.copy(),
                    stage="u",
                )
            )
        elif isinstance(layer, (Linear, Conv2D)):
            matrices.append(
                CrossbarMatrix(
                    name=f"{layer.name}_w",
                    layer_name=layer.name,
                    values=layer.weight_matrix.T.copy(),
                    stage="w",
                )
            )
    if not matrices:
        raise MappingError(
            f"network {network.name!r} has no weighted layers to map onto crossbars"
        )
    return matrices


class NetworkMapper:
    """Maps networks onto the crossbar library and produces hardware reports.

    Tiling plans are memoized per ``(matrix_rows, matrix_cols, library)``:
    tile selection depends only on the matrix shape and the library, so the
    sweep loops behind Figures 6–8 — which re-map networks whose layer shapes
    never change — plan each distinct matrix shape exactly once for the
    lifetime of the mapper.  Report assembly is fully vectorized (per-tile
    wire and emptiness statistics reduce over a zero-copy block view instead
    of materializing :class:`~repro.hardware.crossbar.CrossbarInstance`
    objects per tile).
    """

    def __init__(
        self,
        technology: TechnologyParameters = PAPER_TECHNOLOGY,
        library: Optional[CrossbarLibrary] = None,
        *,
        zero_threshold: float = 0.0,
    ):
        self.technology = technology
        self.library = library if library is not None else CrossbarLibrary(technology=technology)
        if zero_threshold < 0:
            raise MappingError(f"zero_threshold must be >= 0, got {zero_threshold}")
        self.zero_threshold = float(zero_threshold)
        self._plan_cache: Dict[Tuple[int, int, CrossbarLibrary], TilingPlan] = {}

    # ------------------------------------------------------------- planning
    def _plan_shape(self, rows: int, cols: int, name: str) -> TilingPlan:
        """Memoized tiling of a ``rows × cols`` matrix, relabelled to ``name``."""
        key = (rows, cols, self.library)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = plan_tiling(rows, cols, library=self.library, name=name)
            self._plan_cache[key] = plan
        if plan.name != name:
            plan = replace(plan, name=name)
        return plan

    def clear_plan_cache(self) -> None:
        """Forget memoized tiling plans (only needed if the library mutates)."""
        self._plan_cache.clear()

    def plan_matrix(self, matrix: CrossbarMatrix) -> TilingPlan:
        """Tile one crossbar matrix according to the library's selection rules."""
        rows, cols = matrix.values.shape
        return self._plan_shape(rows, cols, matrix.name)

    def plan_network(self, network: Sequential) -> Dict[str, TilingPlan]:
        """Return the tiling plan of every crossbar matrix in the network."""
        return {m.name: self.plan_matrix(m) for m in extract_crossbar_matrices(network)}

    # ------------------------------------------------------------ reporting
    def _report_matrix(self, matrix: CrossbarMatrix) -> MatrixHardwareReport:
        plan = self.plan_matrix(matrix)
        routing = analyze_routing(
            matrix.values, plan, zero_threshold=self.zero_threshold, name=matrix.name
        )
        empty = plan.count_empty_tiles(matrix.values, self.zero_threshold)
        nonzero = float(np.mean(np.abs(matrix.values) > self.zero_threshold))
        area = matrix_crossbar_area(
            matrix.values.shape[0], matrix.values.shape[1], self.technology
        )
        return MatrixHardwareReport(
            name=matrix.name,
            layer_name=matrix.layer_name,
            plan=plan,
            crossbar_area_f2=area,
            routing=routing,
            empty_crossbars=empty,
            nonzero_fraction=nonzero,
        )

    def map_network(self, network: Sequential) -> NetworkHardwareReport:
        """Produce the full hardware report of ``network``.

        All matrix reports are built first (hitting the memoized plans), then
        grouped into per-layer reports in one assembly pass.
        """
        matrices = extract_crossbar_matrices(network)
        by_layer: Dict[str, List[MatrixHardwareReport]] = {}
        for matrix in matrices:
            by_layer.setdefault(matrix.layer_name, []).append(self._report_matrix(matrix))
        layers = [
            LayerHardwareReport(layer_name=layer_name, matrices=reports)
            for layer_name, reports in by_layer.items()
        ]
        return NetworkHardwareReport(network_name=network.name, layers=layers)

    # ------------------------------------------------------------ shortcuts
    def crossbar_area(self, network: Sequential) -> float:
        """Total crossbar area (``F²``) of the network."""
        return self.map_network(network).total_crossbar_area_f2

    def area_fraction(self, network: Sequential, reference: Sequential) -> float:
        """Crossbar area of ``network`` relative to ``reference``."""
        return self.map_network(network).area_fraction_of(self.map_network(reference))

    def big_matrices(self, network: Sequential) -> List[str]:
        """Names of crossbar matrices that need more than one crossbar.

        These are the matrices the paper applies group connection deletion to
        ("we only delete the matrices of U and V whose dimensions are beyond
        the largest size of MBC").
        """
        names = []
        for matrix in extract_crossbar_matrices(network):
            if not self.plan_matrix(matrix).is_single_crossbar:
                names.append(matrix.name)
        return names
