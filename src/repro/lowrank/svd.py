"""Singular-value-decomposition factorization.

SVD is the alternative low-rank backend the paper evaluates ("when SVD is
applied, the whole crossbar area can also be reduced to 32.97 % / 55.64 %,
which indicates SVD is inferior to PCA").  The singular values are folded
into ``U`` so the factorization has the same ``U·Vᵀ`` form the crossbar
mapper expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import RankError
from repro.utils.validation import ensure_2d


@dataclass(frozen=True)
class SVDResult:
    """Result of a truncated SVD factorization ``W ≈ U·Vᵀ``."""

    u: np.ndarray
    v: np.ndarray
    singular_values: np.ndarray

    @property
    def rank(self) -> int:
        """Number of singular triplets kept."""
        return int(self.u.shape[1])

    def reconstruct(self) -> np.ndarray:
        """Return the rank-``K`` approximation ``U·Vᵀ``."""
        return self.u @ self.v.T


def svd_factorize(matrix: np.ndarray, rank: Optional[int] = None) -> SVDResult:
    """Truncated SVD of ``matrix``: ``U = U_k·Σ_k``, ``V = V_k``."""
    matrix = ensure_2d(matrix, "matrix")
    max_rank = min(matrix.shape)
    if rank is None:
        rank = max_rank
    if rank < 1 or rank > max_rank:
        raise RankError(f"rank must be in [1, {max_rank}], got {rank}")
    u_full, s, vt = np.linalg.svd(matrix, full_matrices=False)
    u = u_full[:, :rank] * s[:rank]
    v = vt[:rank, :].T
    return SVDResult(u=u, v=v, singular_values=s)


def svd_spectrum(matrix: np.ndarray) -> np.ndarray:
    """Return all singular values of ``matrix`` in descending order."""
    matrix = ensure_2d(matrix, "matrix")
    return np.linalg.svd(matrix, compute_uv=False)


def svd_reconstruction_error(matrix: np.ndarray, rank: int) -> float:
    """Relative squared reconstruction error of the rank-``rank`` truncated SVD.

    Equals ``Σ_{i>K} σ_i² / Σ_i σ_i²`` which is the SVD analogue of Eq. (3).
    """
    matrix = ensure_2d(matrix, "matrix")
    singular_values = svd_spectrum(matrix)
    if rank < 1 or rank > singular_values.size:
        raise RankError(f"rank must be in [1, {singular_values.size}], got {rank}")
    energies = singular_values**2
    total = float(energies.sum())
    if total == 0.0:
        return 0.0
    return float(energies[rank:].sum() / total)
