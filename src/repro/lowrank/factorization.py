"""Unified front-end over the PCA and SVD factorization backends.

Rank clipping only needs three operations, independent of the backend:

* compute the energy spectrum of a matrix,
* find the minimal rank meeting a reconstruction-error tolerance,
* factorize at a given rank into ``(U, Vᵀ-basis)``.

:class:`LowRankApproximator` packages those behind a ``method`` switch so
:class:`repro.core.rank_clipping.RankClipper` and the "Direct LRA" baseline
can be configured with ``method="pca"`` or ``method="svd"`` uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, RankError
from repro.lowrank.errors import minimal_rank, reconstruction_error_curve
from repro.lowrank.pca import covariance_eigendecomposition, pca_factorize
from repro.lowrank.svd import svd_factorize, svd_spectrum
from repro.nn.dtype import as_float
from repro.utils.validation import ensure_2d

_METHODS = ("pca", "svd")


@dataclass(frozen=True)
class Factorization:
    """A rank-``K`` factorization ``W ≈ U·Vᵀ`` with its backend spectrum."""

    u: np.ndarray
    v: np.ndarray
    spectrum: np.ndarray
    method: str

    @property
    def rank(self) -> int:
        """Rank ``K`` of the factorization."""
        return int(self.u.shape[1])

    def reconstruct(self) -> np.ndarray:
        """Dense approximation ``U·Vᵀ``."""
        return self.u @ self.v.T

    def relative_error(self, reference: np.ndarray) -> float:
        """Relative squared Frobenius error against ``reference``."""
        reference = as_float(reference)
        denom = float(np.linalg.norm(reference) ** 2)
        if denom == 0.0:
            return 0.0
        return float(np.linalg.norm(reference - self.reconstruct()) ** 2 / denom)


class LowRankApproximator:
    """Backend-agnostic low-rank approximation helper.

    Parameters
    ----------
    method:
        ``"pca"`` (default, the paper's main backend) or ``"svd"``.
    center:
        Mean-centre rows before PCA (Algorithm 1's literal form).  Only
        meaningful for ``method="pca"``; rank clipping uses ``center=False``
        so the factors directly represent the layer weights.
    """

    def __init__(self, method: str = "pca", *, center: bool = False):
        method = str(method).lower()
        if method not in _METHODS:
            raise ConfigurationError(
                f"unknown low-rank method {method!r}; expected one of {_METHODS}"
            )
        self.method = method
        self.center = bool(center)

    # ------------------------------------------------------------ spectrum
    def spectrum(self, matrix: np.ndarray) -> np.ndarray:
        """Energy spectrum of ``matrix`` (eigenvalues or squared singular values)."""
        matrix = ensure_2d(matrix, "matrix")
        if self.method == "pca":
            eigenvalues, _, _ = covariance_eigendecomposition(matrix, center=self.center)
            return eigenvalues
        singular_values = svd_spectrum(matrix)
        return singular_values**2

    def error_curve(self, matrix: np.ndarray) -> np.ndarray:
        """Reconstruction-error curve ``e_K`` for ``K = 1..M`` (Eq. 3)."""
        return reconstruction_error_curve(self.spectrum(matrix))

    def minimal_rank(self, matrix: np.ndarray, tolerance: float) -> int:
        """Smallest rank whose reconstruction error is at most ``tolerance``."""
        return minimal_rank(self.spectrum(matrix), tolerance)

    # ---------------------------------------------------------- factorizing
    def factorize(self, matrix: np.ndarray, rank: Optional[int] = None) -> Factorization:
        """Factorize ``matrix`` at ``rank`` (or full rank when ``None``)."""
        matrix = ensure_2d(matrix, "matrix")
        max_rank = min(matrix.shape)
        if rank is not None and (rank < 1 or rank > max_rank):
            raise RankError(f"rank must be in [1, {max_rank}], got {rank}")
        if self.method == "pca":
            result = pca_factorize(matrix, rank, center=self.center)
            return Factorization(
                u=result.u, v=result.v, spectrum=result.eigenvalues, method="pca"
            )
        result = svd_factorize(matrix, rank)
        return Factorization(
            u=result.u, v=result.v, spectrum=result.singular_values**2, method="svd"
        )

    def factorize_to_tolerance(
        self, matrix: np.ndarray, tolerance: float
    ) -> Tuple[Factorization, int]:
        """Factorize ``matrix`` at the minimal rank meeting ``tolerance``."""
        rank = self.minimal_rank(matrix, tolerance)
        return self.factorize(matrix, rank), rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LowRankApproximator(method={self.method!r}, center={self.center})"
