"""Principal-components-analysis factorization (paper Algorithm 1).

PCA here factorizes a weight matrix ``W ∈ R^{N×M}`` into ``U·Vᵀ`` where the
columns of ``V ∈ R^{M×K}`` are the top-``K`` eigenvectors of the covariance
matrix of the rows of ``W`` and ``U = W·V`` is the projection of the rows
onto that basis.

Two variants are provided:

* ``center=True`` follows Algorithm 1 literally (rows are mean-centred before
  the covariance is formed).  The returned factorization then approximates
  the *centred* matrix; the row mean ``µ`` is returned so callers that need an
  exact reconstruction can add ``1·µᵀ`` back.
* ``center=False`` (the default used by rank clipping) skips the centring, in
  which case PCA coincides with the truncated SVD of ``W`` and ``U·Vᵀ``
  approximates ``W`` directly — which is what a factorized layer computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import RankError
from repro.nn.dtype import as_float
from repro.utils.validation import ensure_2d


@dataclass(frozen=True)
class PCAResult:
    """Result of a PCA factorization.

    Attributes
    ----------
    u:
        Projected matrix ``U ∈ R^{N×K}``.
    v:
        Basis matrix ``V ∈ R^{M×K}`` (orthonormal columns).
    eigenvalues:
        All ``M`` covariance eigenvalues in descending order (not just the
        kept ``K``), used for reconstruction-error bookkeeping.
    mean:
        Row mean ``µ`` subtracted before projection (zeros when ``center=False``).
    center:
        Whether the factorization was computed on centred rows.
    """

    u: np.ndarray
    v: np.ndarray
    eigenvalues: np.ndarray
    mean: np.ndarray
    center: bool

    @property
    def rank(self) -> int:
        """Number of principal components kept."""
        return int(self.u.shape[1])

    def reconstruct(self) -> np.ndarray:
        """Return the approximation ``U·Vᵀ`` (+ mean when centred)."""
        approx = self.u @ self.v.T
        if self.center:
            approx = approx + self.mean
        return approx


def covariance_eigendecomposition(
    matrix: np.ndarray, *, center: bool = True
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eigen-decompose the row covariance of ``matrix``.

    Returns ``(eigenvalues, eigenvectors, mean)`` with eigenvalues sorted in
    descending order, eigenvectors as columns aligned with the eigenvalues and
    clamped to be non-negative (tiny negative values from round-off are set
    to zero).
    """
    matrix = ensure_2d(matrix, "matrix")
    n = matrix.shape[0]
    if center:
        mean = matrix.mean(axis=0, keepdims=True)
        centred = matrix - mean
    else:
        mean = np.zeros((1, matrix.shape[1]))
        centred = matrix
    denominator = max(n - 1, 1)
    covariance = centred.T @ centred / denominator
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    eigenvectors = eigenvectors[:, order]
    return eigenvalues, eigenvectors, mean


def pca_factorize(
    matrix: np.ndarray, rank: Optional[int] = None, *, center: bool = False
) -> PCAResult:
    """Factorize ``matrix ≈ U·Vᵀ`` keeping the top-``rank`` principal components.

    Parameters
    ----------
    matrix:
        The ``N×M`` weight matrix.
    rank:
        Number of components to keep; ``None`` keeps ``min(N, M)`` (lossless
        for ``center=False``).
    center:
        Follow Algorithm 1's mean-centring when ``True``.
    """
    matrix = ensure_2d(matrix, "matrix")
    n, m = matrix.shape
    max_rank = min(n, m)
    if rank is None:
        rank = max_rank
    if rank < 1 or rank > m:
        raise RankError(f"rank must be in [1, {m}], got {rank}")
    eigenvalues, eigenvectors, mean = covariance_eigendecomposition(matrix, center=center)
    v = eigenvectors[:, :rank]
    centred = matrix - mean if center else matrix
    u = centred @ v
    return PCAResult(u=u, v=v, eigenvalues=eigenvalues, mean=mean, center=center)


def pca_reconstruction_error(matrix: np.ndarray, rank: int, *, center: bool = False) -> float:
    """Relative squared reconstruction error of the rank-``rank`` PCA (Eq. 3)."""
    result = pca_factorize(matrix, rank, center=center)
    reference = as_float(matrix)
    if center:
        reference = reference - result.mean
        approx = result.u @ result.v.T
    else:
        approx = result.reconstruct()
    denom = float(np.linalg.norm(reference) ** 2)
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(reference - approx) ** 2 / denom)
