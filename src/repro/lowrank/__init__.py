"""Low-rank approximation backends (PCA / SVD) and reconstruction-error tools."""

from repro.lowrank.errors import (
    energy_retained,
    minimal_rank,
    reconstruction_error,
    reconstruction_error_curve,
)
from repro.lowrank.factorization import Factorization, LowRankApproximator
from repro.lowrank.pca import (
    PCAResult,
    covariance_eigendecomposition,
    pca_factorize,
    pca_reconstruction_error,
)
from repro.lowrank.svd import SVDResult, svd_factorize, svd_reconstruction_error, svd_spectrum

__all__ = [
    "PCAResult",
    "pca_factorize",
    "pca_reconstruction_error",
    "covariance_eigendecomposition",
    "SVDResult",
    "svd_factorize",
    "svd_spectrum",
    "svd_reconstruction_error",
    "reconstruction_error",
    "reconstruction_error_curve",
    "minimal_rank",
    "energy_retained",
    "Factorization",
    "LowRankApproximator",
]
