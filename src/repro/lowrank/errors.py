"""Reconstruction-error spectra and minimal-rank search (paper Eq. 3).

The paper's tolerable clipping error

``e_K = Σ_{m>K} λ_m / Σ_m λ_m``

is a function of the (PCA eigenvalue or squared-singular-value) spectrum
only.  These helpers convert a spectrum into the error curve and find the
smallest rank whose error stays at or below a tolerance — the inner search of
Algorithm 2.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import RankError
from repro.nn.dtype import as_float
from repro.utils.validation import check_fraction


def normalize_spectrum(spectrum: np.ndarray) -> np.ndarray:
    """Validate and sort an energy spectrum (eigenvalues / squared singular values)."""
    spectrum = as_float(spectrum).ravel()
    if spectrum.size == 0:
        raise RankError("spectrum must be non-empty")
    if np.any(spectrum < -1e-12):
        raise RankError("spectrum entries must be non-negative")
    spectrum = np.clip(spectrum, 0.0, None)
    return np.sort(spectrum)[::-1]


def reconstruction_error_curve(spectrum: np.ndarray) -> np.ndarray:
    """Return ``e_K`` for ``K = 1..len(spectrum)`` as an array of length ``len(spectrum)``.

    ``e_K`` is the fraction of spectral energy discarded when only the top
    ``K`` components are kept; ``e_len(spectrum) = 0`` by construction.  A
    zero spectrum yields an all-zero curve (any rank is exact).
    """
    spectrum = normalize_spectrum(spectrum)
    total = spectrum.sum()
    if total == 0.0:
        return np.zeros(spectrum.size)
    tail = np.cumsum(spectrum[::-1])[::-1]  # tail[k] = sum of spectrum[k:]
    errors = np.empty(spectrum.size)
    errors[:-1] = tail[1:] / total
    errors[-1] = 0.0
    return errors


def reconstruction_error(spectrum: np.ndarray, rank: int) -> float:
    """Return ``e_rank`` for a spectrum (Eq. 3)."""
    curve = reconstruction_error_curve(spectrum)
    if rank < 1 or rank > curve.size:
        raise RankError(f"rank must be in [1, {curve.size}], got {rank}")
    return float(curve[rank - 1])


def minimal_rank(spectrum: np.ndarray, tolerance: float) -> int:
    """Smallest ``K`` with ``e_K <= tolerance`` (always at least 1)."""
    check_fraction(tolerance, "tolerance", inclusive=True)
    curve = reconstruction_error_curve(spectrum)
    below = np.flatnonzero(curve <= tolerance + 1e-15)
    if below.size == 0:
        # Only possible through floating-point corner cases; the full rank is
        # always exact so fall back to it.
        return int(curve.size)
    return int(below[0]) + 1


def energy_retained(spectrum: np.ndarray, rank: int) -> float:
    """Fraction of spectral energy captured by the top-``rank`` components."""
    return 1.0 - reconstruction_error(spectrum, rank)
