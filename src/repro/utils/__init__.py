"""General-purpose utilities shared across the library.

The submodules are intentionally small and dependency-free:

* :mod:`repro.utils.rng` — deterministic random-number-generator handling.
* :mod:`repro.utils.validation` — argument checking helpers that raise the
  library's exception types with informative messages.
* :mod:`repro.utils.logging` — a light logging facade used by trainers and
  experiment runners.
* :mod:`repro.utils.serialization` — save/load of parameter dictionaries and
  experiment records to ``.npz`` / JSON files.
"""

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import as_rng, spawn_rng
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
    ensure_2d,
    ensure_4d,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "get_logger",
    "set_verbosity",
    "check_positive_int",
    "check_fraction",
    "check_probability",
    "ensure_2d",
    "ensure_4d",
]
