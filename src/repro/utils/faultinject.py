"""Deterministic fault injection: a seeded chaos hook for resilience testing.

The supervised execution layer (:mod:`repro.experiments.resilience`) and the
run store call :func:`fire` / :func:`corrupt_file` at well-defined *sites*;
when a :class:`FaultPlan` is active, matching faults trigger there.  Every
trigger decision is a pure function of ``(fault.seed, site, index, attempt)``
— no global RNG state, no wall clock — so an injected failure reproduces
bit-identically across processes, execution orders, and reruns.  This is what
lets the chaos test suites assert exact recovery behaviour ("the worker dies
at point 2, attempt 1, every time") instead of sampling flaky outcomes.

Activation is process-wide, via either

* :func:`install` / :func:`uninstall` (or the :func:`injected` context
  manager) — programmatic, used by the test suites; with the default
  ``fork`` start method, worker processes inherit the installed plan; or
* the ``REPRO_FAULTS`` environment variable holding the plan as JSON — the
  CLI ``--faults`` option sets it, and it survives ``spawn`` workers, which
  re-read the environment on import.

Sites and kinds
---------------
``site="point"`` fires in the per-point worker wrapper, right before the
point function runs (serial and process-pool paths alike):

* ``kind="raise"`` — raise :class:`InjectedFault` (a transient task crash);
* ``kind="hang"`` — sleep ``seconds`` (a stuck point, for timeout tests);
* ``kind="kill"`` — ``os._exit`` the process (an OOM-killed worker; breaks
  the pool on the parallel path — never inject this on a serial run);
* ``kind="interrupt"`` — raise ``KeyboardInterrupt`` (a mid-run Ctrl-C).

``site="store-save"`` fires after an artifact write; ``kind="corrupt"``
truncates and garbles the file (a torn write for quarantine tests).

``site="serve-program"`` and ``site="serve-infer"`` fire inside the serving
runtime (:mod:`repro.serving`): ``serve-program`` right before a network is
programmed into the :class:`~repro.serving.cache.ProgrammedNetworkCache`
(``index`` is the cache's programming sequence number), ``serve-infer``
right before a micro-batch is dispatched to the *primary* programmed network
(``index`` is the runtime's primary-dispatch sequence number).  The degraded
ideal-corner fallback path is deliberately uninstrumented, so chaos drills
can trip the circuit breaker without also breaking the fallback that proves
recovery.  ``kind="raise"`` and ``kind="hang"`` are the useful kinds here;
``kind="kill"`` would take down the whole serving process (all threads).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.exceptions import ConfigurationError

#: Environment variable holding the active plan as JSON (a list of fault
#: dicts, or a single dict).  Read lazily, once per process per value.
ENV_VAR = "REPRO_FAULTS"

#: Hook locations fire()/corrupt_file() expose.
SITES = ("point", "store-save", "serve-program", "serve-infer")

#: What a matching fault does at its site.
KINDS = ("raise", "hang", "kill", "interrupt", "corrupt")

#: Exit status of ``kind="kill"`` — distinctive in worker post-mortems.
KILL_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """The exception ``kind="raise"`` faults throw.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults simulate arbitrary task crashes, so they must not be mistaken
    for the library's own configuration errors (which the CLI maps to a
    different exit code).
    """


def _uniform(seed: int, site: str, index: Optional[int], attempt: Optional[int]) -> float:
    """Deterministic uniform draw in [0, 1) keyed by the trigger site."""
    key = f"{seed}|{site}|{index}|{attempt}".encode("utf-8")
    value = int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
    return value / float(2**64)


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: where it fires, when, and what it does.

    Attributes
    ----------
    site:
        Hook location, one of :data:`SITES`.
    kind:
        Effect at the site, one of :data:`KINDS` (``corrupt`` is only
        meaningful for ``store-save``).
    index:
        Point-index filter (the :class:`~repro.experiments.plan.PlanPoint`
        index); ``None`` matches every point.
    attempts:
        Attempt-number filter (1-based submission count, pool resubmits
        included); empty matches every attempt.  ``attempts=(1,)`` is the
        canonical "transient" fault: it fires once and the retry succeeds.
    probability:
        Trigger probability, drawn deterministically from
        ``(seed, site, index, attempt)`` — the same coordinates always make
        the same decision, in every process.
    seed:
        Seed of the probability stream.
    seconds:
        Sleep duration for ``kind="hang"``.
    message:
        Text carried by the raised exception / interrupt.
    """

    site: str = "point"
    kind: str = "raise"
    index: Optional[int] = None
    attempts: Tuple[int, ...] = ()
    probability: float = 1.0
    seed: int = 0
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self):
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; expected one of {list(SITES)}"
            )
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {list(KINDS)}"
            )
        object.__setattr__(
            self, "attempts", tuple(int(value) for value in self.attempts)
        )
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.seconds < 0:
            raise ConfigurationError(f"seconds must be >= 0, got {self.seconds}")

    def matches(
        self, site: str, index: Optional[int] = None, attempt: Optional[int] = None
    ) -> bool:
        """Whether this fault triggers at ``(site, index, attempt)``."""
        if site != self.site:
            return False
        if self.index is not None and index != self.index:
            return False
        if self.attempts and attempt not in self.attempts:
            return False
        if self.probability >= 1.0:
            return True
        return _uniform(self.seed, site, index, attempt) < self.probability

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view; round-trips through :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        payload = dict(payload)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown FaultSpec field(s) {unknown}; valid fields: {sorted(known)}"
            )
        return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        coerced = []
        for entry in self.faults:
            if isinstance(entry, FaultSpec):
                coerced.append(entry)
            elif isinstance(entry, Mapping):
                coerced.append(FaultSpec.from_dict(entry))
            else:
                raise ConfigurationError(
                    "FaultPlan entries must be FaultSpec objects or mappings, "
                    f"got {type(entry).__name__}"
                )
        object.__setattr__(self, "faults", tuple(coerced))

    def matching(
        self, site: str, index: Optional[int] = None, attempt: Optional[int] = None
    ) -> Tuple[FaultSpec, ...]:
        return tuple(
            fault for fault in self.faults if fault.matches(site, index, attempt)
        )

    def as_json(self) -> str:
        return json.dumps([fault.as_dict() for fault in self.faults])

    @classmethod
    def parse(cls, payload: Union[str, Mapping, "FaultPlan", list, tuple]) -> "FaultPlan":
        """Build a plan from JSON text, a dict, a list of dicts, or a plan."""
        if isinstance(payload, FaultPlan):
            return payload
        if isinstance(payload, str):
            try:
                payload = json.loads(payload)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"fault plan is not valid JSON: {error}"
                ) from None
        if isinstance(payload, Mapping):
            payload = [payload]
        if not isinstance(payload, (list, tuple)):
            raise ConfigurationError(
                "fault plan JSON must be a fault dict or a list of fault dicts"
            )
        return cls(faults=tuple(payload))


# ------------------------------------------------------------- process state
_installed: Optional[FaultPlan] = None
#: ``(env text, parsed plan)`` cache so active_plan() parses each value once.
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install(plan: Union[str, Mapping, FaultPlan, list, tuple]) -> FaultPlan:
    """Activate a fault plan process-wide (inherited by forked workers)."""
    global _installed
    _installed = FaultPlan.parse(plan)
    return _installed


def uninstall() -> None:
    """Deactivate any programmatically installed plan."""
    global _installed
    _installed = None


@contextmanager
def injected(plan: Union[str, Mapping, FaultPlan, list, tuple]) -> Iterator[FaultPlan]:
    """Context manager scoping an installed plan to a ``with`` block."""
    global _installed
    previous = _installed
    active = install(plan)
    try:
        yield active
    finally:
        _installed = previous


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect: installed programmatically, or from ``$REPRO_FAULTS``."""
    global _env_cache
    if _installed is not None:
        return _installed
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    cached_text, cached_plan = _env_cache
    if text != cached_text:
        _env_cache = (text, FaultPlan.parse(text))
    return _env_cache[1]


# ------------------------------------------------------------------ triggers
def fire(site: str, *, index: Optional[int] = None, attempt: Optional[int] = None) -> None:
    """Trigger every active fault matching ``(site, index, attempt)``.

    A no-op without an active plan — the hook costs one ``None`` check on
    the hot path.  ``corrupt`` faults are file-level and only act through
    :func:`corrupt_file`.
    """
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.matching(site, index, attempt):
        if fault.kind == "raise":
            raise InjectedFault(
                f"{fault.message} [site={site} index={index} attempt={attempt}]"
            )
        if fault.kind == "hang":
            time.sleep(fault.seconds)
        elif fault.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        elif fault.kind == "interrupt":
            raise KeyboardInterrupt(fault.message)


def corrupt_file(
    path: Union[str, Path], *, site: str = "store-save", index: Optional[int] = None
) -> bool:
    """Garble ``path`` in place when a matching ``corrupt`` fault is active.

    Truncates the file to half its length and appends raw bytes, simulating
    a torn write that both the JSON parser and the sha256 integrity check
    must catch.  Returns whether anything was corrupted.
    """
    plan = active_plan()
    if plan is None:
        return False
    corrupted = False
    for fault in plan.matching(site, index):
        if fault.kind != "corrupt":
            continue
        path = Path(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2] + b"\x00corrupt")
        corrupted = True
    return corrupted
