"""Serialization helpers for parameters and experiment records.

Networks expose their parameters as ``dict[str, np.ndarray]`` (see
:meth:`repro.nn.network.Sequential.state_dict`); experiment runners produce
nested dictionaries of plain Python scalars and lists.  These helpers persist
both to disk without pickling arbitrary objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


def save_state_dict(path: PathLike, state: Mapping[str, np.ndarray]) -> Path:
    """Save a flat ``name -> array`` mapping to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {key: np.asarray(value) for key, value in state.items()}
    np.savez_compressed(path, **arrays)
    return path


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a mapping previously saved with :func:`save_state_dict`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: np.array(data[key]) for key in data.files}


def jsonify(value: Any) -> Any:
    """Convert numpy scalars/arrays nested in ``value`` into JSON-safe types.

    Public because the run store also feeds this through ``json.dumps`` to
    compute payload-integrity checksums — the checksum must hash exactly the
    bytes :func:`save_json` would write.
    """
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


_jsonify = jsonify


def save_json(path: PathLike, payload: Mapping[str, Any]) -> Path:
    """Save a (possibly numpy-containing) mapping as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonify(dict(payload)), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON file previously written with :func:`save_json`."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        return json.load(handle)
