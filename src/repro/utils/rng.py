"""Deterministic random-number-generator helpers.

Every stochastic component in the library (weight initializers, data
generators, data loaders, dropout) accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  These helpers
normalise that input so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(int(seed))


def spawn_rng(rng: np.random.Generator, count: int = 1) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators from ``rng``.

    The children are derived from fresh integer seeds drawn from ``rng`` so
    the parent stream remains usable afterwards.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` suitable for seeding children."""
    return int(rng.integers(0, 2**63 - 1))


def derive_point_seed(base_seed: int, index: int) -> int:
    """Deterministic per-point seed for fan-out work (sweep points, workers).

    The seed is a pure function of ``(base_seed, index)`` — no shared
    generator state is consumed — so the same point gets the same seed
    whether the points run serially, in any order, or in separate processes.
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    sequence = np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(index),))
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


def temporary_seed(seed: Optional[int]):
    """Context manager that temporarily seeds numpy's *legacy* global RNG.

    Only used by a handful of tests that exercise third-party code relying on
    the global state; library code uses explicit generators instead.
    """

    class _SeedContext:
        def __enter__(self):
            self._state = np.random.get_state()
            if seed is not None:
                np.random.seed(seed)
            return self

        def __exit__(self, exc_type, exc, tb):
            np.random.set_state(self._state)
            return False

    return _SeedContext()
