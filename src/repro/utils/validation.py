"""Argument-validation helpers.

These raise the library's own exception types (:class:`~repro.exceptions.ShapeError`,
``ValueError``) with messages that name the offending argument, which keeps
validation in the public API terse and consistent.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value}")
    return value


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    value = float(value)
    if inclusive:
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not (0.0 < value < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Alias of :func:`check_fraction` for probability-valued arguments."""
    return check_fraction(value, name, inclusive=True)


def ensure_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Return ``array`` as a 2-D float array, raising :class:`ShapeError` otherwise."""
    # Function-level import: nn.layers/nn.optim import this module at load
    # time, so a top-level import of repro.nn.dtype would be circular.
    from repro.nn.dtype import as_float

    arr = as_float(array)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be a 2-D matrix, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    return arr


def ensure_4d(array: np.ndarray, name: str) -> np.ndarray:
    """Return ``array`` as a 4-D float array (NCHW), raising :class:`ShapeError` otherwise."""
    from repro.nn.dtype import as_float  # see ensure_2d: avoids an import cycle

    arr = as_float(array)
    if arr.ndim != 4:
        raise ShapeError(f"{name} must be a 4-D (N, C, H, W) array, got shape {arr.shape}")
    return arr


def check_same_length(a, b, name_a: str, name_b: str) -> None:
    """Validate that two sequences have the same length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} and {len(b)}"
        )
