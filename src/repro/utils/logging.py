"""A small logging facade.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace.  :func:`get_logger` returns namespaced child loggers
and :func:`set_verbosity` switches the whole library between silent, normal
and debug output without touching the root logger configuration of the host
application.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_HANDLER: Optional[logging.Handler] = None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the library logger, or a child logger named ``repro.<name>``."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: str = "info") -> None:
    """Configure library-wide log verbosity.

    Parameters
    ----------
    level:
        One of ``"silent"``, ``"warning"``, ``"info"`` or ``"debug"``.
    """
    global _HANDLER
    mapping = {
        "silent": logging.CRITICAL + 10,
        "warning": logging.WARNING,
        "info": logging.INFO,
        "debug": logging.DEBUG,
    }
    if level not in mapping:
        raise ValueError(f"unknown verbosity {level!r}; expected one of {sorted(mapping)}")
    logger = get_logger()
    logger.setLevel(mapping[level])
    if _HANDLER is None:
        _HANDLER = logging.StreamHandler()
        _HANDLER.setFormatter(logging.Formatter("[%(name)s] %(levelname)s: %(message)s"))
        logger.addHandler(_HANDLER)
        logger.propagate = False
