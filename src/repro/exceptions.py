"""Exception hierarchy for the Group Scissor reproduction library.

All errors raised intentionally by :mod:`repro` derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds invalid or inconsistent values."""


class ShapeError(ReproError):
    """Raised when an array has an incompatible shape for the requested operation."""


class RankError(ReproError):
    """Raised when a requested rank is outside the valid range for a matrix."""


class TilingError(ReproError):
    """Raised when a matrix cannot be tiled onto the crossbar library."""


class TrainingError(ReproError):
    """Raised when a training loop is driven with inconsistent inputs."""


class LayerError(ReproError):
    """Raised when a layer is constructed or used incorrectly."""


class MappingError(ReproError):
    """Raised when a network cannot be mapped onto crossbar hardware."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is given an invalid specification."""


class PointFailureError(ExperimentError):
    """Raised when sweep-point failures must abort the run.

    Emitted by the supervised execution layer in ``strict`` mode on the
    first failed point, and in the default mode when *every* pending point
    fails (a run that produced nothing new is a configuration problem, not a
    partial result).
    """


class PointTimeoutError(ExperimentError):
    """Raised when a sweep point exceeds its per-point wall-clock budget."""


class SchedulerError(ReproError):
    """Raised when the job queue or scheduler is driven incorrectly.

    Covers unknown/ambiguous job ids, submissions into a missing queue
    root, and invalid state transitions (e.g. cancelling a finished job).
    """


class RunInterrupted(ExperimentError):
    """Raised after a SIGINT-drained run has persisted its partial artifact.

    The supervised executor catches the first interrupt, drains in-flight
    points, journals their payloads, writes a partial artifact, and then
    raises this so callers (and the CLI, which maps it to exit code 1) know
    the run stopped early but the store is consistent.
    """
