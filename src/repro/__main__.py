"""``python -m repro`` entry point (see :mod:`repro.experiments.cli`).

Covers the one-shot verbs (``run``/``list``/``show``/``compare``/``bench``)
and the orchestration service (``serve-jobs``/``submit``/``status``/
``cancel``/``watch``, backed by :mod:`repro.scheduler`).
"""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
