"""Mini-batch iteration over datasets."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset, Dataset
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


class DataLoader:
    """Yield ``(inputs, targets)`` mini-batches from a dataset.

    Shuffling re-permutes the sample order at the start of every epoch using
    the loader's own generator, so two loaders created with the same seed
    produce identical batch sequences.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        *,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: RngLike = None,
    ):
        self.dataset = dataset
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = as_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _gather(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(self.dataset, ArrayDataset):
            return self.dataset.inputs[indices], self.dataset.targets[indices]
        samples = [self.dataset[int(i)] for i in indices]
        inputs = np.stack([s[0] for s in samples])
        targets = np.asarray([s[1] for s in samples])
        return inputs, targets

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if len(batch_idx) == 0:
                continue
            yield self._gather(batch_idx)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataLoader(batches={len(self)}, batch_size={self.batch_size}, "
            f"shuffle={self.shuffle})"
        )
