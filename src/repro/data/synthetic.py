"""Synthetic image-classification datasets.

The paper evaluates on MNIST (28×28×1, 10 classes) and CIFAR-10 (32×32×3,
10 classes).  Those datasets are not available offline, so this module
generates *structured, class-separable* synthetic substitutes with the same
geometry:

* every class owns a smooth random prototype pattern (a band-limited Gaussian
  field, fixed by the dataset seed), giving each class a distinct spatial
  structure a convolution can latch onto;
* each sample is its class prototype under a small random translation, a
  random per-sample contrast factor, and additive Gaussian pixel noise.

This preserves what the experiments need — networks of the paper's exact
topology can be trained to high accuracy, and pruning/clipping trades off
against a measurable accuracy — while being fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.nn.dtype import as_float
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_non_negative, check_positive_int


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Configuration for a synthetic image-classification dataset.

    Attributes
    ----------
    num_classes:
        Number of distinct classes.
    image_size:
        Spatial height and width of each (square) image.
    channels:
        Number of image channels (1 for the MNIST-like set, 3 for CIFAR-like).
    train_samples, test_samples:
        Number of samples in the train and test splits.
    noise_std:
        Standard deviation of the additive Gaussian pixel noise.
    max_shift:
        Maximum absolute translation (pixels) applied to each sample.
    smoothness:
        Size of the smoothing kernel used to band-limit the prototypes;
        larger values make prototypes smoother (easier).
    contrast_jitter:
        Relative range of the per-sample contrast factor.
    seed:
        Seed fixing the prototypes and all sampled perturbations.
    """

    num_classes: int = 10
    image_size: int = 28
    channels: int = 1
    train_samples: int = 2000
    test_samples: int = 500
    noise_std: float = 0.25
    max_shift: int = 2
    smoothness: int = 5
    contrast_jitter: float = 0.2
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range fields."""
        check_positive_int(self.num_classes, "num_classes")
        check_positive_int(self.image_size, "image_size")
        check_positive_int(self.channels, "channels")
        check_positive_int(self.train_samples, "train_samples")
        check_positive_int(self.test_samples, "test_samples")
        check_non_negative(self.noise_std, "noise_std")
        check_non_negative(self.contrast_jitter, "contrast_jitter")
        check_positive_int(self.smoothness, "smoothness")
        if self.max_shift < 0:
            raise ValueError(f"max_shift must be >= 0, got {self.max_shift}")
        if self.max_shift >= self.image_size:
            raise ValueError(
                f"max_shift must be smaller than image_size, got {self.max_shift} "
                f">= {self.image_size}"
            )


def _smooth(field: np.ndarray, kernel_size: int) -> np.ndarray:
    """Box-smooth a 2-D field with wrap-around padding (cheap band limiting)."""
    if kernel_size <= 1:
        return field
    kernel = np.ones(kernel_size) / kernel_size
    out = np.apply_along_axis(
        lambda row: np.convolve(np.concatenate([row, row[: kernel_size - 1]]), kernel, "valid"),
        1,
        field,
    )
    out = np.apply_along_axis(
        lambda col: np.convolve(np.concatenate([col, col[: kernel_size - 1]]), kernel, "valid"),
        0,
        out,
    )
    return out


def make_prototypes(config: SyntheticImageConfig, rng: np.random.Generator) -> np.ndarray:
    """Generate one prototype image per class: shape ``(classes, C, H, W)``."""
    size = config.image_size
    prototypes = np.empty((config.num_classes, config.channels, size, size))
    for cls in range(config.num_classes):
        for channel in range(config.channels):
            field = rng.normal(size=(size, size))
            field = _smooth(field, config.smoothness)
            # Normalize each prototype channel to zero mean, unit variance so
            # classes differ in *structure* rather than overall brightness.
            field = (field - field.mean()) / (field.std() + 1e-12)
            prototypes[cls, channel] = field
    return prototypes


def _shift_image(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate a CHW image by (dy, dx) pixels with zero fill."""
    shifted = np.zeros_like(image)
    h, w = image.shape[1], image.shape[2]
    src_y = slice(max(0, -dy), min(h, h - dy))
    dst_y = slice(max(0, dy), min(h, h + dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_x = slice(max(0, dx), min(w, w + dx))
    shifted[:, dst_y, dst_x] = image[:, src_y, src_x]
    return shifted


def _sample_split(
    prototypes: np.ndarray,
    num_samples: int,
    config: SyntheticImageConfig,
    rng: np.random.Generator,
) -> ArrayDataset:
    """Draw ``num_samples`` perturbed prototype images with balanced labels."""
    labels = np.arange(num_samples) % config.num_classes
    rng.shuffle(labels)
    images = np.empty(
        (num_samples, config.channels, config.image_size, config.image_size)
    )
    shifts = rng.integers(-config.max_shift, config.max_shift + 1, size=(num_samples, 2))
    contrasts = 1.0 + config.contrast_jitter * rng.uniform(-1.0, 1.0, size=num_samples)
    noise = rng.normal(0.0, config.noise_std, size=images.shape)
    for i, label in enumerate(labels):
        base = _shift_image(prototypes[label], int(shifts[i, 0]), int(shifts[i, 1]))
        images[i] = contrasts[i] * base
    images += noise
    return ArrayDataset(as_float(images), labels.astype(np.int64))


def make_synthetic_image_dataset(
    config: SyntheticImageConfig,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Build ``(train, test)`` splits from a :class:`SyntheticImageConfig`."""
    config.validate()
    rng = as_rng(config.seed)
    prototypes = make_prototypes(config, rng)
    train = _sample_split(prototypes, config.train_samples, config, rng)
    test = _sample_split(prototypes, config.test_samples, config, rng)
    return train, test


def make_mnist_like(
    *,
    train_samples: int = 2000,
    test_samples: int = 500,
    noise_std: float = 0.3,
    image_size: int = 28,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """MNIST-stand-in: 10-class single-channel ``image_size²`` images."""
    config = SyntheticImageConfig(
        num_classes=10,
        image_size=image_size,
        channels=1,
        train_samples=train_samples,
        test_samples=test_samples,
        noise_std=noise_std,
        seed=seed,
    )
    return make_synthetic_image_dataset(config)


def make_cifar10_like(
    *,
    train_samples: int = 2000,
    test_samples: int = 500,
    noise_std: float = 0.5,
    image_size: int = 32,
    seed: int = 1,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-10 stand-in: 10-class three-channel ``image_size²`` images.

    A larger default noise level makes this the "more challenging" dataset,
    mirroring the paper's MNIST-vs-CIFAR difficulty gap.
    """
    config = SyntheticImageConfig(
        num_classes=10,
        image_size=image_size,
        channels=3,
        train_samples=train_samples,
        test_samples=test_samples,
        noise_std=noise_std,
        smoothness=4,
        seed=seed,
    )
    return make_synthetic_image_dataset(config)


def make_gaussian_blobs(
    *,
    num_classes: int = 4,
    num_features: int = 16,
    samples_per_class: int = 50,
    separation: float = 3.0,
    noise_std: float = 1.0,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Tiny vector-valued dataset (Gaussian blobs) for fast unit tests.

    Returns a 75 % / 25 % train/test split of linearly separable clusters.
    """
    check_positive_int(num_classes, "num_classes")
    check_positive_int(num_features, "num_features")
    check_positive_int(samples_per_class, "samples_per_class")
    rng = as_rng(seed)
    centers = rng.normal(scale=separation, size=(num_classes, num_features))
    inputs = []
    labels = []
    for cls in range(num_classes):
        points = centers[cls] + rng.normal(scale=noise_std, size=(samples_per_class, num_features))
        inputs.append(points)
        labels.append(np.full(samples_per_class, cls, dtype=np.int64))
    x = np.concatenate(inputs, axis=0)
    y = np.concatenate(labels, axis=0)
    order = rng.permutation(len(x))
    x, y = x[order], y[order]
    split = int(0.75 * len(x))
    return ArrayDataset(x[:split], y[:split]), ArrayDataset(x[split:], y[split:])
