"""Dataset containers.

A dataset is anything exposing ``__len__`` and ``__getitem__`` returning an
``(input, target)`` pair; :class:`ArrayDataset` is the in-memory
implementation used throughout the library (the synthetic MNIST/CIFAR
substitutes fit comfortably in memory).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ShapeError


class Dataset:
    """Minimal dataset protocol."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset backed by two aligned numpy arrays."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ShapeError(
                f"inputs and targets must have the same length, got {len(inputs)} and {len(targets)}"
            )
        if len(inputs) == 0:
            raise ShapeError("dataset must contain at least one sample")
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    # ------------------------------------------------------------- niceties
    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of a single input sample."""
        return tuple(self.inputs.shape[1:])

    @property
    def num_classes(self) -> int:
        """Number of distinct integer labels present in ``targets``."""
        return int(np.unique(self.targets).size)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the raw ``(inputs, targets)`` arrays."""
        return self.inputs, self.targets

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=int)
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    def class_counts(self) -> np.ndarray:
        """Histogram of label occurrences indexed by class id."""
        labels = self.targets.astype(int)
        counts = np.zeros(int(labels.max()) + 1, dtype=np.int64)
        for label in labels:
            counts[label] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayDataset(samples={len(self)}, sample_shape={self.sample_shape}, "
            f"classes={self.num_classes})"
        )
