"""Dataset-level transforms.

Transforms operate on whole input arrays (not per-sample) because the
datasets in this project are in-memory; they return new arrays and never
mutate their argument.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.exceptions import ShapeError
from repro.nn.dtype import as_float


def normalize(inputs: np.ndarray, mean: float = None, std: float = None) -> np.ndarray:
    """Standardize inputs to zero mean / unit variance (or given statistics)."""
    inputs = as_float(inputs)
    mean = float(inputs.mean()) if mean is None else float(mean)
    std = float(inputs.std()) if std is None else float(std)
    if std <= 0:
        raise ValueError(f"std must be > 0, got {std}")
    return (inputs - mean) / std


def per_channel_normalize(images: np.ndarray) -> np.ndarray:
    """Standardize an NCHW batch per channel."""
    images = as_float(images)
    if images.ndim != 4:
        raise ShapeError(f"expected NCHW images, got shape {images.shape}")
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    std = np.where(std > 0, std, 1.0)
    return (images - mean) / std


def flatten_images(images: np.ndarray) -> np.ndarray:
    """Flatten an NCHW batch into ``(N, C·H·W)`` vectors."""
    images = as_float(images)
    if images.ndim < 2:
        raise ShapeError(f"expected at least 2-D input, got shape {images.shape}")
    return images.reshape(images.shape[0], -1)


def normalize_dataset(dataset: ArrayDataset) -> ArrayDataset:
    """Return a standardized copy of ``dataset`` (global mean/std over inputs)."""
    return ArrayDataset(normalize(dataset.inputs), dataset.targets.copy())


def train_test_statistics(train: ArrayDataset, test: ArrayDataset) -> Tuple[ArrayDataset, ArrayDataset]:
    """Standardize both splits with statistics computed on the *training* split."""
    mean = float(train.inputs.mean())
    std = float(train.inputs.std())
    return (
        ArrayDataset(normalize(train.inputs, mean, std), train.targets.copy()),
        ArrayDataset(normalize(test.inputs, mean, std), test.targets.copy()),
    )
