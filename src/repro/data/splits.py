"""Train/validation splitting utilities."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_fraction


def train_val_split(
    dataset: ArrayDataset, val_fraction: float = 0.2, *, rng: RngLike = None
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Randomly split a dataset into train/validation subsets.

    ``val_fraction`` is clamped so both splits contain at least one sample.
    """
    check_fraction(val_fraction, "val_fraction", inclusive=False)
    rng = as_rng(rng)
    n = len(dataset)
    order = rng.permutation(n)
    val_count = max(1, min(n - 1, int(round(val_fraction * n))))
    val_idx = order[:val_count]
    train_idx = order[val_count:]
    return dataset.subset(train_idx), dataset.subset(val_idx)


def stratified_split(
    dataset: ArrayDataset, val_fraction: float = 0.2, *, rng: RngLike = None
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Class-balanced train/validation split (each class split separately)."""
    check_fraction(val_fraction, "val_fraction", inclusive=False)
    rng = as_rng(rng)
    targets = np.asarray(dataset.targets).astype(int)
    train_indices = []
    val_indices = []
    for cls in np.unique(targets):
        cls_idx = np.flatnonzero(targets == cls)
        rng.shuffle(cls_idx)
        val_count = max(1, int(round(val_fraction * len(cls_idx)))) if len(cls_idx) > 1 else 0
        val_indices.extend(cls_idx[:val_count].tolist())
        train_indices.extend(cls_idx[val_count:].tolist())
    if not train_indices or not val_indices:
        return train_val_split(dataset, val_fraction, rng=rng)
    return dataset.subset(train_indices), dataset.subset(val_indices)
