"""Data substrate: datasets, loaders, synthetic generators and transforms."""

from repro.data.dataset import ArrayDataset, Dataset
from repro.data.loaders import DataLoader
from repro.data.splits import stratified_split, train_val_split
from repro.data.synthetic import (
    SyntheticImageConfig,
    make_cifar10_like,
    make_gaussian_blobs,
    make_mnist_like,
    make_synthetic_image_dataset,
)
from repro.data.transforms import (
    flatten_images,
    normalize,
    normalize_dataset,
    per_channel_normalize,
    train_test_statistics,
)

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageConfig",
    "make_synthetic_image_dataset",
    "make_mnist_like",
    "make_cifar10_like",
    "make_gaussian_blobs",
    "train_val_split",
    "stratified_split",
    "normalize",
    "normalize_dataset",
    "per_channel_normalize",
    "flatten_images",
    "train_test_statistics",
]
