"""repro.obs — unified observability: metrics, tracing, profiling spans.

The package bundles a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer` into one :class:`Observability` handle
that the serving runtime, the job scheduler, and the experiment graph all
accept.  The default everywhere is :data:`NULL_OBS` — both halves
disabled, every call a no-op — so observability is strictly opt-in and
costs nothing when off.  See ``README.md`` in this directory for the
instrument taxonomy, trace record schemas, and the clock-injection
contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Union

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    load_metrics_snapshot,
    percentile,
    write_metrics_snapshot,
)
from repro.obs.trace import (
    NULL_TRACER,
    TIMING_FIELDS,
    Tracer,
    read_trace_file,
    record_checksum,
    strip_timing_fields,
    summarize_traces,
)

PathLike = Union[str, Path]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NULL_OBS",
    "Observability",
    "Tracer",
    "TIMING_FIELDS",
    "DEFAULT_BUCKETS",
    "create_observability",
    "export_metrics",
    "load_metrics_snapshot",
    "metrics_path",
    "obs_root",
    "percentile",
    "read_trace_file",
    "record_checksum",
    "strip_timing_fields",
    "summarize_traces",
    "traces_path",
    "write_metrics_snapshot",
]


@dataclass
class Observability:
    """One handle carrying both halves of the observability stack."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)

    @property
    def enabled(self) -> bool:
        """True when either half records anything (guards payload building)."""
        return self.metrics.enabled or self.tracer.enabled


#: The shared disabled handle — the default argument everywhere.
NULL_OBS = Observability()


def obs_root(store_root: PathLike) -> Path:
    """Where a store's observability artifacts live: ``<store>/obs``."""
    return Path(store_root) / "obs"


def traces_path(root: PathLike) -> Path:
    """The trace stream under an obs root."""
    return Path(root) / "traces.jsonl"


def metrics_path(root: PathLike) -> Path:
    """The exported metrics snapshot under an obs root."""
    return Path(root) / "metrics.json"


def create_observability(
    root: PathLike,
    *,
    clock: Callable[[], float] = time.perf_counter,
    fsync: bool = False,
) -> Observability:
    """A live Observability writing traces under ``root`` (created if needed)."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    return Observability(
        metrics=MetricsRegistry(clock=clock),
        tracer=Tracer(traces_path(root), clock=clock, fsync=fsync),
    )


def export_metrics(obs: Observability, root: PathLike) -> Path:
    """Persist ``obs``'s metrics snapshot to ``<root>/metrics.json``."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    return write_metrics_snapshot(obs.metrics, metrics_path(root))
