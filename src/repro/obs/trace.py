"""Structured tracing: spans, per-request/per-node records, traces.jsonl.

Trace records are plain dicts with a ``kind`` field (``"request"``,
``"node"``, ``"span"``; see the package README for the full schemas).
They stream to an append-only, per-line-checksummed ``traces.jsonl``
using the same fcntl-flock discipline as the run-store journal, and are
mirrored into a bounded in-memory ring buffer for live inspection.

Determinism contract: every field of a record is deterministic for a
seeded run *except* the fields named in :data:`TIMING_FIELDS`.  Tests
strip those and compare the remainder byte for byte across two identical
runs; nothing in a trace record ever feeds a content fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import percentile
from repro.utils.logging import get_logger
from repro.utils.serialization import jsonify

try:  # fcntl is POSIX-only; the serving/scheduler stack already requires it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

logger = get_logger("obs.trace")

PathLike = Union[str, Path]

#: Fields whose values are wall-time-dependent and therefore excluded from
#: the trace-determinism contract (and from any fingerprint, ever).
TIMING_FIELDS = frozenset(
    {
        "queue_wait_s",
        "service_s",
        "latency_s",
        "deadline_slack_s",
        "elapsed_s",
        "ready_wait_s",
        "start_s",
        "end_s",
    }
)

#: Default ring-buffer capacity (records kept in memory per tracer).
DEFAULT_RING_CAPACITY = 1024

_CHECKSUM_FIELD = "sha256"


def record_checksum(record: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of ``record`` minus its checksum field.

    Same canonicalization as the run-store journal (sorted keys, compact
    separators, ``jsonify``-normalized values); kept local so ``repro.obs``
    never imports the experiments layer.
    """
    body = {k: v for k, v in record.items() if k != _CHECKSUM_FIELD}
    canonical = json.dumps(jsonify(body), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def strip_timing_fields(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` with timing fields and the checksum removed.

    What the determinism tests compare: two identical seeded runs must
    produce identical stripped records in identical order.
    """
    return {
        k: v
        for k, v in record.items()
        if k not in TIMING_FIELDS and k != _CHECKSUM_FIELD
    }


class Tracer:
    """Emit trace records to a ring buffer and (optionally) traces.jsonl.

    ``path=None`` keeps records in memory only.  File appends take an
    exclusive flock per line, write one checksummed JSON object, and
    flush; ``fsync=True`` additionally syncs each line to disk.  Unlike
    journaled sweep points, trace records are observability data — losing
    the tail on a power cut costs nothing recomputable — so fsync is off
    by default to keep the hot path cheap.

    Sequence numbers come from a process-local monotonic counter (never
    randomness or the wall clock), so record identity is deterministic.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        capacity: int = DEFAULT_RING_CAPACITY,
        clock: Callable[[], float] = time.perf_counter,
        fsync: bool = False,
        enabled: bool = True,
    ):
        self.path = Path(path) if path is not None else None
        self.enabled = bool(enabled)
        self._clock = clock
        self._fsync = bool(fsync)
        self._capacity = max(1, int(capacity))
        self._ring: List[Dict[str, Any]] = []
        self._ring_next = 0
        self._seq = 0
        self._span_seq = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ emit
    def emit(self, kind: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """Emit one record; returns it (with ``seq``/``sha256``) or None."""
        if not self.enabled:
            return None
        record = dict(fields)
        record["kind"] = kind
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            if len(self._ring) < self._capacity:
                self._ring.append(record)
            else:
                self._ring[self._ring_next] = record
                self._ring_next = (self._ring_next + 1) % self._capacity
        record[_CHECKSUM_FIELD] = record_checksum(record)
        if self.path is not None:
            self._append_line(record)
        return record

    def _append_line(self, record: Dict[str, Any]) -> None:
        line = json.dumps(jsonify(record), sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(line)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------ read
    def records(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """In-memory records in emission order (oldest retained first)."""
        with self._lock:
            ordered = self._ring[self._ring_next:] + self._ring[: self._ring_next]
        if kind is None:
            return list(ordered)
        return [r for r in ordered if r.get("kind") == kind]

    # ----------------------------------------------------------------- spans
    def _span_stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **fields: Any):
        """Profile a code region: emits a ``span`` record on exit.

        Spans get ids from their own counter (allocated at *entry*, so a
        child emitted before its parent exits can still name it) and nest
        via a thread-local stack; each record carries ``span_id`` and the
        parent span's id (None at the root) so offline tools can rebuild
        the tree.  Timing uses the injected monotonic clock.
        """
        if not self.enabled:
            yield None
            return
        stack = self._span_stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._span_seq
            self._span_seq += 1
        stack.append(span_id)
        started = self._clock()
        status = "ok"
        try:
            yield span_id
        except BaseException:
            status = "error"
            raise
        finally:
            stack.pop()
            self.emit(
                "span",
                name=name,
                span_id=span_id,
                parent=parent,
                status=status,
                elapsed_s=self._clock() - started,
                **fields,
            )

    def close(self) -> None:
        """Disable further emission (records already written stay valid)."""
        self.enabled = False


class _NullTracer(Tracer):
    """The disabled tracer: every call is a cheap no-op."""

    def __init__(self):
        super().__init__(None, capacity=1, enabled=False)

    def emit(self, kind: str, **fields: Any) -> None:
        return None


#: The shared disabled tracer — the default everywhere.
NULL_TRACER = _NullTracer()


def read_trace_file(path: PathLike) -> List[Dict[str, Any]]:
    """Load ``traces.jsonl``, skipping corrupt or checksum-mismatched lines."""
    path = Path(path)
    records: List[Dict[str, Any]] = []
    if not path.exists():
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                logger.warning("%s:%d: corrupt trace line skipped", path, lineno)
                continue
            if not isinstance(record, dict):
                logger.warning("%s:%d: non-object trace line skipped", path, lineno)
                continue
            expected = record.get(_CHECKSUM_FIELD)
            if expected != record_checksum(record):
                logger.warning(
                    "%s:%d: trace checksum mismatch skipped", path, lineno
                )
                continue
            records.append(record)
    return records


def _histogram_summary(values: List[float]) -> Dict[str, Any]:
    return {
        "count": len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }


def summarize_traces(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate request/node records into the ``trace`` CLI summary.

    Percentiles use the same nearest-rank :func:`~repro.obs.metrics.
    percentile` as live histograms, so this offline view agrees exactly
    with ``python -m repro metrics`` for the same observations.
    """
    requests: List[Dict[str, Any]] = []
    nodes: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "request":
            requests.append(record)
        elif kind == "node":
            nodes.append(record)
        elif kind == "span":
            spans.append(record)

    summary: Dict[str, Any] = {}
    if requests:
        outcomes: Dict[str, int] = {}
        batch_sizes: Dict[str, int] = {}
        breaker_states: Dict[str, int] = {}
        queue_waits: List[float] = []
        degraded = 0
        for record in requests:
            outcome = str(record.get("outcome", "unknown"))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            if record.get("queue_wait_s") is not None:
                queue_waits.append(float(record["queue_wait_s"]))
            if record.get("batch_size") is not None:
                size = str(record["batch_size"])
                batch_sizes[size] = batch_sizes.get(size, 0) + 1
            if record.get("breaker_state") is not None:
                state = str(record["breaker_state"])
                breaker_states[state] = breaker_states.get(state, 0) + 1
            if record.get("degraded"):
                degraded += 1
        summary["requests"] = {
            "count": len(requests),
            "outcomes": dict(sorted(outcomes.items())),
            "queue_wait_s": _histogram_summary(queue_waits),
            "batch_sizes": dict(sorted(batch_sizes.items(), key=lambda kv: int(kv[0]))),
            "breaker_states": dict(sorted(breaker_states.items())),
            "degraded": degraded,
        }
    if nodes:
        statuses: Dict[str, int] = {}
        ready_waits: List[float] = []
        node_elapsed: List[float] = []
        queue_depths: List[int] = []
        for record in nodes:
            status = str(record.get("status", "unknown"))
            statuses[status] = statuses.get(status, 0) + 1
            if record.get("ready_wait_s") is not None:
                ready_waits.append(float(record["ready_wait_s"]))
            if record.get("elapsed_s") is not None:
                node_elapsed.append(float(record["elapsed_s"]))
            if record.get("queue_depth") is not None:
                queue_depths.append(int(record["queue_depth"]))
        summary["nodes"] = {
            "count": len(nodes),
            "statuses": dict(sorted(statuses.items())),
            "ready_wait_s": _histogram_summary(ready_waits),
            "elapsed_s": _histogram_summary(node_elapsed),
            "queue_depth_samples": queue_depths,
        }
    if spans:
        by_name: Dict[str, List[float]] = {}
        for record in spans:
            by_name.setdefault(str(record.get("name", "?")), []).append(
                float(record.get("elapsed_s", 0.0))
            )
        summary["spans"] = {
            name: _histogram_summary(values)
            for name, values in sorted(by_name.items())
        }
    return summary
