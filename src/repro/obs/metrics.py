"""Typed process-local metrics: counters, gauges, exact-percentile histograms.

The registry is the metrics half of :mod:`repro.obs` (see the package
README for the instrument taxonomy).  Design constraints, in order:

* **Cheap when disabled** — the default everywhere is the shared
  :data:`NULL_REGISTRY`: every instrument it hands out is a no-op
  singleton, so an uninstrumented hot path pays one attribute access and
  one no-op call, nothing else.  Code never branches on "is observability
  on"; it just calls the instrument it was given.
* **Thread-safe** — each instrument carries its own small lock; the
  serving runtime's dispatcher threads, the scheduler's worker threads,
  and a snapshot reader may all touch one registry concurrently.
* **Monotonic clock only** — timing helpers use an injectable
  ``perf_counter``-based clock, never the wall clock, so instrumenting a
  fingerprinted module (``experiments/graph.py``) cannot trip the
  ``wall-clock`` lint contract.
* **Exact percentiles** — histograms keep fixed buckets for shape *and* a
  bounded ring of raw samples; p50/p95/p99 are computed by the shared
  nearest-rank :func:`percentile` over the retained window.  The offline
  trace summarizer (:func:`repro.obs.trace.summarize_traces`) uses the
  same function over the same observations, so ``python -m repro
  metrics`` and a histogram recomputed from ``traces.jsonl`` agree
  exactly as long as the window has not overflowed.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError
from repro.utils.serialization import load_json, save_json

PathLike = Union[str, Path]

#: Default latency buckets (seconds): sub-millisecond to tens of seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Raw samples a histogram retains for exact percentile readout.  Beyond
#: this, the ring wraps and percentiles describe the most recent window.
DEFAULT_SAMPLE_WINDOW = 4096


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    The single percentile definition shared by :meth:`Histogram.snapshot`
    and the offline trace summarizer — using one function on both sides is
    what makes the live ``metrics`` view and a histogram recomputed from
    ``traces.jsonl`` agree bit for bit.
    """
    if not values:
        return float("nan")
    if not 0 <= q <= 100:
        raise ReproError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if q == 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(n * q / 100)
    return ordered[int(rank) - 1]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with a bounded raw-sample ring.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket.  The ring keeps the most recent
    ``sample_window`` raw observations so :meth:`snapshot` can report
    *exact* nearest-rank percentiles over that window rather than
    bucket-interpolated estimates.
    """

    __slots__ = (
        "name",
        "buckets",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_ring",
        "_ring_next",
        "_window",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        *,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name!r} buckets must be non-empty and strictly "
                f"increasing, got {bounds}"
            )
        if sample_window < 1:
            raise ReproError(f"sample_window must be >= 1, got {sample_window}")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._ring: List[float] = []
        self._ring_next = 0
        self._window = int(sample_window)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = index
                    break
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._ring) < self._window:
                self._ring.append(value)
            else:
                self._ring[self._ring_next] = value
                self._ring_next = (self._ring_next + 1) % self._window

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            samples = list(self._ring)
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": {
                    **{f"le_{bound:g}": count
                       for bound, count in zip(self.buckets, self._counts)},
                    "overflow": self._counts[-1],
                },
                "window": len(samples),
                "p50": percentile(samples, 50),
                "p95": percentile(samples, 95),
                "p99": percentile(samples, 99),
            }


@contextmanager
def _timed(histogram: "Histogram", clock: Callable[[], float]):
    started = clock()
    try:
        yield
    finally:
        histogram.observe(clock() - started)


class MetricsRegistry:
    """Process-local registry of named instruments.

    Instruments are created on first request and shared thereafter;
    requesting an existing name as a different instrument type is an
    error (two subsystems silently sharing one name would corrupt both
    readings).  ``clock`` must be monotonic (default ``perf_counter``);
    it feeds :meth:`timer` only — no instrument ever reads the wall clock.
    """

    enabled = True

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory: Callable[[], object], kind: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ReproError(
                    f"metric {name!r} is already registered as a "
                    f"{type(instrument).__name__}, not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        *,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
    ) -> Histogram:
        return self._get(
            name,
            lambda: Histogram(name, buckets, sample_window=sample_window),
            Histogram,
        )

    def timer(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        """Context manager observing elapsed seconds into histogram ``name``."""
        return _timed(self.histogram(name, buckets), self._clock)

    def snapshot(self) -> Dict[str, Any]:
        """Canonical dict view: ``{counters, gauges, histograms}``, names sorted."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[name] = instrument.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


@contextmanager
def _null_timer():
    yield


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, zero retained state.

    ``enabled`` is False so call sites that *build* per-event payloads
    (trace dicts, label formatting) can skip that work entirely; plain
    ``inc``/``observe`` calls need no guard — they are no-ops.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, *, sample_window=1):
        return self._null_histogram

    def timer(self, name: str, buckets=DEFAULT_BUCKETS):
        return _null_timer()

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled registry — the default everywhere.
NULL_REGISTRY = NullRegistry()


def write_metrics_snapshot(registry: MetricsRegistry, path: PathLike) -> Path:
    """Persist ``registry.snapshot()`` as JSON (the ``metrics`` CLI input).

    Registries are process-local, so every surface that enables metrics
    (``serve-bench --metrics``, ``serve-jobs --metrics``) exports its
    snapshot on exit; ``python -m repro metrics`` renders the export.
    """
    return save_json(Path(path), registry.snapshot())


def load_metrics_snapshot(path: PathLike) -> Dict[str, Any]:
    """Load a snapshot written by :func:`write_metrics_snapshot`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(
            f"no metrics snapshot at {path}; run `python -m repro serve-bench "
            "--metrics` or `serve-jobs --metrics` first"
        )
    snapshot = load_json(path)
    if not isinstance(snapshot, dict) or "counters" not in snapshot:
        raise ReproError(f"{path} does not look like a metrics snapshot")
    return snapshot
