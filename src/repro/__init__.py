"""Group Scissor reproduction library.

This package reproduces "Group Scissor: Scaling Neuromorphic Computing Design
to Large Neural Networks" (Wang et al., DAC 2017).  It contains:

* :mod:`repro.nn` — a numpy neural-network training substrate (layers,
  optimizers, losses, trainer);
* :mod:`repro.data` — synthetic MNIST/CIFAR-like datasets and loaders;
* :mod:`repro.lowrank` — PCA/SVD low-rank approximation and reconstruction
  error spectra;
* :mod:`repro.core` — the paper's contribution: rank clipping, crossbar-aware
  group-Lasso connection deletion, and the combined Group Scissor pipeline;
* :mod:`repro.hardware` — the memristor-crossbar hardware model (tiling,
  crossbar area, routing area);
* :mod:`repro.models` — the LeNet and ConvNet topologies of the paper;
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro import core, data, hardware, lowrank, models, nn
from repro.core import (
    GroupConnectionDeleter,
    GroupDeletionConfig,
    GroupScissor,
    GroupScissorResult,
    RankClipper,
    RankClippingConfig,
    ScissorConfig,
    convert_to_lowrank,
    direct_lra,
)
from repro.hardware import NetworkMapper, TechnologyParameters

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "lowrank",
    "core",
    "hardware",
    "models",
    "RankClippingConfig",
    "GroupDeletionConfig",
    "ScissorConfig",
    "RankClipper",
    "GroupConnectionDeleter",
    "GroupScissor",
    "GroupScissorResult",
    "convert_to_lowrank",
    "direct_lra",
    "NetworkMapper",
    "TechnologyParameters",
    "__version__",
]
