"""Robustness rules: no swallowed exceptions, no unbounded blocking waits.

The resilience layer (PR 7) is built on one invariant: every failure is
*accounted for* — retried, recorded as a :class:`PointFailure`, quarantined,
or re-raised.  A ``try: ... except Exception: pass`` in the execution or
persistence path silently converts a lost point into a missing result, which
the artifact then reports as "complete".  That is precisely the failure mode
the fault-tolerance work exists to eliminate, so the handlers themselves are
linted: a broad catch in the supervised modules must either re-raise or log.

The serving runtime (PR 8) adds a sibling invariant: **every blocking wait
is bounded**.  A ``queue.get()`` / ``Event.wait()`` / ``Future.result()``
without a timeout anywhere in the request path turns one stuck dependency
into a wedged worker thread — and a wedged worker silently halves capacity
with no failure accounted anywhere.  :class:`UnboundedWaitRule` enforces
the no-hang contract statically over ``repro/serving/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Module path fragments whose exception handlers carry the accounting burden.
_SCOPED_PATHS = (
    "repro/experiments/",
    "repro/scheduler/",
    "repro/utils/serialization.py",
    "repro/utils/faultinject.py",
)

#: Exception names too broad to catch without re-raising or logging.
_BROAD_NAMES = {"Exception", "BaseException"}

#: Logging-call attribute tails that count as "the failure was reported".
_LOG_TAILS = {"debug", "info", "warning", "error", "exception", "critical", "warn"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception:`` and ``except BaseException:``."""
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _BROAD_NAMES:
            return True
    return False


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or reports the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_TAILS:
                return True
            if isinstance(func, ast.Name) and func.id in {"warn", "print"}:
                return True
    return False


@register
class SwallowedExceptionRule(Rule):
    """Broad except handlers in engine/store modules must log or re-raise."""

    id = "swallowed-exception"
    summary = (
        "engine/store modules may not silently swallow broad exceptions; "
        "handlers must re-raise, log, or narrow the caught type"
    )
    rationale = (
        "A bare `except: pass` in the sweep engine once turned a crashed "
        "point into a silently missing result inside an artifact marked "
        "complete.  The resilience layer's contract is that every failure "
        "is retried, recorded, or quarantined — so any broad catch in the "
        "execution/persistence path must visibly account for the error."
    )

    def applies_to(self, relpath: str) -> bool:
        return any(fragment in relpath for fragment in _SCOPED_PATHS)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if node.type is None:
                # Bare except also traps SystemExit/KeyboardInterrupt — the
                # SIGINT drain path depends on those propagating, so a bare
                # except here is a finding even when it logs.
                yield ctx.finding(
                    self.id,
                    node,
                    "bare `except:` traps KeyboardInterrupt/SystemExit and "
                    "breaks the SIGINT drain path; catch a concrete "
                    "exception type",
                )
                continue
            if not _accounts_for_failure(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "broad exception handler neither re-raises nor logs; a "
                    "failure reaching it vanishes from the run accounting — "
                    "narrow the type, log it, or re-raise",
                )


#: Attribute names whose calls block until resolution on stdlib primitives.
#: ``.get`` covers ``queue.Queue.get``; ``.wait`` covers ``Event``/
#: ``Condition``/``Barrier``; ``.result`` covers futures and the serving
#: layer's own ResponseHandle.
_BLOCKING_ATTRS = {"get", "wait", "result"}


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _has_bounded_timeout(call: ast.Call) -> bool:
    """True when the call passes a (non-``None``) timeout argument."""
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            return not _is_none(keyword.value)
        if keyword.arg is None:  # **kwargs — assume the caller knows
            return True
    if isinstance(call.func, ast.Attribute) and call.func.attr == "get":
        # queue.Queue.get(block, timeout): a second positional is the timeout.
        return len(call.args) >= 2 and not _is_none(call.args[1])
    # Event.wait(timeout) / Condition.wait(timeout) / Future.result(timeout):
    # the first positional is the timeout.
    return len(call.args) >= 1 and not _is_none(call.args[0])


def _looks_like_mapping_get(call: ast.Call) -> bool:
    """``d.get(key)`` / ``d.get(key, default)`` — dict lookup, not a queue pop.

    ``queue.Queue.get`` positionals are ``(block, timeout)`` — a boolean and
    a number — so a single non-boolean positional (or a boolean keyword
    ``default=``) marks the mapping idiom.  Bool literals stay suspect:
    ``q.get(True)`` is a blocking pop.
    """
    if call.keywords and all(k.arg not in (None, "block", "timeout") for k in call.keywords):
        return True
    if len(call.args) == 2:
        # d.get(key, default) vs q.get(block, timeout): treat as mapping
        # unless the first arg is a boolean literal (the queue idiom).
        first = call.args[0]
        return not (isinstance(first, ast.Constant) and isinstance(first.value, bool))
    if len(call.args) == 1:
        first = call.args[0]
        return not (isinstance(first, ast.Constant) and isinstance(first.value, bool))
    return False


@register
class UnboundedWaitRule(Rule):
    """Blocking waits in the serving layer must carry explicit timeouts."""

    id = "unbounded-wait"
    summary = (
        "serving/scheduler-layer queue.get / Event.wait / Condition.wait / "
        "Future.result calls must pass an explicit, non-None timeout"
    )
    rationale = (
        "The no-hang contract of the long-running layers: one stuck "
        "dependency (a hung programming call, a dead leader thread, a "
        "wedged graph node) must surface as a typed deadline rejection or "
        "a requeue, never as a worker blocked forever — an unbounded wait "
        "silently removes a worker from capacity with no failure accounted "
        "anywhere.  Applies to the serving runtime and the job scheduler "
        "daemon alike.  Justified exceptions carry a "
        "`# repro: ignore[unbounded-wait]` with the reasoning."
    )

    def applies_to(self, relpath: str) -> bool:
        return "repro/serving/" in relpath or "repro/scheduler/" in relpath

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _BLOCKING_ATTRS:
                continue
            if func.attr == "get" and _looks_like_mapping_get(node):
                continue
            if _has_bounded_timeout(node):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"blocking `.{func.attr}()` call without a bounded timeout; "
                "the serving no-hang contract requires every wait to time "
                "out (pass `timeout=`, or justify with "
                "`# repro: ignore[unbounded-wait]`)",
            )
