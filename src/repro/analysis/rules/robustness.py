"""Robustness rule: the engine/store layer must never swallow exceptions.

The resilience layer (PR 7) is built on one invariant: every failure is
*accounted for* — retried, recorded as a :class:`PointFailure`, quarantined,
or re-raised.  A ``try: ... except Exception: pass`` in the execution or
persistence path silently converts a lost point into a missing result, which
the artifact then reports as "complete".  That is precisely the failure mode
the fault-tolerance work exists to eliminate, so the handlers themselves are
linted: a broad catch in the supervised modules must either re-raise or log.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Module path fragments whose exception handlers carry the accounting burden.
_SCOPED_PATHS = (
    "repro/experiments/",
    "repro/utils/serialization.py",
    "repro/utils/faultinject.py",
)

#: Exception names too broad to catch without re-raising or logging.
_BROAD_NAMES = {"Exception", "BaseException"}

#: Logging-call attribute tails that count as "the failure was reported".
_LOG_TAILS = {"debug", "info", "warning", "error", "exception", "critical", "warn"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception:`` and ``except BaseException:``."""
    if handler.type is None:
        return True
    types = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _BROAD_NAMES:
            return True
    return False


def _accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or reports the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_TAILS:
                return True
            if isinstance(func, ast.Name) and func.id in {"warn", "print"}:
                return True
    return False


@register
class SwallowedExceptionRule(Rule):
    """Broad except handlers in engine/store modules must log or re-raise."""

    id = "swallowed-exception"
    summary = (
        "engine/store modules may not silently swallow broad exceptions; "
        "handlers must re-raise, log, or narrow the caught type"
    )
    rationale = (
        "A bare `except: pass` in the sweep engine once turned a crashed "
        "point into a silently missing result inside an artifact marked "
        "complete.  The resilience layer's contract is that every failure "
        "is retried, recorded, or quarantined — so any broad catch in the "
        "execution/persistence path must visibly account for the error."
    )

    def applies_to(self, relpath: str) -> bool:
        return any(fragment in relpath for fragment in _SCOPED_PATHS)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if node.type is None:
                # Bare except also traps SystemExit/KeyboardInterrupt — the
                # SIGINT drain path depends on those propagating, so a bare
                # except here is a finding even when it logs.
                yield ctx.finding(
                    self.id,
                    node,
                    "bare `except:` traps KeyboardInterrupt/SystemExit and "
                    "breaks the SIGINT drain path; catch a concrete "
                    "exception type",
                )
                continue
            if not _accounts_for_failure(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "broad exception handler neither re-raises nor logs; a "
                    "failure reaching it vanishes from the run accounting — "
                    "narrow the type, log it, or re-raise",
                )
