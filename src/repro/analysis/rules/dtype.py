"""Dtype-policy rule: no hard-coded float dtypes outside ``repro.nn.dtype``.

PR 1 introduced a global dtype policy (:mod:`repro.nn.dtype`): every layer,
loss and parameter coerces arrays through ``as_float`` so the whole
substrate can be switched between float64 (bit-exact reproduction) and
float32 (≈2× effective memory bandwidth on the im2col hot paths).  A stray
``np.float64`` literal silently pins one code path to full precision and
re-introduces mixed-dtype promotion bugs the policy was built to kill.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.core import FileContext, Finding, Rule, register

#: Attribute chains that hard-code a float dtype.
_FLOAT_ATTRS = {
    "np.float64",
    "np.float32",
    "np.float16",
    "numpy.float64",
    "numpy.float32",
    "numpy.float16",
}

#: String constants that select a float dtype when passed as ``dtype=``.
_FLOAT_STRINGS = {"float64", "float32", "float16", "f4", "f8", "<f4", "<f8"}


@register
class DtypeLiteralRule(Rule):
    """Hard-coded float dtypes bypass the global dtype policy."""

    id = "dtype-literal"
    summary = (
        "float dtypes must come from repro.nn.dtype (default_dtype/as_float), "
        "not np.float64/np.float32 literals"
    )
    rationale = (
        "The PR 1 dtype policy makes float32 inference a one-line switch; a "
        "hard-coded float literal pins its code path to one precision, "
        "bypassing the policy and splitting the substrate into mixed dtypes "
        "(integer/bool dtypes are exempt — they are not governed by the "
        "policy)."
    )

    _ALLOWED_SUFFIXES = ("repro/nn/dtype.py", "nn/dtype.py")

    def applies_to(self, relpath: str) -> bool:
        return not relpath.endswith(self._ALLOWED_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted in _FLOAT_ATTRS:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"hard-coded {dotted} bypasses the global dtype policy; "
                        "use repro.nn.dtype.default_dtype()/as_float() (or "
                        "suppress with justification where full precision is "
                        "a deliberate, policy-independent choice)",
                    )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg != "dtype":
                        continue
                    value = keyword.value
                    if (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value in _FLOAT_STRINGS
                    ):
                        yield ctx.finding(
                            self.id,
                            keyword.value,
                            f"dtype={value.value!r} hard-codes a float dtype; "
                            "use repro.nn.dtype.default_dtype()",
                        )
                    elif isinstance(value, ast.Name) and value.id == "float":
                        yield ctx.finding(
                            self.id,
                            keyword.value,
                            "dtype=float resolves to float64 regardless of the "
                            "dtype policy; use repro.nn.dtype.default_dtype()",
                        )
