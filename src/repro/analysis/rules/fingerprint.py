"""Fingerprint-coverage rule: resume keys may never silently lose a field.

The run store (PR 4) addresses artifacts and sweep points by content
fingerprints computed from :class:`ExperimentSpec` (which embeds the scale
overrides and every :class:`HardwareConfig` corner).  A field added to one
of those dataclasses but left out of the fingerprint makes two *different*
experiments hash identically — resume then silently serves results
computed under other settings, corrupting the shared artifact pool.

This is a semantic (import-based) check, not an AST pattern: it runs the
real serialization/fingerprint code against the live dataclasses.

Three layers:

1. **Acknowledged-field snapshot** — every field must be listed in
   :data:`ACKNOWLEDGED_FIELDS` or :data:`EXCLUDED_FIELDS`.  Adding a field
   therefore *forces* a conscious decision here: either it participates in
   fingerprints (add to the acknowledged set after wiring it through) or
   it is display-only (add to the excluded set, with a comment saying why).
2. **Serialization coverage** — a probe :class:`ExperimentSpec` is built
   and every acknowledged field must actually survive into ``to_dict()``
   and ``canonical()`` (resp. ``HardwareConfig.as_dict()``); the snapshot
   cannot drift from what the code really hashes.
3. **Scale-override coverage** — each :class:`ExperimentScale` field is
   perturbed on the ``tiny`` preset and must round-trip through
   ``scale_spec_fields`` into ``canonical()["scale_overrides"]``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, register

#: Fields confirmed to participate in content fingerprints.  Extend this set
#: only after verifying the new field reaches ``canonical()`` /
#: ``as_dict()`` (layer 2 fails otherwise).
ACKNOWLEDGED_FIELDS: Dict[str, Set[str]] = {
    "ExperimentSpec": {
        "kind",
        "workload",
        "scale",
        "scale_overrides",
        "method",
        "grid",
        "tolerance",
        "strength",
        "include_small_matrices",
        "lowrank_method",
        "seed",
        "hardware",
        "engine",
    },
    "ExperimentScale": {
        "name",
        "train_samples",
        "test_samples",
        "image_size",
        "network_scale",
        "baseline_iterations",
        "clip_iterations",
        "clip_interval",
        "deletion_iterations",
        "finetune_iterations",
        "batch_size",
        "learning_rate",
        "momentum",
        "record_interval",
        "eval_interval",
        "seed",
    },
    "HardwareConfig": {
        "bits",
        "program_noise",
        "program_noise_additive",
        "read_noise",
        "fault_rate",
        "stuck_on_fraction",
        "adc_bits",
        "seed",
    },
}

#: Fields deliberately *outside* the fingerprint, each with a reason:
#: ExperimentSpec.name is a display label — renaming a spec must not re-run it.
EXCLUDED_FIELDS: Dict[str, Set[str]] = {
    "ExperimentSpec": {"name"},
    "ExperimentScale": set(),
    "HardwareConfig": set(),
}


def _names(cls) -> Set[str]:
    return {f.name for f in dataclass_fields(cls)}


def _perturb(value):
    """A valid, different value for an :class:`ExperimentScale` field."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value / 2
    if isinstance(value, str):
        return value + "_probe"
    return None


def coverage_messages(
    spec_cls=None,
    scale_cls=None,
    hardware_cls=None,
    *,
    acknowledged: Optional[Dict[str, Set[str]]] = None,
    excluded: Optional[Dict[str, Set[str]]] = None,
) -> List[Tuple[str, str]]:
    """Run the three coverage layers, returning ``(class name, message)`` pairs.

    The class parameters are injectable so the rule's own tests can prove
    that an unacknowledged field is caught; production use passes nothing
    and checks the real dataclasses.
    """
    from repro.experiments.presets import ExperimentScale, get_scale
    from repro.experiments.spec import ExperimentSpec, scale_spec_fields
    from repro.hardware.sim import HardwareConfig

    spec_cls = spec_cls or ExperimentSpec
    scale_cls = scale_cls or ExperimentScale
    hardware_cls = hardware_cls or HardwareConfig
    acknowledged = acknowledged if acknowledged is not None else ACKNOWLEDGED_FIELDS
    excluded = excluded if excluded is not None else EXCLUDED_FIELDS

    problems: List[Tuple[str, str]] = []

    # ---- layer 1: acknowledged-field snapshot
    for cls, key in (
        (spec_cls, "ExperimentSpec"),
        (scale_cls, "ExperimentScale"),
        (hardware_cls, "HardwareConfig"),
    ):
        names = _names(cls)
        known = acknowledged.get(key, set()) | excluded.get(key, set())
        for name in sorted(names - known):
            problems.append(
                (
                    key,
                    f"field {name!r} is neither acknowledged as fingerprinted "
                    "nor listed as excluded; wire it into the content "
                    "fingerprint (or exclude it with a reason) and update "
                    "repro.analysis.rules.fingerprint accordingly — otherwise "
                    "runs differing only in this field resume each other's "
                    "artifacts",
                )
            )
        for name in sorted(known - names):
            problems.append(
                (
                    key,
                    f"acknowledged/excluded field {name!r} no longer exists on "
                    f"{key}; remove it from repro.analysis.rules.fingerprint",
                )
            )

    # ---- layer 2: serialization coverage against the live code paths
    try:
        probe = spec_cls(
            kind="sweep", grid=(0.05,), hardware=(hardware_cls(bits=4),)
        )
    except Exception as error:  # pragma: no cover - spec construction contract
        problems.append(
            ("ExperimentSpec", f"could not build a probe spec for coverage: {error}")
        )
        return problems
    spec_fields = _names(spec_cls)
    serialized = set(probe.to_dict())
    canonical = set(probe.canonical())
    spec_excluded = excluded.get("ExperimentSpec", set())
    for name in sorted(spec_fields - serialized - spec_excluded):
        problems.append(
            (
                "ExperimentSpec",
                f"field {name!r} is missing from to_dict(), so it can never "
                "reach the content fingerprint",
            )
        )
    for name in sorted((serialized - canonical) - spec_excluded):
        problems.append(
            (
                "ExperimentSpec",
                f"field {name!r} is serialized but dropped from canonical() "
                "without being in the exclusion list; it silently does not "
                "participate in fingerprints",
            )
        )
    for name in sorted(spec_excluded & canonical):
        problems.append(
            (
                "ExperimentSpec",
                f"field {name!r} is listed as excluded but still appears in "
                "canonical(); the exclusion list is stale",
            )
        )

    hardware_probe = hardware_cls(bits=4)
    hw_serialized = set(hardware_probe.as_dict())
    hw_excluded = excluded.get("HardwareConfig", set())
    for name in sorted(_names(hardware_cls) - hw_serialized - hw_excluded):
        problems.append(
            (
                "HardwareConfig",
                f"field {name!r} is missing from as_dict(), so hardware "
                "corners differing in it fingerprint identically",
            )
        )

    # ---- layer 3: scale fields must round-trip through scale_overrides
    if scale_cls is ExperimentScale:
        base = get_scale("tiny")
        for field in dataclass_fields(scale_cls):
            probe_value = _perturb(getattr(base, field.name))
            if probe_value is None:
                problems.append(
                    (
                        "ExperimentScale",
                        f"cannot build a perturbed probe for field {field.name!r}; "
                        "extend _perturb in repro.analysis.rules.fingerprint",
                    )
                )
                continue
            modified = base.with_overrides(**{field.name: probe_value})
            scale_name, overrides = scale_spec_fields(modified)
            override_fields = {name for name, _value in overrides}
            if field.name not in override_fields:
                problems.append(
                    (
                        "ExperimentScale",
                        f"perturbing field {field.name!r} does not surface in "
                        "scale_spec_fields overrides, so two scales differing "
                        "only in it fingerprint identically",
                    )
                )
                continue
            spec = spec_cls(
                kind="baseline", scale=scale_name, scale_overrides=overrides
            )
            if field.name not in spec.canonical()["scale_overrides"]:
                problems.append(
                    (
                        "ExperimentScale",
                        f"override for field {field.name!r} does not reach "
                        "canonical()['scale_overrides']",
                    )
                )
    return problems


def _anchor(key: str) -> Tuple[str, int]:
    """``(relpath, line)`` of the class a finding talks about."""
    import repro

    modules = {
        "ExperimentSpec": "experiments/spec.py",
        "ExperimentScale": "experiments/presets.py",
        "HardwareConfig": "hardware/sim.py",
    }
    package_root = Path(repro.__file__).resolve().parent
    path = package_root / modules[key]
    repo_root = package_root.parents[1]
    try:
        return path.relative_to(repo_root).as_posix(), 1
    except ValueError:  # pragma: no cover - non-checkout install layout
        return path.as_posix(), 1


@register
class FingerprintCoverageRule(ProjectRule):
    """Every spec/scale/hardware field is fingerprinted or explicitly excluded."""

    id = "fingerprint-coverage"
    summary = (
        "every ExperimentSpec / ExperimentScale / HardwareConfig field must "
        "participate in content fingerprints or sit on the exclusion list"
    )
    rationale = (
        "RunStore resume trusts fingerprints as identity: a field outside "
        "the hash makes two different experiments collide, so resume serves "
        "results computed under other settings — a corrupted shared artifact "
        "store instead of one flaky test."
    )

    def check_project(self) -> Iterator[Finding]:
        for key, message in coverage_messages():
            path, line = _anchor(key)
            yield Finding(
                path=path,
                line=line,
                rule=self.id,
                message=f"{key}: {message}",
            )
