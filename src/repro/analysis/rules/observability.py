"""Observability-coverage rule: every rejection class has its counter.

The serving runtime's accounting invariant — ``submitted == completed +
Σ rejected.*`` — only holds if every :class:`~repro.serving.types.
Rejection` subclass maps to a registered ``rejected.<code>`` counter in
:data:`~repro.serving.runtime.ServingRuntime.COUNTER_KEYS`.  A new
rejection type added without its counter would be shed *uncounted*: the
metrics snapshot and the CI accounting check would book the request as
lost, and capacity dashboards would under-report shed load exactly when
it matters (a new overload mode).

Like the fingerprint rule this is a semantic (import-based) check: it
walks the live ``Rejection`` subclass tree and cross-checks the live
``COUNTER_KEYS`` tuple, so it cannot drift from the code it guards.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, ProjectRule, register


def _all_subclasses(cls) -> List[type]:
    found: List[type] = []
    for sub in cls.__subclasses__():
        found.append(sub)
        found.extend(_all_subclasses(sub))
    return found


def rejection_messages(
    rejection_classes: Optional[Sequence[type]] = None,
    counter_keys: Optional[Sequence[str]] = None,
) -> List[Tuple[type, str]]:
    """Cross-check rejection classes against counter keys.

    Returns ``(class, message)`` pairs.  Both inputs are injectable so the
    rule's own tests can prove a missing counter is caught; production use
    passes nothing and checks the live serving module.  Only subclasses
    defined in :mod:`repro.serving.types` participate by default — tests
    subclass ``Rejection`` freely and must not pollute the lint.
    """
    from repro.serving import types as serving_types
    from repro.serving.runtime import ServingRuntime

    if rejection_classes is None:
        rejection_classes = [
            cls
            for cls in _all_subclasses(serving_types.Rejection)
            if cls.__module__ == serving_types.__name__
        ]
    keys = tuple(
        counter_keys if counter_keys is not None else ServingRuntime.COUNTER_KEYS
    )

    problems: List[Tuple[type, str]] = []
    codes = {}
    for cls in rejection_classes:
        code = cls.__dict__.get("code")
        if not code:
            problems.append(
                (
                    cls,
                    f"{cls.__name__} does not define its own `code`; it would "
                    "be counted under its parent's rejection code, merging "
                    "two distinct shed reasons into one counter",
                )
            )
            continue
        if code in codes:
            problems.append(
                (
                    cls,
                    f"{cls.__name__} reuses rejection code {code!r} already "
                    f"taken by {codes[code].__name__}; their counters would "
                    "be indistinguishable",
                )
            )
            continue
        codes[code] = cls
        key = f"rejected.{code}"
        if key not in keys:
            problems.append(
                (
                    cls,
                    f"{cls.__name__} (code {code!r}) has no "
                    f"{key!r} entry in ServingRuntime.COUNTER_KEYS; requests "
                    "it sheds would break the submitted == completed + "
                    "rejected.* accounting invariant",
                )
            )
    anchor = rejection_classes[0] if rejection_classes else None
    expected = {f"rejected.{code}" for code in codes}
    for key in keys:
        if key.startswith("rejected.") and key not in expected:
            problems.append(
                (
                    anchor,
                    f"COUNTER_KEYS entry {key!r} matches no Rejection "
                    "subclass; the counter is stale and would read 0 forever",
                )
            )
    return problems


def _anchor(cls) -> Tuple[str, int]:
    """``(relpath, line)`` of the class a finding talks about."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    repo_root = package_root.parents[1]
    if cls is None:
        path = package_root / "serving" / "runtime.py"
        line = 1
    else:
        path = Path(inspect.getsourcefile(cls) or package_root)
        try:
            _, line = inspect.getsourcelines(cls)
        except (OSError, TypeError):  # pragma: no cover - source unavailable
            line = 1
    try:
        return path.relative_to(repo_root).as_posix(), line
    except ValueError:  # pragma: no cover - non-checkout install layout
        return path.as_posix(), line


@register
class UncountedRejectionRule(ProjectRule):
    """Every serving Rejection subclass maps to a registered counter key."""

    id = "uncounted-rejection"
    summary = (
        "every Rejection subclass in repro.serving.types must have a "
        "matching rejected.<code> entry in ServingRuntime.COUNTER_KEYS"
    )
    rationale = (
        "the serving accounting invariant (submitted == completed + "
        "Σ rejected.*) is what CI and capacity dashboards trust; a "
        "rejection type without its counter sheds requests invisibly, "
        "under-reporting overload exactly when a new shed path appears"
    )

    def check_project(self) -> Iterator[Finding]:
        for cls, message in rejection_messages():
            path, line = _anchor(cls)
            yield Finding(path=path, line=line, rule=self.id, message=message)
