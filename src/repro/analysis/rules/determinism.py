"""Determinism rules: seeded randomness and wall-clock-free fingerprints.

Every scale lever in this repo — process fan-out, lockstep slabs,
content-addressed resume — is guarded by bit-identity parity tests, and
those tests are only meaningful if all randomness flows through explicit
seeded streams (:mod:`repro.utils.rng`) and no fingerprinted code path
reads the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, imported_modules, imported_names
from repro.analysis.core import FileContext, Finding, Rule, register

#: numpy legacy global-state API: nondeterministic across processes and
#: execution orders even when seeded once, because the state is shared.
_NUMPY_GLOBAL = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "binomial",
    "poisson",
    "get_state",
    "set_state",
    "RandomState",
}

#: stdlib ``random`` functions that draw from the hidden module-level state.
_STDLIB_RANDOM = {
    "random",
    "uniform",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "seed",
    "getstate",
    "setstate",
    "getrandbits",
}


@register
class UnseededRandomRule(Rule):
    """No unseeded or global-state randomness outside ``repro.utils.rng``."""

    id = "unseeded-random"
    summary = (
        "randomness must flow through repro.utils.rng seeded streams, never "
        "numpy's or the stdlib's global state"
    )
    rationale = (
        "Serial↔parallel↔lockstep sweep parity (PR 2–3) and content-addressed "
        "resume (PR 4) require every draw to be a pure function of an explicit "
        "seed; global-state RNGs silently break bit-identity the moment "
        "execution order or process layout changes."
    )

    _ALLOWED_SUFFIXES = ("repro/utils/rng.py", "utils/rng.py")

    def applies_to(self, relpath: str) -> bool:
        return not relpath.endswith(self._ALLOWED_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        has_stdlib_random = "random" in imported_modules(ctx.tree)
        from_random = imported_names(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            if dotted is None:
                continue
            head, _, tail = dotted.rpartition(".")
            if head in ("np.random", "numpy.random"):
                if tail in _NUMPY_GLOBAL:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{dotted}() uses numpy's global RNG state; derive a "
                        "generator via repro.utils.rng (as_rng / derive_seed / "
                        "derive_point_seed) instead",
                    )
                elif tail == "default_rng" and not (node.args or node.keywords):
                    yield ctx.finding(
                        self.id,
                        node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic; pass a seed derived via "
                        "repro.utils.rng",
                    )
            elif has_stdlib_random and head == "random" and tail in _STDLIB_RANDOM:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{dotted}() draws from the stdlib random module's hidden "
                    "global state; use a seeded numpy Generator from "
                    "repro.utils.rng",
                )
            elif not head and tail in from_random and tail in _STDLIB_RANDOM:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{tail}() (imported from the random module) draws from "
                    "hidden global state; use a seeded numpy Generator from "
                    "repro.utils.rng",
                )


#: Calls banned outright in fingerprinted modules (dotted names).
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """No wall-clock or entropy reads in fingerprinted code paths."""

    id = "wall-clock"
    summary = (
        "fingerprinted modules (spec/plan/store/hardware-sim) must not read "
        "the wall clock or OS entropy"
    )
    rationale = (
        "RunStore artifacts are content-addressed: a fingerprint must be a "
        "pure function of the spec.  A time.time()/os.urandom value leaking "
        "into a fingerprint or point payload makes identical runs "
        "unresumable and corrupts the shared artifact pool under fan-out."
    )

    #: Modules whose outputs feed spec/point fingerprints or stored payloads.
    FINGERPRINTED_SUFFIXES = (
        "experiments/spec.py",
        "experiments/plan.py",
        "experiments/graph.py",
        "experiments/store.py",
        "hardware/sim.py",
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith(self.FINGERPRINTED_SUFFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = call_name(node)
            if dotted is None:
                continue
            if dotted in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{dotted}() reads the wall clock / OS entropy inside a "
                    "fingerprinted module; fingerprints and stored payloads "
                    "must be pure functions of the spec",
                )
            elif dotted == "time.strftime" and len(node.args) < 2:
                yield ctx.finding(
                    self.id,
                    node,
                    "time.strftime() without an explicit time tuple formats "
                    "the current wall-clock time inside a fingerprinted module",
                )
            elif dotted in ("time.localtime", "time.gmtime") and not node.args:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{dotted}() without arguments reads the current wall-clock "
                    "time inside a fingerprinted module",
                )
