"""Parity rules: BLAS layout contiguity and shared-baseline aliasing.

Two real regressions motivate this module:

* **PR 3 layout bug** — ``from_dense`` stored a low-rank factor as the
  transposed view of an SVD result (``vt[:k, :].T``, Fortran-ordered).
  BLAS picks different kernels for transposed operands, which are *not*
  bit-for-bit interchangeable with the contiguous path, so layout leaked
  into numerics and broke serial↔lockstep parity.  Fix: wrap the view in
  ``np.ascontiguousarray`` before assigning it to ``Parameter.data``.
* **PR 1 aliasing bug** — ``sweep_group_deletion`` passed its shared
  baseline network straight into per-point training, which mutated the
  baseline and contaminated every later sweep point.  Fix: deep-copy the
  baseline at the task boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.astutil import call_tail, local_bindings, walk_functions
from repro.analysis.core import FileContext, Finding, Rule, register

#: Callees that produce a contiguous copy, neutralising a transposed view.
_CONTIGUOUS_WRAPPERS = {"ascontiguousarray", "copy", "array", "deepcopy"}


def _has_unwrapped_transpose(node: ast.AST) -> Optional[ast.AST]:
    """The first ``.T`` / ``.transpose`` node not inside a copying wrapper."""
    if isinstance(node, ast.Call) and call_tail(node) in _CONTIGUOUS_WRAPPERS:
        # np.ascontiguousarray(x.T), x.T.copy(), np.array(x.T): all yield
        # C-contiguous data.  For the method form the receiver itself may be
        # the transposed view — that is exactly the wrapped case.
        return None
    if isinstance(node, ast.Attribute) and node.attr == "T":
        return node
    found = None
    if isinstance(node, ast.Call) and call_tail(node) == "transpose":
        found = node
        children: Tuple[ast.AST, ...] = tuple(node.args) + tuple(
            keyword.value for keyword in node.keywords
        )
    else:
        children = tuple(ast.iter_child_nodes(node))
    for child in children:
        hit = _has_unwrapped_transpose(child)
        if hit is not None:
            return hit
    return found


@register
class TransposeContiguityRule(Rule):
    """Transposed views must be made contiguous before landing in Parameter.data."""

    id = "transpose-contiguity"
    summary = (
        "never assign a .T/transpose(...) view to Parameter.data without "
        "np.ascontiguousarray (or an equivalent copy)"
    )
    rationale = (
        "The PR 3 regression: vt[:k, :].T is a Fortran-ordered view, BLAS "
        "kernels for transposed operands are not bit-for-bit interchangeable "
        "with the contiguous path, and layout-dependent numerics broke "
        "serial↔lockstep parity."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                target
                for target in node.targets
                if isinstance(target, ast.Attribute) and target.attr == "data"
            ]
            if not targets:
                continue
            hit = _has_unwrapped_transpose(node.value)
            if hit is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    "assigning a transposed view to Parameter.data stores "
                    "Fortran-ordered memory; wrap it in np.ascontiguousarray() "
                    "so BLAS kernel selection cannot leak into numerics",
                )


#: Parameter names that conventionally carry a *shared* network object.
_WATCHED_NAMES = {"baseline", "baseline_network", "shared_baseline"}

#: Keyword arguments that hand a network to per-point training code.
_NETWORK_KEYWORDS = {"network", "baseline_network"}


def _is_training_sink(tail: Optional[str]) -> bool:
    """Callables that mutate the network they receive.

    ``convert_to_lowrank`` / ``direct_lra`` are deliberately *not* sinks:
    they are documented copy-semantics (they rebuild a converted network
    from fresh arrays), so handing them the shared baseline is safe.
    """
    if tail is None:
        return False
    return (
        "train" in tail
        or "finetune" in tail
        or "deletion" in tail
        or tail.endswith("PointTask")
    )


@register
class BaselineAliasRule(Rule):
    """Shared baselines must be deep-copied before entering training code."""

    id = "baseline-alias"
    summary = (
        "pass copy.deepcopy(baseline) (or a clone) into training sinks — "
        "never the shared object itself"
    )
    rationale = (
        "The PR 1 regression: sweep_group_deletion trained directly on its "
        "shared baseline network, mutating it and contaminating every later "
        "sweep point.  Training sinks (convert_to_lowrank, *train*/*finetune* "
        "calls, *PointTask constructors) must receive a private copy."
    )

    def applies_to(self, relpath: str) -> bool:
        return "experiments/" in relpath

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for function, _stack in walk_functions(ctx.tree):
            bound = local_bindings(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_training_sink(call_tail(node)):
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in _WATCHED_NAMES:
                        yield ctx.finding(
                            self.id,
                            arg,
                            f"shared network {arg.id!r} is passed into a "
                            "training sink without copy.deepcopy(); per-point "
                            "training mutates it in place (the PR 1 sweep "
                            "aliasing bug)",
                        )
                for keyword in node.keywords:
                    value = keyword.value
                    if not isinstance(value, ast.Name):
                        continue
                    if isinstance(value, ast.Name) and value.id in _WATCHED_NAMES:
                        yield ctx.finding(
                            self.id,
                            value,
                            f"shared network {value.id!r} is passed into a "
                            "training sink without copy.deepcopy(); per-point "
                            "training mutates it in place (the PR 1 sweep "
                            "aliasing bug)",
                        )
                    elif (
                        keyword.arg in _NETWORK_KEYWORDS
                        and value.id not in bound
                    ):
                        # A free variable from an enclosing scope: one object
                        # shared across every task the closure yields.
                        yield ctx.finding(
                            self.id,
                            value,
                            f"{keyword.arg}={value.id} closes over an object "
                            "shared across points; deep-copy it per task "
                            "(network=copy.deepcopy(...)) so point training "
                            "cannot mutate the shared instance",
                        )
