"""Mutable-default-argument rule.

A ``def f(cache={})`` default is evaluated once at import and shared by
every call — in a library whose sweep engine re-enters the same functions
from multiple points (and whose workers ``fork`` an already-imported
process), a mutated default is cross-point, cross-process-image shared
state: the same class of defect as the PR 1 shared-baseline bug, hidden in
a signature.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.astutil import call_name
from repro.analysis.core import FileContext, Finding, Rule, register

#: Calls that build a fresh mutable container... once, at def time.
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
    "collections.deque",
}


def _mutable_default(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.List, ast.Set)):
        return "literal " + type(node).__name__.lower()
    if isinstance(node, ast.Dict):
        return "literal dict"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, (ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        dotted = call_name(node)
        if dotted in _MUTABLE_FACTORIES:
            return f"{dotted}() call"
    return None


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments, anywhere."""

    id = "mutable-default"
    summary = "default arguments must be immutable (use None + in-body construction)"
    rationale = (
        "A mutable default is evaluated once at import and then shared by "
        "every caller — cross-sweep-point, cross-experiment hidden state, "
        "the signature-level twin of the PR 1 shared-baseline aliasing bug."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            named = list(args.posonlyargs) + list(args.args)
            positional = list(zip(named[len(named) - len(args.defaults):], args.defaults))
            keyword_only = [
                (arg, default)
                for arg, default in zip(args.kwonlyargs, args.kw_defaults)
                if default is not None
            ]
            for arg, default in positional + keyword_only:
                kind = _mutable_default(default)
                if kind is not None:
                    name = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        self.id,
                        default,
                        f"parameter {arg.arg!r} of {name}() defaults to a "
                        f"{kind}, evaluated once and shared across calls; "
                        "default to None and construct inside the body",
                    )
