"""Picklability rule: no lambdas or local definitions cross a process pool.

``SweepEngine.map_points`` documents its contract: *point_fn must be a
module-level function and every task a pure picklable value*.  Lambdas,
closures and locally-defined classes cannot be pickled by the stdlib, so
handing one to ``ProcessPoolExecutor.submit``/``map`` (or the engine APIs
built on them) fails only at runtime — and only on the ``workers > 1``
path, which is exactly the configuration unit tests tend to skip.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.astutil import call_tail, imported_names, walk_functions
from repro.analysis.core import FileContext, Finding, Rule, register

#: Methods that dispatch work onto a process pool.
_POOL_METHODS = {"submit", "map"}

#: SweepEngine fan-out APIs with the same module-level-callable contract.
_ENGINE_METHODS = {"map_points", "run_strength_points", "run_tolerance_points"}


def _locally_defined(tree: ast.Module) -> Set[str]:
    """Names of functions/classes defined inside another function."""
    names: Set[str] = set()
    for function, _stack in walk_functions(tree):
        for node in ast.walk(function):
            if node is function:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
    return names


@register
class PoolPicklableRule(Rule):
    """Process-pool tasks must be module-level callables, never closures."""

    id = "pool-picklable"
    summary = (
        "only module-level functions and picklable values may enter "
        "ProcessPoolExecutor/SweepEngine fan-out calls"
    )
    rationale = (
        "The sweep engine's process fan-out pickles the point function and "
        "every task; a lambda or nested def imports fine and passes the "
        "serial tests, then crashes (or silently degrades to serial) the "
        "first time workers > 1 runs in production."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        has_executor = bool(
            imported_names(ctx.tree, "concurrent.futures") & {"ProcessPoolExecutor"}
        ) or any(
            isinstance(node, ast.Attribute) and node.attr == "ProcessPoolExecutor"
            for node in ast.walk(ctx.tree)
        )
        local_defs = _locally_defined(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = call_tail(node)
            # Method form only: the builtin map() is not a pool dispatch.
            is_pool = (
                has_executor
                and isinstance(node.func, ast.Attribute)
                and tail in _POOL_METHODS
            )
            is_engine = tail in _ENGINE_METHODS
            if not (is_pool or is_engine):
                continue
            api = f"{tail}()"
            # Any lambda in the argument list is unpicklable, whether it is
            # the callable or rides along inside the task payload.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    yield ctx.finding(
                        self.id,
                        arg,
                        f"lambda passed to {api} cannot be pickled for the "
                        "process pool; move it to a module-level function",
                    )
            if node.args:
                candidate = node.args[0]
                if (
                    isinstance(candidate, ast.Name)
                    and candidate.id in local_defs
                ):
                    yield ctx.finding(
                        self.id,
                        candidate,
                        f"{candidate.id!r} is defined inside a function, so "
                        f"it cannot be pickled when {api} fans out to worker "
                        "processes; define it at module level",
                    )
