"""Rule modules; importing this package registers every rule.

Each module groups the rules guarding one contract family:

* :mod:`~repro.analysis.rules.determinism` — seeded randomness, wall-clock-free
  fingerprint paths.
* :mod:`~repro.analysis.rules.dtype` — the global dtype policy.
* :mod:`~repro.analysis.rules.parity` — BLAS layout contiguity, shared-baseline
  aliasing.
* :mod:`~repro.analysis.rules.picklability` — process-pool task contracts.
* :mod:`~repro.analysis.rules.defaults` — mutable default arguments.
* :mod:`~repro.analysis.rules.fingerprint` — resume-key coverage (semantic).
* :mod:`~repro.analysis.rules.robustness` — no swallowed exceptions in the
  engine/store failure-accounting path.
* :mod:`~repro.analysis.rules.observability` — serving rejection/counter
  coverage (semantic).
"""

from repro.analysis.rules import (  # noqa: F401  (import side effect: @register)
    defaults,
    determinism,
    dtype,
    fingerprint,
    observability,
    parity,
    picklability,
    robustness,
)
