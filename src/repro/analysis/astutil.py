"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

__all__ = [
    "dotted_name",
    "call_name",
    "call_tail",
    "imported_modules",
    "imported_names",
    "walk_functions",
    "local_bindings",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Chains rooted in anything but a plain name (calls, subscripts) resolve
    to ``None`` — rules treat those as opaque.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted callee name of a call, else ``None``."""
    return dotted_name(node.func)


def call_tail(node: ast.Call) -> Optional[str]:
    """The last component of the callee (``pool.map`` → ``map``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def imported_modules(tree: ast.Module) -> Set[str]:
    """Top-level module names bound by ``import x`` / ``import x.y``/aliases."""
    modules: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules.add(alias.asname or alias.name.split(".")[0])
    return modules


def imported_names(tree: ast.Module, module: str) -> Set[str]:
    """Names bound by ``from <module> import ...`` (aliases resolved)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Yield ``(function_node, enclosing_function_stack)`` pairs, outermost first."""

    def visit(node: ast.AST, stack: Tuple[ast.AST, ...]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from visit(child, stack + (child,))
            else:
                yield from visit(child, stack)

    yield from visit(tree, ())


def local_bindings(function: ast.AST) -> Set[str]:
    """Names bound inside ``function``: parameters plus any Store-context name.

    Names bound only in nested functions are included too — that is fine for
    the "is this a free variable from an outer scope?" question the parity
    rules ask, where over-approximating locals only makes the rule more
    conservative.
    """
    bound: Set[str] = set()
    args = function.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not function:
                bound.add(node.name)
    return bound
