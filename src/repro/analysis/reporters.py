"""Finding reporters: the ``--format text`` and ``--format json`` renderings."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.core import AnalysisReport, Finding

__all__ = ["render_text", "render_json", "render_rule_list"]


def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one ``path:line: [rule] message`` row per finding."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location}: [{finding.rule}] {finding.message}")
    counts: Dict[str, int] = {}
    for finding in report.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if report.findings:
        lines.append("")
        by_rule = ", ".join(f"{rule}={count}" for rule, count in sorted(counts.items()))
        lines.append(
            f"{len(report.findings)} finding(s) across {report.files_checked} "
            f"file(s) ({by_rule}); {report.suppressed} suppressed"
        )
    else:
        lines.append(
            f"clean: {report.files_checked} file(s), "
            f"{len(report.rules_run)} rule(s), {report.suppressed} suppressed"
        )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def render_rule_list(rules) -> str:
    """The ``--list-rules`` table: id, summary, and the motivating contract."""
    lines: List[str] = []
    width = max(len(rule.id) for rule in rules)
    for rule in rules:
        lines.append(f"{rule.id:<{width}}  {rule.summary}")
        lines.append(f"{'':<{width}}  motivation: {rule.rationale}")
    return "\n".join(lines)
