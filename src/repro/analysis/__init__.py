"""Static contract linter for the Group Scissor reproduction.

``repro.analysis`` enforces, at the source level, the invariants the rest
of the library only checks at runtime through parity tests: seeded
randomness, wall-clock-free fingerprint paths, the global dtype policy,
BLAS layout contiguity, shared-baseline copying, process-pool
picklability, immutable defaults, and fingerprint coverage of the resume
keys.  Stdlib-only (``ast`` + ``importlib``); see ``README.md`` in this
package for the rule catalogue and the historical bugs behind each rule.

Usage::

    python -m repro lint                    # lint src/repro, benchmarks, examples
    python -m repro.analysis --list-rules   # standalone, same interface

or programmatically::

    from repro.analysis import run_analysis
    report = run_analysis(["src/repro"], root=".")
    assert report.clean, report.findings
"""

from repro.analysis.core import (
    RULES,
    AnalysisReport,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    iter_python_files,
    parse_suppressions,
    register,
    run_analysis,
)
from repro.analysis.reporters import render_json, render_rule_list, render_text

__all__ = [
    "AnalysisReport",
    "FileContext",
    "Finding",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "parse_suppressions",
    "register",
    "render_json",
    "render_rule_list",
    "render_text",
    "run_analysis",
]
