"""The contract-linter framework: findings, rules, suppressions, engine.

:mod:`repro.analysis` statically enforces the invariants every scale lever
in this repo rests on — seeded randomness, the global dtype policy, BLAS
layout parity, picklable fan-out tasks, and fingerprint coverage of the
resume keys.  The framework is stdlib-only (``ast`` + ``dataclasses``):

* :class:`Finding` — one violation, addressed as ``path:line``.
* :class:`Rule` — a per-file AST check registered under a kebab-case id.
* :class:`ProjectRule` — a semantic (import-based) check that runs once per
  analysis run rather than once per file.
* :class:`FileContext` — parsed source handed to rules: AST, lines, and the
  ``# repro: ignore[rule-id]`` suppression table.
* :func:`run_analysis` — walk paths, run rules, filter suppressed findings.

Suppression syntax
------------------
A violation is silenced by a ``# repro: ignore[rule-id]`` comment on the
finding's line, or on a comment-only line immediately above it (for lines
long enough that an inline comment would not fit)::

    now = time.strftime("%Y-%m-%dT%H:%M:%S")  # repro: ignore[wall-clock]

    # Analytical area model, deliberately float64.  repro: ignore[dtype-literal]
    weights = np.asarray(weights, dtype=np.float64)

Several ids may be listed, comma-separated.  Suppressions must name the
rule explicitly — there is no blanket ``ignore`` — so every waiver stays
attributable to one contract.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "RULES",
    "register",
    "all_rules",
    "get_rule",
    "parse_suppressions",
    "iter_python_files",
    "run_analysis",
    "AnalysisReport",
]

#: Rule id of the pseudo-finding emitted for unparsable files.
PARSE_ERROR = "parse-error"

# The tag may trail justification text inside the comment:
#   ``# analytical model, deliberately float64.  repro: ignore[dtype-literal]``
_SUPPRESSION_RE = re.compile(r"#.*?\brepro:\s*ignore\[([a-z0-9_,\s-]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation, addressed as ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",")}
        table[number] = {rule_id for rule_id in ids if rule_id}
    return table


class FileContext:
    """One parsed source file as seen by the per-file rules."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        #: Repo-relative posix path; what rules match against and findings report.
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._suppressions = parse_suppressions(source)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            rule=rule_id,
            message=message,
        )

    def _is_comment_line(self, line: int) -> bool:
        if not (1 <= line <= len(self.lines)):
            return False
        stripped = self.lines[line - 1].strip()
        return stripped.startswith("#")

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is waived on ``line`` (or the comment above)."""
        if rule_id in self._suppressions.get(line, ()):
            return True
        above = line - 1
        return rule_id in self._suppressions.get(above, ()) and self._is_comment_line(
            above
        )


class Rule:
    """Base class of every per-file check.

    Subclasses set :attr:`id` (kebab-case, unique), :attr:`summary` (one
    line, shown by ``--list-rules``) and :attr:`rationale` (the historical
    bug or contract that motivates the rule), then implement :meth:`check`.
    ``applies_to`` scopes the rule to a path subset (e.g. the wall-clock
    rule only guards fingerprinted modules).
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def applies_to(self, relpath: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.id!r}>"


class ProjectRule(Rule):
    """A semantic check that runs once per analysis run, not per file.

    Used for invariants that need the real modules imported (e.g. the
    fingerprint-coverage rule introspects the live dataclasses) rather than
    a file's AST.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self) -> Iterator[Finding]:
        raise NotImplementedError


#: The global rule registry, id → rule instance.
RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding one rule instance to :data:`RULES`."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} must define a non-empty rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def _ensure_rules_loaded() -> None:
    # Importing the subpackage triggers every @register decorator exactly once.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_rules_loaded()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Rule:
    _ensure_rules_loaded()
    try:
        return RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown rule {rule_id!r}; registered rules: {known}") from None


_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: Set[Path] = set()
    collected: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_file():
            candidates: Iterable[Path] = [entry]
        else:
            candidates = entry.rglob("*.py")
        for path in candidates:
            if path.suffix != ".py":
                continue
            if any(part in _SKIP_DIRS or part.startswith(".") for part in path.parts[:-1]):
                continue
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(path)
    return iter(sorted(collected))


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one :func:`run_analysis` call."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    rules_run: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, Any]:
        return {
            "findings": [finding.as_dict() for finding in self.findings],
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "rules_run": list(self.rules_run),
            "clean": self.clean,
        }


def _relpath(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def run_analysis(
    paths: Sequence[Union[str, Path]],
    *,
    root: Optional[Union[str, Path]] = None,
    rules: Optional[Sequence[str]] = None,
    include_project_rules: bool = True,
) -> AnalysisReport:
    """Lint every python file under ``paths`` with the selected rules.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    root:
        Base for the repo-relative paths findings report; paths outside
        ``root`` fall back to their literal form.
    rules:
        Rule-id subset to run (default: every registered rule).
    include_project_rules:
        Also run the once-per-run semantic rules (fingerprint coverage).
        File-fixture tests switch this off to keep findings local.
    """
    if rules is None:
        selected = all_rules()
    else:
        selected = [get_rule(rule_id) for rule_id in rules]
    file_rules = [rule for rule in selected if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in selected if isinstance(rule, ProjectRule)]

    root = Path(root) if root is not None else None
    findings: List[Finding] = []
    suppressed = 0
    files_checked = 0
    for path in iter_python_files(paths):
        relpath = _relpath(path, root)
        try:
            ctx = FileContext(path, relpath, path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            findings.append(
                Finding(path=relpath, line=line, rule=PARSE_ERROR, message=str(error))
            )
            continue
        files_checked += 1
        for rule in file_rules:
            if not rule.applies_to(relpath):
                continue
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
    if include_project_rules:
        for rule in project_rules:
            findings.extend(rule.check_project())
    # Scope-nested walks (e.g. a call inside a closure, visited once per
    # enclosing function) can report the same violation twice.
    findings = sorted(dict.fromkeys(findings))
    return AnalysisReport(
        findings=findings,
        files_checked=files_checked,
        suppressed=suppressed,
        rules_run=[rule.id for rule in selected],
    )
