"""Command line of the contract linter.

Reachable two ways (same flags, same exit codes)::

    python -m repro lint [paths...] [--format text|json] [--rules a,b] [--list-rules]
    python -m repro.analysis ...        # standalone, same interface

With no paths, lints the repository's default lint set: ``src/repro``,
``benchmarks`` and ``examples``.  Exit codes: 0 clean, 1 findings, 2 usage
error (e.g. an unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import all_rules, run_analysis
from repro.analysis.reporters import render_json, render_rule_list, render_text

__all__ = ["build_parser", "default_lint_paths", "repo_root", "run_lint", "main"]


def repo_root() -> Path:
    """The repository checkout this package was imported from."""
    return Path(__file__).resolve().parents[3]


def default_lint_paths() -> List[Path]:
    """The tree the repo's lint gate covers: src/repro, benchmarks, examples."""
    root = repo_root()
    candidates = [root / "src" / "repro", root / "benchmarks", root / "examples"]
    return [path for path in candidates if path.exists()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Statically enforce the repo's determinism, dtype, parity and "
            "fingerprint contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: src/repro, benchmarks, examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule-id subset to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their motivations and exit",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="base directory for reported paths (default: the repo checkout)",
    )
    return parser


def run_lint(
    paths: Optional[List[Path]] = None,
    *,
    fmt: str = "text",
    rules: Optional[str] = None,
    list_rules: bool = False,
    root: Optional[Path] = None,
) -> int:
    """Shared driver behind ``python -m repro lint`` and the standalone CLI."""
    if list_rules:
        print(render_rule_list(all_rules()))
        return 0
    selected = None
    if rules:
        selected = [rule_id.strip() for rule_id in rules.split(",") if rule_id.strip()]
    lint_paths = [Path(p) for p in paths] if paths else default_lint_paths()
    if not lint_paths:
        print("error: nothing to lint (no paths given, no repo defaults found)",
              file=sys.stderr)
        return 2
    missing = [str(path) for path in lint_paths if not path.exists()]
    if missing:
        print(f"error: path(s) do not exist: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report = run_analysis(
            lint_paths,
            root=root if root is not None else repo_root(),
            rules=selected,
        )
    except KeyError as error:
        # Unknown rule id; KeyError's str() wraps the message in quotes.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print(render_json(report) if fmt == "json" else render_text(report))
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(
        args.paths or None,
        fmt=args.format,
        rules=args.rules,
        list_rules=args.list_rules,
        root=args.root,
    )


if __name__ == "__main__":
    raise SystemExit(main())
