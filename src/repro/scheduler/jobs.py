"""Persistent, crash-recoverable priority job queue (file-backed).

Everything lives under one queue root directory so N client processes and
one daemon can share it with no broker:

``.counter``
    flocked monotonic sequence; job ids embed it, so ids are unique and
    sortable without wall-clock entropy.
``<job_id>.job.json``
    the immutable submission record (spec payload, priority, fingerprint),
    written atomically once at submit time.
``<job_id>.state.json``
    the mutable state snapshot (``queued`` → ``running`` → terminal),
    replaced atomically on every transition; per-node statuses ride along
    so ``status`` can render progress without talking to the daemon.
``<job_id>.cancel``
    a marker file; cancellation is a request flag the scheduler honours
    between nodes, so it works whether the job is queued or mid-run.
``events.jsonl``
    the append-only global event stream (flocked, fsynced, checksummed
    per line like the run journal) that ``watch`` tails.

All of it is plain JSON on a filesystem: ``kill -9`` the daemon at any
instant and the queue state that survives is exactly the state the next
daemon resumes from (:meth:`JobQueue.recover` requeues ``running`` jobs).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

try:  # POSIX-only; locking degrades gracefully without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.exceptions import SchedulerError
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import _payload_checksum
from repro.utils.logging import get_logger
from repro.utils.serialization import jsonify, load_json, save_json

logger = get_logger("scheduler.jobs")

PathLike = Union[str, Path]

#: Job lifecycle states.  ``queued`` → ``running`` → one of the terminal
#: four: ``done`` (complete artifact), ``partial`` (finished with isolated
#: point failures), ``failed`` (the run itself errored), ``cancelled``.
JOB_STATES = ("queued", "running", "done", "partial", "failed", "cancelled")

#: States a job can no longer leave.
TERMINAL_STATES = frozenset({"done", "partial", "failed", "cancelled"})


@dataclass(frozen=True)
class Job:
    """One immutable submission record."""

    job_id: str
    seq: int
    priority: int
    fingerprint: str
    name: str
    spec_payload: Dict[str, Any] = field(repr=False)

    def spec(self) -> ExperimentSpec:
        """Rebuild the submitted spec."""
        return ExperimentSpec.from_dict(self.spec_payload)


class JobQueue:
    """A directory-backed priority queue of experiment jobs."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:
        return f"JobQueue({str(self.root)!r})"

    # ------------------------------------------------------------- counters
    def _next_seq(self, name: str = ".counter") -> int:
        """Monotonic sequence under an exclusive flock (multi-process safe)."""
        path = self.root / name
        with open(path, "a+", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.seek(0)
                raw = handle.read().strip()
                value = (int(raw) if raw else 0) + 1
                handle.seek(0)
                handle.truncate()
                handle.write(str(value))
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return value

    # --------------------------------------------------------------- paths
    def job_path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.job.json"

    def state_path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.state.json"

    def cancel_path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.cancel"

    def events_path(self) -> Path:
        return self.root / "events.jsonl"

    # ------------------------------------------------------------ lifecycle
    def submit(self, spec: ExperimentSpec, *, priority: int = 0) -> Job:
        """Enqueue one spec; returns the durable job record.

        The job id embeds the submission sequence and the spec fingerprint
        (``job-00042-<fp>``) — unique without any wall-clock entropy, and
        self-describing enough that ``status`` output reads naturally.
        """
        seq = self._next_seq()
        fingerprint = spec.fingerprint()
        job_id = f"job-{seq:05d}-{fingerprint}"
        job = Job(
            job_id=job_id,
            seq=seq,
            priority=int(priority),
            fingerprint=fingerprint,
            name=spec.name,
            spec_payload=spec.to_dict(),
        )
        record = {
            "job_id": job.job_id,
            "seq": job.seq,
            "priority": job.priority,
            "fingerprint": job.fingerprint,
            "name": job.name,
            "spec": jsonify(job.spec_payload),
        }
        self._atomic_write(self.job_path(job_id), record)
        self.write_state(job_id, state="queued")
        self.append_event(job_id, "job-queued", detail=f"priority={job.priority}")
        logger.info("queued %s (priority %d)", job_id, job.priority)
        return job

    def jobs(self) -> List[Job]:
        """Every submitted job, highest priority first, then FIFO."""
        out = []
        for path in self.root.glob("*.job.json"):
            record = self._read_json(path)
            if record is None:
                continue
            out.append(
                Job(
                    job_id=record["job_id"],
                    seq=int(record["seq"]),
                    priority=int(record.get("priority", 0)),
                    fingerprint=record.get("fingerprint", ""),
                    name=record.get("name", ""),
                    spec_payload=record.get("spec", {}),
                )
            )
        out.sort(key=lambda job: (-job.priority, job.seq))
        return out

    def load(self, key: str) -> Job:
        """Resolve a job by id or unique id prefix."""
        matches = [job for job in self.jobs() if job.job_id == key]
        if not matches:
            matches = [job for job in self.jobs() if job.job_id.startswith(key)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SchedulerError(
                f"ambiguous job id {key!r}: matches {[j.job_id for j in matches]}"
            )
        raise SchedulerError(
            f"no job matches {key!r}; queued jobs: {[j.job_id for j in self.jobs()]}"
        )

    # ----------------------------------------------------------------- state
    def state(self, job_id: str) -> Dict[str, Any]:
        """Current state snapshot (``{"state": "queued"}`` before any write)."""
        record = self._read_json(self.state_path(job_id))
        return record if record is not None else {"state": "queued"}

    def write_state(self, job_id: str, **fields: Any) -> Dict[str, Any]:
        """Atomically replace the job's state snapshot."""
        state = fields.get("state")
        if state is not None and state not in JOB_STATES:
            raise SchedulerError(f"unknown job state {state!r}; expected {JOB_STATES}")
        record = {"job_id": job_id, "updated_ts": round(time.time(), 3), **fields}
        self._atomic_write(self.state_path(job_id), record)
        return record

    def request_cancel(self, job_id: str) -> bool:
        """Flag a job for cancellation; returns False if already terminal."""
        job = self.load(job_id)  # raises on unknown ids
        if self.state(job.job_id).get("state") in TERMINAL_STATES:
            return False
        self.cancel_path(job.job_id).touch()
        self.append_event(job.job_id, "job-cancel-requested")
        return True

    def cancel_requested(self, job_id: str) -> bool:
        return self.cancel_path(job_id).exists()

    def recover(self) -> List[str]:
        """Requeue jobs a dead daemon left ``running`` (crash recovery).

        Safe because every completed point is already durable in the run
        journal / store before its node reports done: requeueing replays
        the graph, which reuses everything that finished.
        """
        requeued = []
        for job in self.jobs():
            if self.state(job.job_id).get("state") == "running":
                self.write_state(job.job_id, state="queued", detail="requeued after crash")
                self.append_event(job.job_id, "job-requeued", detail="daemon restart")
                requeued.append(job.job_id)
        if requeued:
            logger.info("requeued %d interrupted job(s): %s", len(requeued), requeued)
        return requeued

    # ---------------------------------------------------------------- events
    def append_event(
        self,
        job_id: str,
        event: str,
        *,
        node: str = "",
        label: str = "",
        detail: str = "",
    ) -> Dict[str, Any]:
        """Durably append one event to the global stream.

        Same discipline as the run journal: one flocked, fsynced,
        checksummed line per event, with a global sequence number so
        ``watch`` clients can tail from where they left off and interleaving
        across jobs is reconstructible.
        """
        record = {
            "seq": self._next_seq(".events.counter"),
            "ts": round(time.time(), 3),
            "job": job_id,
            "event": event,
        }
        if node:
            record["node"] = node
        if label:
            record["label"] = label
        if detail:
            record["detail"] = detail
        record["sha256"] = _payload_checksum(record)
        path = self.events_path()
        with open(path, "a", encoding="utf-8") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return record

    def events(
        self, *, job_id: Optional[str] = None, after_seq: int = -1
    ) -> List[Dict[str, Any]]:
        """Events in sequence order, optionally filtered; skips torn lines."""
        path = self.events_path()
        if not path.exists():
            return []
        out: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "skipping corrupt event line %s:%d (truncated write?)",
                        path,
                        number,
                    )
                    continue
                if not isinstance(record, dict):
                    continue
                body = {k: v for k, v in record.items() if k != "sha256"}
                if record.get("sha256") != _payload_checksum(body):
                    logger.warning(
                        "skipping event line %s:%d with a bad checksum", path, number
                    )
                    continue
                if job_id is not None and record.get("job") != job_id:
                    continue
                if int(record.get("seq", 0)) <= after_seq:
                    continue
                out.append(record)
        out.sort(key=lambda record: int(record.get("seq", 0)))
        return out

    # -------------------------------------------------------------- plumbing
    def _atomic_write(self, path: Path, record: Dict[str, Any]) -> None:
        temp = path.with_name(f".{path.name}.tmp")
        save_json(temp, record)
        os.replace(temp, path)

    def _read_json(self, path: Path) -> Optional[Dict[str, Any]]:
        if not path.exists():
            return None
        try:
            record = load_json(path)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            logger.warning("skipping unreadable queue record %s: %s", path, error)
            return None
        return record if isinstance(record, dict) else None
