"""The node scheduler: ready nodes of different jobs interleave on a pool.

:class:`JobScheduler` pulls queued jobs from a :class:`~repro.scheduler.
jobs.JobQueue` (highest priority first), expands each into a
:class:`~repro.experiments.graph.GraphExecution`, and dispatches ready
nodes onto a bounded thread pool.  The concurrency model is deliberate:

* **across jobs** — up to ``workers`` jobs each have one node in flight,
  so two submitted specs provably interleave their independent stages;
* **within a job** — exactly one node at a time, in plan order, which is
  what keeps each job's numbers (routing-cache accounting included)
  bit-identical to a standalone ``execute_spec`` run.

A point node's process fan-out still happens *inside* the node (the spec's
engine policy), so a ``workers=2`` spec keeps its pool supervision — the
scheduler's threads only coordinate.

Failure semantics are the PR 7 contract untouched: point failures are
retried per ``RetryPolicy`` inside the node, journaled, and isolated to
their job (the job finishes ``partial``); only run-level errors (baseline
training, assembly) fail the job.  Every status change is appended to the
queue's event stream.  All waits are bounded (the ``unbounded-wait`` lint
rule covers this tree), so the daemon always notices stop requests and
cancellations promptly.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Dict, Optional

from repro.exceptions import ReproError, RunInterrupted
from repro.experiments.graph import GraphExecution, GraphNode
from repro.experiments.store import RunStore
from repro.obs import NULL_OBS, Observability
from repro.scheduler.jobs import Job, JobQueue, TERMINAL_STATES
from repro.utils.logging import get_logger

logger = get_logger("scheduler.scheduler")

#: Event names per node status (the observer wiring).
_NODE_EVENTS = {
    "running": "node-start",
    "done": "node-done",
    "reused": "node-reused",
    "skipped": "node-skipped",
    "failed": "node-failed",
    "cancelled": "node-cancelled",
}


class _ActiveJob:
    """Bookkeeping for one job the scheduler is currently executing."""

    def __init__(self, job: Job, execution: GraphExecution):
        self.job = job
        self.execution = execution
        self.future: Optional[Future] = None


class JobScheduler:
    """Dispatch ready graph nodes of queued jobs onto a worker pool."""

    def __init__(
        self,
        queue: JobQueue,
        store: RunStore,
        *,
        workers: int = 2,
        poll_s: float = 0.2,
        obs: Optional[Observability] = None,
    ):
        if workers < 1:
            raise ReproError(f"scheduler needs at least one worker, got {workers}")
        self.queue = queue
        self.store = store
        self.workers = int(workers)
        self.poll_s = float(poll_s)
        self.obs = obs if obs is not None else NULL_OBS
        self._active: Dict[str, _ActiveJob] = {}

    # -------------------------------------------------------------- observer
    def _observer_for(self, job_id: str):
        def observer(node: GraphNode, status: str, detail: str) -> None:
            event = _NODE_EVENTS.get(status)
            if event is not None:
                self.queue.append_event(
                    job_id, event, node=node.id, label=node.label, detail=detail
                )

        return observer

    # ------------------------------------------------------------- lifecycle
    def _admit(self) -> None:
        """Start queued jobs while worker slots are free (priority order)."""
        if len(self._active) >= self.workers:
            return
        for job in self.queue.jobs():
            if len(self._active) >= self.workers:
                break
            if job.job_id in self._active:
                continue
            if self.queue.state(job.job_id).get("state") != "queued":
                continue
            if self.queue.cancel_requested(job.job_id):
                self._finalize(job.job_id, "cancelled", "cancelled while queued")
                continue
            try:
                spec = job.spec()
                execution = GraphExecution(
                    spec,
                    store=self.store,
                    observer=self._observer_for(job.job_id),
                    install_signals=False,
                    obs=self.obs,
                    trace_context={"job": job.job_id},
                )
                self.queue.write_state(job.job_id, state="running")
                self.queue.append_event(job.job_id, "job-started")
                execution.start()
            except Exception as error:
                logger.warning("job %s failed to start: %s", job.job_id, error)
                self._finalize(
                    job.job_id, "failed", f"{type(error).__name__}: {error}"
                )
                continue
            active = _ActiveJob(job, execution)
            self._active[job.job_id] = active
            if execution.run_result is not None:
                # Complete-artifact short-circuit: nothing to schedule.
                self._finish_job(active)

    def _dispatch(self, pool: ThreadPoolExecutor) -> Dict[Future, str]:
        """Give every idle active job its next ready node."""
        futures: Dict[Future, str] = {}
        queued_depth: Optional[int] = None
        if self.obs.enabled:
            # One queue scan per dispatch round, not per node: the depth is
            # the number of submitted jobs still waiting for a worker slot.
            queued_depth = sum(
                1
                for job in self.queue.jobs()
                if self.queue.state(job.job_id).get("state") == "queued"
            )
            self.obs.metrics.gauge("scheduler.queue_depth").set(queued_depth)
            self.obs.metrics.gauge("scheduler.active_jobs").set(len(self._active))
        for job_id, active in list(self._active.items()):
            if active.future is not None:
                futures[active.future] = job_id
                continue
            if self.queue.cancel_requested(job_id):
                active.execution.cancel_pending()
                self._finalize(job_id, "cancelled", "cancelled mid-run")
                continue
            if active.execution.finished():
                self._finish_job(active)
                continue
            node_id = active.execution.next_ready()
            if node_id is None:
                # All remaining nodes are blocked on the one in flight
                # elsewhere — cannot happen with one node per job, so this
                # is a graph bug; fail loudly rather than spin.
                self._finalize(job_id, "failed", "graph deadlock: no ready node")
                continue
            if queued_depth is not None:
                # Safe to mutate: each job has at most one node in flight,
                # and we only write here, between that job's dispatches.
                active.execution.trace_context["queue_depth"] = queued_depth
            active.future = pool.submit(active.execution.run_node, node_id)
            futures[active.future] = job_id
        return futures

    def _collect(self, future: Future, job_id: str) -> None:
        """Fold one finished node future back into its job's bookkeeping."""
        active = self._active.get(job_id)
        if active is None:  # pragma: no cover - future outlived its job
            return
        active.future = None
        try:
            # The future is in wait()'s done set, so this never blocks.
            future.result(timeout=0)
        except RunInterrupted:
            # The assemble node persisted a partial artifact before raising.
            self._finalize(job_id, "partial", "interrupted; partial artifact saved")
            return
        except Exception as error:
            logger.warning("job %s failed: %s", job_id, error)
            self._finalize(job_id, "failed", f"{type(error).__name__}: {error}")
            return
        self.queue.write_state(
            job_id, state="running", nodes=dict(active.execution.status)
        )
        if active.execution.finished():
            self._finish_job(active)

    def _finish_job(self, active: _ActiveJob) -> None:
        result = active.execution.run_result
        if result is None:
            self._finalize(active.job.job_id, "failed", "run produced no result")
            return
        state = "partial" if result.failures else "done"
        detail = (
            f"{result.computed_points} computed, {result.reused_points} reused"
            + (f", {len(result.failures)} FAILED" if result.failures else "")
        )
        self._finalize(active.job.job_id, state, detail)

    def _finalize(self, job_id: str, state: str, detail: str = "") -> None:
        active = self._active.pop(job_id, None)
        nodes = dict(active.execution.status) if active is not None else None
        fields: Dict[str, Any] = {"state": state, "detail": detail}
        if nodes is not None:
            fields["nodes"] = nodes
        self.queue.write_state(job_id, **fields)
        self.queue.append_event(job_id, f"job-{state}", detail=detail)
        self.obs.metrics.counter(f"scheduler.jobs.{state}").inc()
        logger.info("job %s -> %s (%s)", job_id, state, detail)

    # ------------------------------------------------------------------- run
    def has_work(self) -> bool:
        """Anything active or admissible?"""
        if self._active:
            return True
        return any(
            self.queue.state(job.job_id).get("state") == "queued"
            for job in self.queue.jobs()
        )

    def run(
        self,
        stop_event: Optional[threading.Event] = None,
        *,
        drain: bool = False,
        idle_exit_s: Optional[float] = None,
    ) -> int:
        """The scheduler loop; returns the number of jobs it finalized.

        ``drain=True`` exits once the queue is empty and every active job
        is terminal; ``idle_exit_s`` exits after that much continuous idle
        time (a liveness backstop for CI).  A graceful stop requeues active
        jobs — their journaled progress resumes on the next daemon.
        """
        stop = stop_event or threading.Event()
        finalized_before = self._finalized_count()
        idle_since: Optional[float] = None
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-sched"
        ) as pool:
            while not stop.is_set():
                self._admit()
                futures = self._dispatch(pool)
                if not futures:
                    if drain and not self.has_work():
                        break
                    if not self.has_work():
                        if idle_since is None:
                            idle_since = time.monotonic()
                        elif (
                            idle_exit_s is not None
                            and time.monotonic() - idle_since >= idle_exit_s
                        ):
                            logger.info("idle for %.1fs; exiting", idle_exit_s)
                            break
                    else:
                        idle_since = None
                    # Bounded nap before re-polling the queue directory.
                    stop.wait(timeout=self.poll_s)
                    continue
                idle_since = None
                completed, _ = wait(
                    futures, timeout=self.poll_s, return_when=FIRST_COMPLETED
                )
                for future in completed:
                    self._collect(future, futures[future])
            # Graceful stop: put live jobs back for the next daemon.
            for job_id, active in list(self._active.items()):
                if active.future is not None:
                    active.future.cancel()
                self.queue.write_state(job_id, state="queued", detail="daemon stopped")
                self.queue.append_event(job_id, "job-requeued", detail="daemon stopped")
                del self._active[job_id]
        return self._finalized_count() - finalized_before

    def _finalized_count(self) -> int:
        return sum(
            1
            for job in self.queue.jobs()
            if self.queue.state(job.job_id).get("state") in TERMINAL_STATES
        )
