"""The job daemon front end (``python -m repro serve-jobs``).

A thin supervisor around :class:`~repro.scheduler.scheduler.JobScheduler`:
recover the queue (requeue jobs a previous daemon left mid-run), install
signal handlers that request a graceful stop, and run the scheduler loop.
Durability does not depend on the graceful path — ``kill -9`` at any
instant is recovered by the next daemon from the queue files, the run
journal, and the store.
"""

from __future__ import annotations

import signal
import threading
from typing import Optional, Union

from pathlib import Path

from repro.experiments.store import RunStore
from repro.scheduler.jobs import JobQueue
from repro.scheduler.scheduler import JobScheduler
from repro.utils.logging import get_logger

logger = get_logger("scheduler.daemon")

#: Queue directory used when none is given: a sibling of the run store.
DEFAULT_QUEUE_DIRNAME = "queue"


def default_queue_root(store_root: Union[str, Path]) -> Path:
    """The queue directory paired with a store root (``<store>/queue``)."""
    return Path(store_root) / DEFAULT_QUEUE_DIRNAME


def serve_jobs(
    store_root: Union[str, Path],
    queue_root: Optional[Union[str, Path]] = None,
    *,
    workers: int = 2,
    poll_s: float = 0.2,
    drain: bool = False,
    idle_exit_s: Optional[float] = None,
    obs=None,
) -> int:
    """Run the daemon until stopped; returns the number of jobs finalized.

    ``drain=True`` exits once the queue is empty (batch usage, CI);
    otherwise the daemon serves until SIGINT/SIGTERM, which stop it
    gracefully between nodes (active jobs are requeued with their
    journaled progress intact).  ``obs`` (an
    :class:`~repro.obs.Observability`) enables scheduler gauges/counters
    and per-node trace records; the CLI's ``--metrics`` flag wires it up
    and exports the snapshot on exit.
    """
    store = RunStore(store_root)
    queue = JobQueue(queue_root if queue_root is not None else default_queue_root(store_root))
    requeued = queue.recover()
    if requeued:
        logger.info("recovered %d job(s) from a previous daemon", len(requeued))
    scheduler = JobScheduler(queue, store, workers=workers, poll_s=poll_s, obs=obs)
    stop = threading.Event()

    def _request_stop(signum, frame):
        logger.info("signal %s received; stopping after in-flight nodes", signum)
        stop.set()

    previous = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _request_stop)
    except ValueError:
        # Not the main thread (embedded/test usage): rely on stop_event
        # semantics only; the queue files keep everything recoverable.
        logger.info("not on the main thread; daemon runs without signal handlers")
    logger.info(
        "serving jobs: store=%s queue=%s workers=%d%s",
        store.root,
        queue.root,
        workers,
        " (drain)" if drain else "",
    )
    try:
        finalized = scheduler.run(stop, drain=drain, idle_exit_s=idle_exit_s)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    logger.info("daemon exiting; %d job(s) finalized this run", finalized)
    return finalized
