"""Experiment orchestration: persistent job queue, scheduler, and daemon.

The package turns the spec pipeline into a long-running service.  Clients
submit :class:`~repro.experiments.spec.ExperimentSpec` s into a
file-backed priority :class:`~repro.scheduler.jobs.JobQueue`; the
:class:`~repro.scheduler.scheduler.JobScheduler` expands each job into its
:mod:`~repro.experiments.graph` DAG and dispatches ready nodes of
*different* jobs concurrently onto a worker pool, while each job's own
nodes run in plan order (which is what keeps the per-job numbers
bit-identical to ``execute_spec``).  Every node execution flows through
the PR 7 resilience contract — typed ``PointFailure`` s, ``RetryPolicy``
retries, journal appends — and lands in the shared multi-writer
:class:`~repro.experiments.store.RunStore`, so a daemon crash (even
``kill -9``) loses nothing: :meth:`~repro.scheduler.jobs.JobQueue.recover`
requeues in-flight jobs and their completed points resume from the
journal and store.

Front ends: ``python -m repro serve-jobs`` (the daemon) and the
``submit`` / ``status`` / ``cancel`` / ``watch`` CLI verbs.
"""

from repro.scheduler.jobs import JOB_STATES, Job, JobQueue
from repro.scheduler.scheduler import JobScheduler
from repro.scheduler.daemon import serve_jobs

__all__ = ["JOB_STATES", "Job", "JobQueue", "JobScheduler", "serve_jobs"]
