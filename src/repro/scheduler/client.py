"""Client-side views of the job queue: status rows and event tailing.

Everything here reads the queue directory and the run store directly — no
RPC to the daemon — so ``status`` and ``watch`` work whether the daemon is
alive, stopped, or was killed mid-run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

from repro.experiments.store import RunStore
from repro.scheduler.jobs import JobQueue, TERMINAL_STATES


def job_rows(queue: JobQueue, store: Optional[RunStore] = None) -> List[Dict[str, Any]]:
    """One machine-readable row per submitted job (priority order).

    Each row joins the queue's view (state, node statuses, cancellation
    flag) with the store's view of the job's artifact (complete / partial /
    failure count), so clients see both scheduling and science health.
    """
    artifact_rows: Dict[str, Dict[str, Any]] = {}
    if store is not None:
        artifact_rows = {row["fingerprint"]: row for row in store.list_runs()}
    rows = []
    for job in queue.jobs():
        state = queue.state(job.job_id)
        nodes = state.get("nodes") or {}
        terminal = {"done", "reused", "skipped", "failed", "cancelled"}
        row: Dict[str, Any] = {
            "job_id": job.job_id,
            "name": job.name,
            "state": state.get("state", "queued"),
            "priority": job.priority,
            "fingerprint": job.fingerprint,
            "detail": state.get("detail", ""),
            "cancel_requested": queue.cancel_requested(job.job_id),
            "nodes_total": len(nodes),
            "nodes_finished": sum(1 for status in nodes.values() if status in terminal),
            "nodes": nodes,
        }
        artifact = artifact_rows.get(job.fingerprint)
        if artifact is not None:
            row["artifact"] = {
                "complete": artifact["complete"],
                "points": artifact["points"],
                "failures": artifact["failures"],
            }
        rows.append(row)
    return rows


def render_job_rows(rows: List[Dict[str, Any]]) -> str:
    """Human-readable ``status`` table."""
    if not rows:
        return "no jobs submitted"
    header = f"{'job':<32} {'state':<10} {'prio':>4} {'nodes':>7}  detail"
    lines = [header, "-" * len(header)]
    for row in rows:
        nodes = (
            f"{row['nodes_finished']}/{row['nodes_total']}"
            if row["nodes_total"]
            else "-"
        )
        flags = " [cancel?]" if row["cancel_requested"] and row["state"] not in TERMINAL_STATES else ""
        artifact = row.get("artifact")
        health = ""
        if artifact is not None:
            health = " artifact=" + ("complete" if artifact["complete"] else "partial")
            if artifact["failures"]:
                health += f",{artifact['failures']} failed"
        lines.append(
            f"{row['job_id']:<32} {row['state']:<10} {row['priority']:>4} "
            f"{nodes:>7}  {row['detail']}{health}{flags}"
        )
    return "\n".join(lines)


def render_event(record: Dict[str, Any]) -> str:
    """One ``watch`` line for an event record."""
    parts = [f"[{record.get('seq', '?'):>5}]", record.get("job", "?"), record.get("event", "?")]
    if record.get("node"):
        parts.append(record["node"])
    if record.get("label"):
        parts.append(f"({record['label']})")
    if record.get("detail"):
        parts.append(f"- {record['detail']}")
    return " ".join(str(part) for part in parts)


def watch_events(
    queue: JobQueue,
    *,
    job_id: Optional[str] = None,
    timeout_s: float = 60.0,
    poll_s: float = 0.2,
    after_seq: int = -1,
) -> Iterator[Dict[str, Any]]:
    """Yield events as they land, until the watched job(s) go terminal.

    Watching one job stops at its ``job-<terminal>`` event; watching the
    whole queue stops when no job is queued or running.  ``timeout_s``
    bounds the total wait either way (never an unbounded tail).
    """
    deadline = time.monotonic() + timeout_s
    last_seq = after_seq
    while True:
        for record in queue.events(job_id=job_id, after_seq=last_seq):
            last_seq = max(last_seq, int(record.get("seq", 0)))
            yield record
            if job_id is not None and record.get("event", "").startswith("job-"):
                state = record["event"][len("job-"):]
                if state in TERMINAL_STATES:
                    return
        if job_id is None and not any(
            queue.state(job.job_id).get("state") not in TERMINAL_STATES
            for job in queue.jobs()
        ):
            return
        if time.monotonic() >= deadline:
            return
        time.sleep(poll_s)
