"""The paper's core contribution: rank clipping, group connection deletion,
and the combined Group Scissor pipeline."""

from repro.core.config import GroupDeletionConfig, RankClippingConfig, ScissorConfig
from repro.core.conversion import (
    convert_to_lowrank,
    current_ranks,
    default_clippable_layers,
    direct_lra,
)
from repro.core.group_deletion import (
    GroupConnectionDeleter,
    GroupDeletionCallback,
    GroupDeletionResult,
    GroupDeletionTrace,
    apply_deletion,
    effective_threshold,
    group_deletion_fractions,
    matrix_routing_report,
    matrix_values,
    run_lockstep_deletion,
)
from repro.core.groups import (
    CrossbarGroupLasso,
    GroupedMatrix,
    LockstepCrossbarGroupLasso,
    derive_layer_grouped_matrices,
    derive_matrix_groups,
    derive_network_groups,
    flatten_groups,
    group_summary,
    matrix_group_norms,
)
from repro.core.rank_clipping import (
    RankClipper,
    RankClippingCallback,
    RankClippingResult,
    RankClippingTrace,
    clip_layer_rank,
)
from repro.core.scissor import GroupScissor, GroupScissorResult

__all__ = [
    "RankClippingConfig",
    "GroupDeletionConfig",
    "ScissorConfig",
    "convert_to_lowrank",
    "direct_lra",
    "current_ranks",
    "default_clippable_layers",
    "clip_layer_rank",
    "RankClipper",
    "RankClippingCallback",
    "RankClippingResult",
    "RankClippingTrace",
    "GroupedMatrix",
    "CrossbarGroupLasso",
    "LockstepCrossbarGroupLasso",
    "matrix_group_norms",
    "derive_matrix_groups",
    "derive_layer_grouped_matrices",
    "derive_network_groups",
    "flatten_groups",
    "group_summary",
    "GroupConnectionDeleter",
    "GroupDeletionCallback",
    "GroupDeletionResult",
    "GroupDeletionTrace",
    "apply_deletion",
    "effective_threshold",
    "group_deletion_fractions",
    "matrix_routing_report",
    "matrix_values",
    "run_lockstep_deletion",
    "GroupScissor",
    "GroupScissorResult",
]
