"""Crossbar-aware weight groups (paper Figure 4).

Group connection deletion needs every weight of the network assigned to a
*row group* and a *column group* defined by the crossbar tiling:

* a **row group** is the set of weights of one crossbar input row inside one
  tile — if the whole group is zero, the routing wire feeding that crossbar
  input can be deleted;
* a **column group** is the set of weights of one crossbar output column
  inside one tile — if the whole group is zero, the routing wire collecting
  that crossbar output can be deleted.

The crossbar matrices are oriented inputs × outputs (see
:mod:`repro.hardware.mapper`).  The ``v`` factor of a low-rank layer is
stored in that orientation already; the ``u`` factor and dense weights are
stored transposed, so their group indices are transposed accordingly — the
``transpose`` argument below handles this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.hardware.tiling import TilingPlan, plan_tiling
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.network import Sequential
from repro.nn.parameter import Parameter
from repro.nn.regularization import LockstepRegularizer, Regularizer, WeightGroup
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class GroupedMatrix:
    """One crossbar matrix together with its tiling plan and weight groups.

    Attributes
    ----------
    name:
        Matrix name (``"<layer>_u"``, ``"<layer>_v"`` or ``"<layer>_w"``).
    layer_name:
        Owning layer.
    parameter:
        The parameter the matrix lives in.
    transpose:
        ``True`` when the crossbar matrix is the transpose of the parameter
        array (``u`` factors and dense weights).
    plan:
        Crossbar tiling of the matrix.
    groups:
        All row and column groups of the matrix.
    """

    name: str
    layer_name: str
    parameter: Parameter
    transpose: bool
    plan: TilingPlan
    groups: Tuple[WeightGroup, ...]

    def row_groups(self) -> List[WeightGroup]:
        """Only the row (input-wire) groups."""
        return [g for g in self.groups if g.kind == "row"]

    def column_groups(self) -> List[WeightGroup]:
        """Only the column (output-wire) groups."""
        return [g for g in self.groups if g.kind == "column"]

    def values(self) -> np.ndarray:
        """Current crossbar-matrix values (inputs × outputs orientation)."""
        data = self.parameter.data
        return data.T if self.transpose else data


def matrix_group_norms(
    values: np.ndarray, plan: TilingPlan
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """L2 norms of every row group and column group of a tiled matrix.

    Returns ``(row_norms, col_norms)`` with shapes
    ``(grid_rows, tile_rows, grid_cols)`` and ``(grid_rows, grid_cols,
    tile_cols)`` — one entry per routing wire — computed in two vectorized
    reductions over the block view instead of one Python-level
    ``np.linalg.norm`` call per group.  Returns ``None`` when the plan is
    padded (ragged edge tiles have no rectangular block view; callers fall
    back to the per-group loop).
    """
    blocks = plan.block_view(np.asarray(values))
    if blocks is None:
        return None
    squared = blocks * blocks
    return np.sqrt(squared.sum(axis=3)), np.sqrt(squared.sum(axis=1))


class CrossbarGroupLasso(Regularizer):
    """Vectorized group-Lasso over the row/column groups of tiled matrices.

    Numerically this is the same objective as wrapping the flattened
    :class:`~repro.nn.regularization.WeightGroup` list in a
    :class:`~repro.nn.regularization.GroupLassoRegularizer` — every weight
    belongs to exactly one row group and one column group, so its penalty
    gradient is ``λ·w·(1/max(‖row‖, eps) + 1/max(‖col‖, eps))`` — but the
    norms and gradients of a whole matrix are computed with a handful of
    array reductions instead of two Python loop iterations per group.
    Matrices with padded tiling plans keep the per-group formulation.
    """

    def __init__(
        self,
        grouped_matrices: Sequence["GroupedMatrix"],
        strength: float,
        *,
        eps: float = 1e-12,
    ):
        self.strength = check_non_negative(strength, "strength")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = float(eps)
        self._matrices: List[GroupedMatrix] = []
        self._fallback_groups: List[WeightGroup] = []
        for matrix in grouped_matrices:
            if matrix.plan.padded:
                self._fallback_groups.extend(matrix.groups)
            else:
                self._matrices.append(matrix)
        # Blocks + norms computed by the latest penalty() call, consumed (and
        # invalidated) by the next apply_gradients().  The trainer calls the
        # two back to back each step with no weight update in between, so the
        # shared computation halves the per-iteration regularizer cost; any
        # standalone apply_gradients() call recomputes from scratch.
        self._norms_cache: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = None

    def _block_norms(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        entries = []
        for matrix in self._matrices:
            blocks = matrix.plan.block_view(matrix.values())
            squared = blocks * blocks
            entries.append(
                (blocks, np.sqrt(squared.sum(axis=3)), np.sqrt(squared.sum(axis=1)))
            )
        return entries

    def penalty(self) -> float:
        if self.strength == 0.0:
            return 0.0
        entries = self._block_norms()
        self._norms_cache = entries
        total = 0.0
        for _, row_norms, col_norms in entries:
            total += float(row_norms.sum()) + float(col_norms.sum())
        total += sum(group.norm() for group in self._fallback_groups)
        return self.strength * total

    def apply_gradients(self) -> None:
        if self.strength == 0.0:
            return
        entries = self._norms_cache if self._norms_cache is not None else self._block_norms()
        self._norms_cache = None
        for matrix, (blocks, row_norms, col_norms) in zip(self._matrices, entries):
            plan = matrix.plan
            coef = (
                1.0 / np.maximum(row_norms, self.eps)[:, :, :, None]
                + 1.0 / np.maximum(col_norms, self.eps)[:, None, :, :]
            )
            grad = (self.strength * blocks * coef).reshape(
                plan.matrix_rows, plan.matrix_cols
            )
            matrix.parameter.grad += grad.T if matrix.transpose else grad
        for group in self._fallback_groups:
            values = group.values()
            norm = np.linalg.norm(values)
            group.parameter.grad[group.index] += (
                self.strength * values / max(norm, self.eps)
            )


class LockstepCrossbarGroupLasso(LockstepRegularizer):
    """Crossbar group Lasso over the ``(K, rows, cols)`` slabs of a stack.

    The lockstep counterpart of :class:`CrossbarGroupLasso`: the K sweep
    points of one architecture group share the same tiling plans, so the
    row/column group norms of all K points are computed with one set of
    5-D block reductions over the parameter slabs, and the penalty gradient
    — with one λ per point — is written back into the gradient slabs in a
    single broadcast multiply-add per matrix.  Row ``k`` of every reduction
    ranges over exactly the elements (in the same order) as the serial
    regularizer for point ``k``, so per-point penalties and gradients are
    bit-identical to K :class:`CrossbarGroupLasso` instances.

    Padded tiling plans keep the serial per-group formulation, and a λ grid
    containing a zero strength drops the whole stack to cached per-point
    serial regularizers (a zero-strength serial regularizer contributes
    nothing at all, which a slab-wide multiply by ``0.0`` would not exactly
    replicate for negative-zero gradients).

    Parameters
    ----------
    stack:
        The :class:`~repro.nn.batched.NetworkStack` the points ride; used to
        resolve each point's parameters to their slabs.
    grouped_per_point:
        One :func:`derive_network_groups` result per point, in stack order.
    strengths:
        One λ per point.
    """

    def __init__(
        self,
        stack,
        grouped_per_point: Sequence[Sequence["GroupedMatrix"]],
        strengths: Sequence[float],
        *,
        eps: float = 1e-12,
    ):
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = float(eps)
        self.stack = stack
        self._grouped: List[List[GroupedMatrix]] = [list(g) for g in grouped_per_point]
        self.strengths: List[float] = [
            check_non_negative(float(s), "strength") for s in strengths
        ]
        if len(self._grouped) != len(self.strengths):
            raise ConfigurationError(
                f"{len(self._grouped)} grouped-matrix lists but "
                f"{len(self.strengths)} strengths"
            )
        if len(self._grouped) != stack.num_points:
            raise ConfigurationError(
                f"{len(self._grouped)} points but the stack holds {stack.num_points}"
            )
        counts = {len(g) for g in self._grouped}
        if len(counts) != 1:
            raise ConfigurationError(
                "all points must penalize the same matrices (identical "
                "architectures yield identical groupings)"
            )
        for position in range(counts.pop()):
            plans = {
                (m.name, m.transpose, m.plan.matrix_rows, m.plan.matrix_cols,
                 m.plan.tile_rows, m.plan.tile_cols, m.plan.padded)
                for m in (g[position] for g in self._grouped)
            }
            if len(plans) != 1:
                raise ConfigurationError(
                    f"matrix position {position} differs across points: {sorted(plans)}"
                )
        self._vector_positions = [
            j for j, m in enumerate(self._grouped[0]) if not m.plan.padded
        ]
        self._fallback_positions = [
            j for j, m in enumerate(self._grouped[0]) if m.plan.padded
        ]
        self._norms_cache = None
        self._point_regs: Optional[List[CrossbarGroupLasso]] = None
        # position -> (values, grads) slab views; valid until a point drops
        # (slabs are updated in place, so the views stay live across steps).
        self._slab_views: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------ plumbing
    @property
    def num_points(self) -> int:
        """Number of points this regularizer still penalizes."""
        return len(self._grouped)

    def _slabs(self, position: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, grads)`` slabs of one matrix, crossbar-oriented ``(K, rows, cols)``."""
        cached = self._slab_views.get(position)
        if cached is not None:
            return cached
        matrix0 = self._grouped[0][position]
        slab, slot = self.stack.slab_pair(matrix0.parameter)
        if slot != 0:
            raise ConfigurationError("grouped_per_point must follow stack order")
        for k, grouped in enumerate(self._grouped):
            other, other_slot = self.stack.slab_pair(grouped[position].parameter)
            if other is not slab or other_slot != k:
                raise ConfigurationError(
                    "grouped matrices are not aligned with the stack's slabs"
                )
        if matrix0.transpose:
            views = slab.data.transpose(0, 2, 1), slab.grad.transpose(0, 2, 1)
        else:
            views = slab.data, slab.grad
        self._slab_views[position] = views
        return views

    def _all_positive(self) -> bool:
        return all(s > 0.0 for s in self.strengths)

    def _point_regularizers(self) -> List[CrossbarGroupLasso]:
        # Cached: the serial regularizers read/write through the per-point
        # Parameters (slab views), so the same instances stay valid across
        # steps — and each instance's own norms cache then links its
        # penalty() to the following apply_gradients(), like the serial
        # trainer's call pattern.
        if self._point_regs is None:
            self._point_regs = [
                CrossbarGroupLasso(grouped, strength, eps=self.eps)
                for grouped, strength in zip(self._grouped, self.strengths)
            ]
        return self._point_regs

    # ---------------------------------------------------------- evaluation
    def _block_norms(self):
        entries = []
        for position in self._vector_positions:
            plan = self._grouped[0][position].plan
            values, _ = self._slabs(position)
            blocks = values.reshape(
                self.num_points,
                plan.grid_rows,
                plan.tile_rows,
                plan.grid_cols,
                plan.tile_cols,
            )
            squared = blocks * blocks
            entries.append(
                (
                    position,
                    blocks,
                    np.sqrt(squared.sum(axis=4)),  # (K, gr, tr, gc) row norms
                    np.sqrt(squared.sum(axis=2)),  # (K, gr, gc, tc) col norms
                )
            )
        return entries

    def penalties(self) -> np.ndarray:
        k = self.num_points
        if not self._all_positive():
            return np.array([reg.penalty() for reg in self._point_regularizers()])
        entries = self._block_norms()
        self._norms_cache = entries
        totals = np.zeros(k)
        for _, _, row_norms, col_norms in entries:
            # One accumulate per matrix, like the serial regularizer, so the
            # float summation order matches per point.
            totals += (
                row_norms.reshape(k, -1).sum(axis=1)
                + col_norms.reshape(k, -1).sum(axis=1)
            )
        for slot, grouped in enumerate(self._grouped):
            if self._fallback_positions:
                # One flat sum across all padded matrices' groups, mirroring
                # the serial regularizer's accumulation order.
                totals[slot] += sum(
                    group.norm()
                    for position in self._fallback_positions
                    for group in grouped[position].groups
                )
        return np.asarray(self.strengths) * totals

    def apply_gradients(self) -> None:
        if not self._all_positive():
            for reg in self._point_regularizers():
                reg.apply_gradients()
            return
        entries = self._norms_cache if self._norms_cache is not None else self._block_norms()
        self._norms_cache = None
        k = self.num_points
        strengths = np.asarray(self.strengths).reshape(k, 1, 1, 1, 1)
        for position, blocks, row_norms, col_norms in entries:
            plan = self._grouped[0][position].plan
            # The norms are this call's private arrays (consumed from the
            # cache), so the clamped reciprocals can reuse their buffers.
            row_inv = np.maximum(row_norms, self.eps, out=row_norms)
            np.divide(1.0, row_inv, out=row_inv)
            col_inv = np.maximum(col_norms, self.eps, out=col_norms)
            np.divide(1.0, col_inv, out=col_inv)
            coef = row_inv[:, :, :, :, None] + col_inv[:, :, None, :, :]
            grad = strengths * blocks
            grad *= coef
            _, grad_slab = self._slabs(position)
            grad_slab += grad.reshape(k, plan.matrix_rows, plan.matrix_cols)
        for slot, grouped in enumerate(self._grouped):
            strength = self.strengths[slot]
            for position in self._fallback_positions:
                for group in grouped[position].groups:
                    values = group.values()
                    norm = np.linalg.norm(values)
                    group.parameter.grad[group.index] += (
                        strength * values / max(norm, self.eps)
                    )

    # ------------------------------------------------------- point handling
    def point_regularizer(self, slot: int) -> CrossbarGroupLasso:
        """The serial group Lasso for one point (used when it leaves the stack)."""
        return CrossbarGroupLasso(
            self._grouped[slot], self.strengths[slot], eps=self.eps
        )

    def drop_point(self, slot: int) -> None:
        """Forget a point that left the stack."""
        del self._grouped[slot]
        del self.strengths[slot]
        self._norms_cache = None
        self._point_regs = None
        self._slab_views.clear()


def _matrix_shape(parameter: Parameter, transpose: bool) -> Tuple[int, int]:
    rows, cols = parameter.data.shape
    return (cols, rows) if transpose else (rows, cols)


def _group_index(transpose: bool, row_sel, col_sel):
    """Translate a crossbar-matrix index into a parameter-array index."""
    return (col_sel, row_sel) if transpose else (row_sel, col_sel)


def derive_matrix_groups(
    parameter: Parameter,
    *,
    name: str,
    layer_name: str,
    transpose: bool,
    library: CrossbarLibrary = PAPER_LIBRARY,
) -> GroupedMatrix:
    """Tile one crossbar matrix and enumerate its row/column weight groups."""
    if parameter.data.ndim != 2:
        raise ConfigurationError(
            f"matrix {name!r} must be 2-D, got shape {parameter.data.shape}"
        )
    rows, cols = _matrix_shape(parameter, transpose)
    plan = plan_tiling(rows, cols, library=library, name=name)
    groups: List[WeightGroup] = []
    for tile_row, tile_col, row_slice, col_slice in plan.iter_tiles():
        tile_tag = f"{name}/tile{tile_row}_{tile_col}"
        for r in range(row_slice.start, row_slice.stop):
            groups.append(
                WeightGroup(
                    parameter=parameter,
                    index=_group_index(transpose, r, col_slice),
                    label=f"{tile_tag}/row{r}",
                    kind="row",
                )
            )
        for c in range(col_slice.start, col_slice.stop):
            groups.append(
                WeightGroup(
                    parameter=parameter,
                    index=_group_index(transpose, row_slice, c),
                    label=f"{tile_tag}/col{c}",
                    kind="column",
                )
            )
    return GroupedMatrix(
        name=name,
        layer_name=layer_name,
        parameter=parameter,
        transpose=transpose,
        plan=plan,
        groups=tuple(groups),
    )


def derive_layer_grouped_matrices(
    layer, *, library: CrossbarLibrary = PAPER_LIBRARY
) -> List[GroupedMatrix]:
    """Grouped crossbar matrices of one weighted layer (1 dense or 2 factors)."""
    if isinstance(layer, (LowRankLinear, LowRankConv2D)):
        return [
            derive_matrix_groups(
                layer.v,
                name=f"{layer.name}_v",
                layer_name=layer.name,
                transpose=False,
                library=library,
            ),
            derive_matrix_groups(
                layer.u,
                name=f"{layer.name}_u",
                layer_name=layer.name,
                transpose=True,
                library=library,
            ),
        ]
    if isinstance(layer, Linear):
        return [
            derive_matrix_groups(
                layer.weight,
                name=f"{layer.name}_w",
                layer_name=layer.name,
                transpose=True,
                library=library,
            )
        ]
    if isinstance(layer, Conv2D):
        # The conv kernel is 4-D; group deletion on dense conv layers operates
        # on the 2-D matrix view, which shares memory with the kernel only if
        # reshaped views were used.  To keep semantics simple, dense conv
        # layers are not grouped — convert them to LowRankConv2D first.
        raise ConfigurationError(
            f"dense Conv2D layer {layer.name!r} cannot be grouped directly; "
            "convert it to a LowRankConv2D (full rank) first"
        )
    raise ConfigurationError(
        f"layer {getattr(layer, 'name', layer)!r} of type {type(layer).__name__} "
        "has no crossbar matrix to group"
    )


def derive_network_groups(
    network: Sequential,
    *,
    library: CrossbarLibrary = PAPER_LIBRARY,
    layers: Optional[Sequence[str]] = None,
    include_small_matrices: bool = False,
) -> List[GroupedMatrix]:
    """Grouped crossbar matrices of a network.

    Parameters
    ----------
    network:
        The (rank-clipped) network.
    library:
        Crossbar library used for tiling.
    layers:
        Restrict to these layer names; ``None`` selects every layer that can
        be grouped (low-rank layers and dense ``Linear`` layers).
    include_small_matrices:
        Keep matrices that fit in a single crossbar.  The paper only applies
        group Lasso to matrices larger than the maximum crossbar, which is
        the default here.
    """
    wanted = None if layers is None else set(layers)
    grouped: List[GroupedMatrix] = []
    seen = set()
    for layer in network:
        if not isinstance(layer, (LowRankLinear, LowRankConv2D, Linear)):
            continue
        if wanted is not None and layer.name not in wanted:
            continue
        seen.add(layer.name)
        for matrix in derive_layer_grouped_matrices(layer, library=library):
            if not include_small_matrices and matrix.plan.is_single_crossbar:
                continue
            grouped.append(matrix)
    if wanted is not None:
        missing = wanted - seen
        if missing:
            raise ConfigurationError(f"layers not found or not groupable: {sorted(missing)}")
    return grouped


def flatten_groups(grouped_matrices: Sequence[GroupedMatrix]) -> List[WeightGroup]:
    """All weight groups of a list of grouped matrices, in order."""
    groups: List[WeightGroup] = []
    for matrix in grouped_matrices:
        groups.extend(matrix.groups)
    return groups


def group_summary(grouped_matrices: Sequence[GroupedMatrix]) -> Dict[str, Dict[str, int]]:
    """Per-matrix counts of row/column groups (useful for reports and tests)."""
    summary: Dict[str, Dict[str, int]] = {}
    for matrix in grouped_matrices:
        summary[matrix.name] = {
            "row_groups": len(matrix.row_groups()),
            "column_groups": len(matrix.column_groups()),
            "crossbars": matrix.plan.num_crossbars,
            "dense_wires": matrix.plan.dense_wire_count(),
        }
    return summary
