"""Crossbar-aware weight groups (paper Figure 4).

Group connection deletion needs every weight of the network assigned to a
*row group* and a *column group* defined by the crossbar tiling:

* a **row group** is the set of weights of one crossbar input row inside one
  tile — if the whole group is zero, the routing wire feeding that crossbar
  input can be deleted;
* a **column group** is the set of weights of one crossbar output column
  inside one tile — if the whole group is zero, the routing wire collecting
  that crossbar output can be deleted.

The crossbar matrices are oriented inputs × outputs (see
:mod:`repro.hardware.mapper`).  The ``v`` factor of a low-rank layer is
stored in that orientation already; the ``u`` factor and dense weights are
stored transposed, so their group indices are transposed accordingly — the
``transpose`` argument below handles this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.hardware.tiling import TilingPlan, plan_tiling
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.network import Sequential
from repro.nn.parameter import Parameter
from repro.nn.regularization import Regularizer, WeightGroup
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class GroupedMatrix:
    """One crossbar matrix together with its tiling plan and weight groups.

    Attributes
    ----------
    name:
        Matrix name (``"<layer>_u"``, ``"<layer>_v"`` or ``"<layer>_w"``).
    layer_name:
        Owning layer.
    parameter:
        The parameter the matrix lives in.
    transpose:
        ``True`` when the crossbar matrix is the transpose of the parameter
        array (``u`` factors and dense weights).
    plan:
        Crossbar tiling of the matrix.
    groups:
        All row and column groups of the matrix.
    """

    name: str
    layer_name: str
    parameter: Parameter
    transpose: bool
    plan: TilingPlan
    groups: Tuple[WeightGroup, ...]

    def row_groups(self) -> List[WeightGroup]:
        """Only the row (input-wire) groups."""
        return [g for g in self.groups if g.kind == "row"]

    def column_groups(self) -> List[WeightGroup]:
        """Only the column (output-wire) groups."""
        return [g for g in self.groups if g.kind == "column"]

    def values(self) -> np.ndarray:
        """Current crossbar-matrix values (inputs × outputs orientation)."""
        data = self.parameter.data
        return data.T if self.transpose else data


def matrix_group_norms(
    values: np.ndarray, plan: TilingPlan
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """L2 norms of every row group and column group of a tiled matrix.

    Returns ``(row_norms, col_norms)`` with shapes
    ``(grid_rows, tile_rows, grid_cols)`` and ``(grid_rows, grid_cols,
    tile_cols)`` — one entry per routing wire — computed in two vectorized
    reductions over the block view instead of one Python-level
    ``np.linalg.norm`` call per group.  Returns ``None`` when the plan is
    padded (ragged edge tiles have no rectangular block view; callers fall
    back to the per-group loop).
    """
    blocks = plan.block_view(np.asarray(values))
    if blocks is None:
        return None
    squared = blocks * blocks
    return np.sqrt(squared.sum(axis=3)), np.sqrt(squared.sum(axis=1))


class CrossbarGroupLasso(Regularizer):
    """Vectorized group-Lasso over the row/column groups of tiled matrices.

    Numerically this is the same objective as wrapping the flattened
    :class:`~repro.nn.regularization.WeightGroup` list in a
    :class:`~repro.nn.regularization.GroupLassoRegularizer` — every weight
    belongs to exactly one row group and one column group, so its penalty
    gradient is ``λ·w·(1/max(‖row‖, eps) + 1/max(‖col‖, eps))`` — but the
    norms and gradients of a whole matrix are computed with a handful of
    array reductions instead of two Python loop iterations per group.
    Matrices with padded tiling plans keep the per-group formulation.
    """

    def __init__(
        self,
        grouped_matrices: Sequence["GroupedMatrix"],
        strength: float,
        *,
        eps: float = 1e-12,
    ):
        self.strength = check_non_negative(strength, "strength")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = float(eps)
        self._matrices: List[GroupedMatrix] = []
        self._fallback_groups: List[WeightGroup] = []
        for matrix in grouped_matrices:
            if matrix.plan.padded:
                self._fallback_groups.extend(matrix.groups)
            else:
                self._matrices.append(matrix)
        # Blocks + norms computed by the latest penalty() call, consumed (and
        # invalidated) by the next apply_gradients().  The trainer calls the
        # two back to back each step with no weight update in between, so the
        # shared computation halves the per-iteration regularizer cost; any
        # standalone apply_gradients() call recomputes from scratch.
        self._norms_cache: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = None

    def _block_norms(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        entries = []
        for matrix in self._matrices:
            blocks = matrix.plan.block_view(matrix.values())
            squared = blocks * blocks
            entries.append(
                (blocks, np.sqrt(squared.sum(axis=3)), np.sqrt(squared.sum(axis=1)))
            )
        return entries

    def penalty(self) -> float:
        if self.strength == 0.0:
            return 0.0
        entries = self._block_norms()
        self._norms_cache = entries
        total = 0.0
        for _, row_norms, col_norms in entries:
            total += float(row_norms.sum()) + float(col_norms.sum())
        total += sum(group.norm() for group in self._fallback_groups)
        return self.strength * total

    def apply_gradients(self) -> None:
        if self.strength == 0.0:
            return
        entries = self._norms_cache if self._norms_cache is not None else self._block_norms()
        self._norms_cache = None
        for matrix, (blocks, row_norms, col_norms) in zip(self._matrices, entries):
            plan = matrix.plan
            coef = (
                1.0 / np.maximum(row_norms, self.eps)[:, :, :, None]
                + 1.0 / np.maximum(col_norms, self.eps)[:, None, :, :]
            )
            grad = (self.strength * blocks * coef).reshape(
                plan.matrix_rows, plan.matrix_cols
            )
            matrix.parameter.grad += grad.T if matrix.transpose else grad
        for group in self._fallback_groups:
            values = group.values()
            norm = np.linalg.norm(values)
            group.parameter.grad[group.index] += (
                self.strength * values / max(norm, self.eps)
            )


def _matrix_shape(parameter: Parameter, transpose: bool) -> Tuple[int, int]:
    rows, cols = parameter.data.shape
    return (cols, rows) if transpose else (rows, cols)


def _group_index(transpose: bool, row_sel, col_sel):
    """Translate a crossbar-matrix index into a parameter-array index."""
    return (col_sel, row_sel) if transpose else (row_sel, col_sel)


def derive_matrix_groups(
    parameter: Parameter,
    *,
    name: str,
    layer_name: str,
    transpose: bool,
    library: CrossbarLibrary = PAPER_LIBRARY,
) -> GroupedMatrix:
    """Tile one crossbar matrix and enumerate its row/column weight groups."""
    if parameter.data.ndim != 2:
        raise ConfigurationError(
            f"matrix {name!r} must be 2-D, got shape {parameter.data.shape}"
        )
    rows, cols = _matrix_shape(parameter, transpose)
    plan = plan_tiling(rows, cols, library=library, name=name)
    groups: List[WeightGroup] = []
    for tile_row, tile_col, row_slice, col_slice in plan.iter_tiles():
        tile_tag = f"{name}/tile{tile_row}_{tile_col}"
        for r in range(row_slice.start, row_slice.stop):
            groups.append(
                WeightGroup(
                    parameter=parameter,
                    index=_group_index(transpose, r, col_slice),
                    label=f"{tile_tag}/row{r}",
                    kind="row",
                )
            )
        for c in range(col_slice.start, col_slice.stop):
            groups.append(
                WeightGroup(
                    parameter=parameter,
                    index=_group_index(transpose, row_slice, c),
                    label=f"{tile_tag}/col{c}",
                    kind="column",
                )
            )
    return GroupedMatrix(
        name=name,
        layer_name=layer_name,
        parameter=parameter,
        transpose=transpose,
        plan=plan,
        groups=tuple(groups),
    )


def derive_layer_grouped_matrices(
    layer, *, library: CrossbarLibrary = PAPER_LIBRARY
) -> List[GroupedMatrix]:
    """Grouped crossbar matrices of one weighted layer (1 dense or 2 factors)."""
    if isinstance(layer, (LowRankLinear, LowRankConv2D)):
        return [
            derive_matrix_groups(
                layer.v,
                name=f"{layer.name}_v",
                layer_name=layer.name,
                transpose=False,
                library=library,
            ),
            derive_matrix_groups(
                layer.u,
                name=f"{layer.name}_u",
                layer_name=layer.name,
                transpose=True,
                library=library,
            ),
        ]
    if isinstance(layer, Linear):
        return [
            derive_matrix_groups(
                layer.weight,
                name=f"{layer.name}_w",
                layer_name=layer.name,
                transpose=True,
                library=library,
            )
        ]
    if isinstance(layer, Conv2D):
        # The conv kernel is 4-D; group deletion on dense conv layers operates
        # on the 2-D matrix view, which shares memory with the kernel only if
        # reshaped views were used.  To keep semantics simple, dense conv
        # layers are not grouped — convert them to LowRankConv2D first.
        raise ConfigurationError(
            f"dense Conv2D layer {layer.name!r} cannot be grouped directly; "
            "convert it to a LowRankConv2D (full rank) first"
        )
    raise ConfigurationError(
        f"layer {getattr(layer, 'name', layer)!r} of type {type(layer).__name__} "
        "has no crossbar matrix to group"
    )


def derive_network_groups(
    network: Sequential,
    *,
    library: CrossbarLibrary = PAPER_LIBRARY,
    layers: Optional[Sequence[str]] = None,
    include_small_matrices: bool = False,
) -> List[GroupedMatrix]:
    """Grouped crossbar matrices of a network.

    Parameters
    ----------
    network:
        The (rank-clipped) network.
    library:
        Crossbar library used for tiling.
    layers:
        Restrict to these layer names; ``None`` selects every layer that can
        be grouped (low-rank layers and dense ``Linear`` layers).
    include_small_matrices:
        Keep matrices that fit in a single crossbar.  The paper only applies
        group Lasso to matrices larger than the maximum crossbar, which is
        the default here.
    """
    wanted = None if layers is None else set(layers)
    grouped: List[GroupedMatrix] = []
    seen = set()
    for layer in network:
        if not isinstance(layer, (LowRankLinear, LowRankConv2D, Linear)):
            continue
        if wanted is not None and layer.name not in wanted:
            continue
        seen.add(layer.name)
        for matrix in derive_layer_grouped_matrices(layer, library=library):
            if not include_small_matrices and matrix.plan.is_single_crossbar:
                continue
            grouped.append(matrix)
    if wanted is not None:
        missing = wanted - seen
        if missing:
            raise ConfigurationError(f"layers not found or not groupable: {sorted(missing)}")
    return grouped


def flatten_groups(grouped_matrices: Sequence[GroupedMatrix]) -> List[WeightGroup]:
    """All weight groups of a list of grouped matrices, in order."""
    groups: List[WeightGroup] = []
    for matrix in grouped_matrices:
        groups.extend(matrix.groups)
    return groups


def group_summary(grouped_matrices: Sequence[GroupedMatrix]) -> Dict[str, Dict[str, int]]:
    """Per-matrix counts of row/column groups (useful for reports and tests)."""
    summary: Dict[str, Dict[str, int]] = {}
    for matrix in grouped_matrices:
        summary[matrix.name] = {
            "row_groups": len(matrix.row_groups()),
            "column_groups": len(matrix.column_groups()),
            "crossbars": matrix.plan.num_crossbars,
            "dense_wires": matrix.plan.dense_wire_count(),
        }
    return summary
