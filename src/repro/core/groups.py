"""Crossbar-aware weight groups (paper Figure 4).

Group connection deletion needs every weight of the network assigned to a
*row group* and a *column group* defined by the crossbar tiling:

* a **row group** is the set of weights of one crossbar input row inside one
  tile — if the whole group is zero, the routing wire feeding that crossbar
  input can be deleted;
* a **column group** is the set of weights of one crossbar output column
  inside one tile — if the whole group is zero, the routing wire collecting
  that crossbar output can be deleted.

The crossbar matrices are oriented inputs × outputs (see
:mod:`repro.hardware.mapper`).  The ``v`` factor of a low-rank layer is
stored in that orientation already; the ``u`` factor and dense weights are
stored transposed, so their group indices are transposed accordingly — the
``transpose`` argument below handles this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.hardware.tiling import TilingPlan, plan_tiling
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.network import Sequential
from repro.nn.parameter import Parameter
from repro.nn.regularization import WeightGroup


@dataclass(frozen=True)
class GroupedMatrix:
    """One crossbar matrix together with its tiling plan and weight groups.

    Attributes
    ----------
    name:
        Matrix name (``"<layer>_u"``, ``"<layer>_v"`` or ``"<layer>_w"``).
    layer_name:
        Owning layer.
    parameter:
        The parameter the matrix lives in.
    transpose:
        ``True`` when the crossbar matrix is the transpose of the parameter
        array (``u`` factors and dense weights).
    plan:
        Crossbar tiling of the matrix.
    groups:
        All row and column groups of the matrix.
    """

    name: str
    layer_name: str
    parameter: Parameter
    transpose: bool
    plan: TilingPlan
    groups: Tuple[WeightGroup, ...]

    def row_groups(self) -> List[WeightGroup]:
        """Only the row (input-wire) groups."""
        return [g for g in self.groups if g.kind == "row"]

    def column_groups(self) -> List[WeightGroup]:
        """Only the column (output-wire) groups."""
        return [g for g in self.groups if g.kind == "column"]


def _matrix_shape(parameter: Parameter, transpose: bool) -> Tuple[int, int]:
    rows, cols = parameter.data.shape
    return (cols, rows) if transpose else (rows, cols)


def _group_index(transpose: bool, row_sel, col_sel):
    """Translate a crossbar-matrix index into a parameter-array index."""
    return (col_sel, row_sel) if transpose else (row_sel, col_sel)


def derive_matrix_groups(
    parameter: Parameter,
    *,
    name: str,
    layer_name: str,
    transpose: bool,
    library: CrossbarLibrary = PAPER_LIBRARY,
) -> GroupedMatrix:
    """Tile one crossbar matrix and enumerate its row/column weight groups."""
    if parameter.data.ndim != 2:
        raise ConfigurationError(
            f"matrix {name!r} must be 2-D, got shape {parameter.data.shape}"
        )
    rows, cols = _matrix_shape(parameter, transpose)
    plan = plan_tiling(rows, cols, library=library, name=name)
    groups: List[WeightGroup] = []
    for tile_row, tile_col, row_slice, col_slice in plan.iter_tiles():
        tile_tag = f"{name}/tile{tile_row}_{tile_col}"
        for r in range(row_slice.start, row_slice.stop):
            groups.append(
                WeightGroup(
                    parameter=parameter,
                    index=_group_index(transpose, r, col_slice),
                    label=f"{tile_tag}/row{r}",
                    kind="row",
                )
            )
        for c in range(col_slice.start, col_slice.stop):
            groups.append(
                WeightGroup(
                    parameter=parameter,
                    index=_group_index(transpose, row_slice, c),
                    label=f"{tile_tag}/col{c}",
                    kind="column",
                )
            )
    return GroupedMatrix(
        name=name,
        layer_name=layer_name,
        parameter=parameter,
        transpose=transpose,
        plan=plan,
        groups=tuple(groups),
    )


def derive_layer_grouped_matrices(
    layer, *, library: CrossbarLibrary = PAPER_LIBRARY
) -> List[GroupedMatrix]:
    """Grouped crossbar matrices of one weighted layer (1 dense or 2 factors)."""
    if isinstance(layer, (LowRankLinear, LowRankConv2D)):
        return [
            derive_matrix_groups(
                layer.v,
                name=f"{layer.name}_v",
                layer_name=layer.name,
                transpose=False,
                library=library,
            ),
            derive_matrix_groups(
                layer.u,
                name=f"{layer.name}_u",
                layer_name=layer.name,
                transpose=True,
                library=library,
            ),
        ]
    if isinstance(layer, Linear):
        return [
            derive_matrix_groups(
                layer.weight,
                name=f"{layer.name}_w",
                layer_name=layer.name,
                transpose=True,
                library=library,
            )
        ]
    if isinstance(layer, Conv2D):
        # The conv kernel is 4-D; group deletion on dense conv layers operates
        # on the 2-D matrix view, which shares memory with the kernel only if
        # reshaped views were used.  To keep semantics simple, dense conv
        # layers are not grouped — convert them to LowRankConv2D first.
        raise ConfigurationError(
            f"dense Conv2D layer {layer.name!r} cannot be grouped directly; "
            "convert it to a LowRankConv2D (full rank) first"
        )
    raise ConfigurationError(
        f"layer {getattr(layer, 'name', layer)!r} of type {type(layer).__name__} "
        "has no crossbar matrix to group"
    )


def derive_network_groups(
    network: Sequential,
    *,
    library: CrossbarLibrary = PAPER_LIBRARY,
    layers: Optional[Sequence[str]] = None,
    include_small_matrices: bool = False,
) -> List[GroupedMatrix]:
    """Grouped crossbar matrices of a network.

    Parameters
    ----------
    network:
        The (rank-clipped) network.
    library:
        Crossbar library used for tiling.
    layers:
        Restrict to these layer names; ``None`` selects every layer that can
        be grouped (low-rank layers and dense ``Linear`` layers).
    include_small_matrices:
        Keep matrices that fit in a single crossbar.  The paper only applies
        group Lasso to matrices larger than the maximum crossbar, which is
        the default here.
    """
    wanted = None if layers is None else set(layers)
    grouped: List[GroupedMatrix] = []
    seen = set()
    for layer in network:
        if not isinstance(layer, (LowRankLinear, LowRankConv2D, Linear)):
            continue
        if wanted is not None and layer.name not in wanted:
            continue
        seen.add(layer.name)
        for matrix in derive_layer_grouped_matrices(layer, library=library):
            if not include_small_matrices and matrix.plan.is_single_crossbar:
                continue
            grouped.append(matrix)
    if wanted is not None:
        missing = wanted - seen
        if missing:
            raise ConfigurationError(f"layers not found or not groupable: {sorted(missing)}")
    return grouped


def flatten_groups(grouped_matrices: Sequence[GroupedMatrix]) -> List[WeightGroup]:
    """All weight groups of a list of grouped matrices, in order."""
    groups: List[WeightGroup] = []
    for matrix in grouped_matrices:
        groups.extend(matrix.groups)
    return groups


def group_summary(grouped_matrices: Sequence[GroupedMatrix]) -> Dict[str, Dict[str, int]]:
    """Per-matrix counts of row/column groups (useful for reports and tests)."""
    summary: Dict[str, Dict[str, int]] = {}
    for matrix in grouped_matrices:
        summary[matrix.name] = {
            "row_groups": len(matrix.row_groups()),
            "column_groups": len(matrix.column_groups()),
            "crossbars": matrix.plan.num_crossbars,
            "dense_wires": matrix.plan.dense_wire_count(),
        }
    return summary
