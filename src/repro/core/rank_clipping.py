"""Rank clipping (paper Section 3.1, Algorithm 2).

Rank clipping integrates low-rank approximation into training.  Every ``S``
iterations each factorized layer is examined: if the current factor ``U``
(``N × K``) can be projected onto a lower-rank subspace with reconstruction
error at most the tolerance ``ε``, the layer's rank is reduced by replacing

``U ← Û (N × K̂)``  and  ``Vᵀ ← V̂ᵀ · Vᵀ (K̂ × M)``

where ``Û · V̂ᵀ`` is the rank-``K̂`` approximation of ``U``.  Training then
continues and recovers the small perturbation before the next clip, letting
each layer converge to its own minimal rank without accuracy loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import RankClippingConfig
from repro.exceptions import ConfigurationError
from repro.lowrank.factorization import LowRankApproximator
from repro.nn.layers import LowRankConv2D, LowRankLinear
from repro.nn.network import Sequential
from repro.nn.trainer import Callback, Trainer
from repro.utils.logging import get_logger

logger = get_logger("core.rank_clipping")

LowRankLayer = (LowRankLinear, LowRankConv2D)


def clip_layer_rank(
    layer,
    tolerance: float,
    *,
    approximator: Optional[LowRankApproximator] = None,
    min_rank: int = 1,
) -> int:
    """Attempt one clipping step on a single factorized layer.

    Returns the layer's rank after the attempt (unchanged when no clipping
    was possible within the tolerance).
    """
    if not isinstance(layer, LowRankLayer):
        raise ConfigurationError(
            f"rank clipping requires a low-rank layer, got {type(layer).__name__}"
        )
    approximator = approximator or LowRankApproximator(method="pca")
    current_rank = layer.rank
    if current_rank <= min_rank:
        return current_rank
    new_rank = max(min_rank, approximator.minimal_rank(layer.u.data, tolerance))
    if new_rank >= current_rank:
        return current_rank
    factorization = approximator.factorize(layer.u.data, new_rank)
    # U ≈ Û·V̂ᵀ with Û: (N, K̂), V̂: (K, K̂).  The old Vᵀ (K × M) absorbs V̂:
    # new Vᵀ = V̂ᵀ·Vᵀ, i.e. new V = V·V̂.
    new_u = factorization.u
    new_v = layer.v.data @ factorization.v
    layer.set_factors(new_u, new_v)
    return layer.rank


@dataclass
class RankClippingTrace:
    """Time series recorded during rank clipping (the data behind Figure 3)."""

    iterations: List[int] = field(default_factory=list)
    ranks: Dict[str, List[int]] = field(default_factory=dict)
    accuracy: List[Optional[float]] = field(default_factory=list)
    full_ranks: Dict[str, int] = field(default_factory=dict)

    def record(self, iteration: int, ranks: Dict[str, int], accuracy: Optional[float]) -> None:
        """Append one observation."""
        self.iterations.append(int(iteration))
        for name, rank in ranks.items():
            self.ranks.setdefault(name, []).append(int(rank))
        self.accuracy.append(None if accuracy is None else float(accuracy))

    def rank_ratio(self, layer_name: str) -> List[float]:
        """Remaining rank over full rank for one layer (Figure 3's y-axis)."""
        full = self.full_ranks.get(layer_name)
        if not full:
            raise KeyError(f"no full rank recorded for layer {layer_name!r}")
        return [r / full for r in self.ranks.get(layer_name, [])]

    def final_ranks(self) -> Dict[str, int]:
        """Rank of every traced layer at the last observation."""
        return {name: series[-1] for name, series in self.ranks.items() if series}

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the trace."""
        return {
            "iterations": list(self.iterations),
            "ranks": {k: list(v) for k, v in self.ranks.items()},
            "accuracy": list(self.accuracy),
            "full_ranks": dict(self.full_ranks),
        }


class RankClippingCallback(Callback):
    """Trainer callback implementing the clip-every-``S``-iterations loop."""

    def __init__(
        self,
        layers: Sequence,
        config: RankClippingConfig,
        *,
        evaluate: bool = True,
    ):
        self.layers = list(layers)
        if not self.layers:
            raise ConfigurationError("rank clipping needs at least one low-rank layer")
        for layer in self.layers:
            if not isinstance(layer, LowRankLayer):
                raise ConfigurationError(
                    f"layer {getattr(layer, 'name', layer)!r} is not a low-rank layer"
                )
        self.config = config
        self.evaluate = bool(evaluate)
        self.approximator = LowRankApproximator(method=config.method, center=config.center)
        self.trace = RankClippingTrace(
            full_ranks={layer.name: layer.rank for layer in self.layers}
        )

    def _current_ranks(self) -> Dict[str, int]:
        return {layer.name: layer.rank for layer in self.layers}

    def _clip_all(self, trainer: Trainer) -> bool:
        """Clip every registered layer once; returns True if any rank changed."""
        changed = False
        for layer in self.layers:
            before = layer.rank
            after = clip_layer_rank(
                layer,
                self.config.tolerance,
                approximator=self.approximator,
                min_rank=self.config.min_rank,
            )
            if after < before:
                changed = True
                logger.debug("clipped %s: rank %d -> %d", layer.name, before, after)
        if changed:
            trainer.rebind_optimizer()
        return changed

    def on_train_begin(self, trainer: Trainer) -> None:
        accuracy = trainer.evaluate() if self.evaluate else None
        self.trace.record(trainer.iteration, self._current_ranks(), accuracy)

    def on_iteration_end(self, trainer: Trainer, iteration: int) -> None:
        if iteration % self.config.clip_interval != 0:
            return
        self._clip_all(trainer)
        accuracy = trainer.evaluate() if self.evaluate else None
        self.trace.record(iteration, self._current_ranks(), accuracy)


@dataclass
class RankClippingResult:
    """Outcome of a rank-clipping run."""

    network: Sequential
    trace: RankClippingTrace
    final_ranks: Dict[str, int]
    final_accuracy: Optional[float]
    baseline_accuracy: Optional[float] = None

    def accuracy_drop(self) -> Optional[float]:
        """Baseline minus final accuracy (negative when clipping improved it)."""
        if self.final_accuracy is None or self.baseline_accuracy is None:
            return None
        return self.baseline_accuracy - self.final_accuracy


class RankClipper:
    """High-level driver: convert a dense network and run the clipping loop.

    Parameters
    ----------
    config:
        Rank-clipping hyper-parameters (tolerance ``ε``, interval ``S``, …).
    """

    def __init__(self, config: RankClippingConfig = RankClippingConfig()):
        self.config = config

    def select_layers(self, network: Sequential) -> List:
        """The low-rank layers of ``network`` this configuration clips."""
        layers = [layer for layer in network if isinstance(layer, LowRankLayer)]
        if self.config.layers is not None:
            wanted = set(self.config.layers)
            layers = [layer for layer in layers if layer.name in wanted]
            missing = wanted - {layer.name for layer in layers}
            if missing:
                raise ConfigurationError(
                    f"configured layers not found as low-rank layers: {sorted(missing)}"
                )
        if not layers:
            raise ConfigurationError("network contains no low-rank layers to clip")
        return layers

    def run(
        self,
        network: Sequential,
        trainer_factory,
        *,
        baseline_accuracy: Optional[float] = None,
    ) -> RankClippingResult:
        """Run rank clipping on a network of low-rank layers.

        Parameters
        ----------
        network:
            Network whose clippable layers are already low-rank (use
            :func:`repro.core.conversion.convert_to_lowrank` first).
        trainer_factory:
            Callable ``(network, callbacks) -> Trainer`` building the training
            loop; keeping trainer construction outside lets experiments choose
            datasets, optimizers and schedules freely.
        baseline_accuracy:
            Accuracy of the original dense network, stored in the result for
            convenience.
        """
        layers = self.select_layers(network)
        callback = RankClippingCallback(layers, self.config)
        trainer = trainer_factory(network, [callback])
        trainer.run(self.config.max_iterations)
        final_accuracy = trainer.evaluate()
        callback.trace.record(
            trainer.iteration, {layer.name: layer.rank for layer in layers}, final_accuracy
        )
        return RankClippingResult(
            network=network,
            trace=callback.trace,
            final_ranks={layer.name: layer.rank for layer in layers},
            final_accuracy=final_accuracy,
            baseline_accuracy=baseline_accuracy,
        )
