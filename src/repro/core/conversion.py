"""Conversion between dense and low-rank factorized networks.

Rank clipping operates on networks whose weighted layers are the factorized
:class:`~repro.nn.layers.lowrank_linear.LowRankLinear` /
:class:`~repro.nn.layers.lowrank_conv.LowRankConv2D` types.  The conversion
here rebuilds a trained dense network with those layers (full-rank split, so
the converted network computes exactly the same function) and can also
truncate directly to given ranks, which is the paper's "Direct LRA"
baseline of Table 1.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lowrank.factorization import LowRankApproximator
from repro.nn.layers import Conv2D, Linear, LowRankConv2D, LowRankLinear
from repro.nn.network import Sequential


def _is_last_weighted_layer(network: Sequential, layer_name: str) -> bool:
    """True when ``layer_name`` is the final weighted layer (the classifier)."""
    weighted = [
        layer.name
        for layer in network
        if isinstance(layer, (Linear, Conv2D, LowRankLinear, LowRankConv2D))
    ]
    return bool(weighted) and weighted[-1] == layer_name


def default_clippable_layers(network: Sequential) -> tuple:
    """Names of layers the paper would clip: every weighted layer except the last.

    "The original rank in the last layer is determined by the number of
    classes so the further reduction is meaningless."
    """
    weighted = [
        layer.name for layer in network if isinstance(layer, (Linear, Conv2D))
    ]
    return tuple(weighted[:-1])


def convert_to_lowrank(
    network: Sequential,
    *,
    ranks: Optional[Mapping[str, int]] = None,
    layers: Optional[Sequence[str]] = None,
    method: str = "svd",
    name_suffix: str = "_lowrank",
) -> Sequential:
    """Return a copy of ``network`` with selected layers replaced by factorized ones.

    Parameters
    ----------
    network:
        The (typically trained) dense network.
    ranks:
        Optional per-layer rank; layers not listed are split at full rank
        (numerically exact).  Rank truncation without retraining reproduces
        the "Direct LRA" baseline.
    layers:
        Layer names to convert.  Defaults to every weighted layer except the
        final classifier (:func:`default_clippable_layers`).
    method:
        Factorization backend used for truncated splits (full-rank splits are
        exact for both backends).
    name_suffix:
        Suffix appended to the network name of the converted copy.
    """
    if layers is None:
        layers = default_clippable_layers(network)
    layers = tuple(layers)
    unknown = [name for name in layers if name not in {l.name for l in network}]
    if unknown:
        raise ConfigurationError(f"cannot convert unknown layers: {unknown}")
    ranks = dict(ranks or {})
    approximator = LowRankApproximator(method=method)

    converted = Sequential(name=f"{network.name}{name_suffix}")
    for layer in network:
        if layer.name not in layers:
            converted.add(_copy_layer(layer))
            continue
        if isinstance(layer, Linear):
            rank = ranks.get(layer.name)
            if rank is None:
                new_layer = LowRankLinear.from_dense(
                    layer.weight.data,
                    layer.bias.data if layer.bias is not None else None,
                    rank=None,
                    name=layer.name,
                )
            else:
                factorization = approximator.factorize(layer.weight.data, rank)
                new_layer = LowRankLinear(
                    layer.in_features,
                    layer.out_features,
                    rank=rank,
                    bias=layer.bias is not None,
                    name=layer.name,
                )
                new_layer.set_factors(factorization.u, factorization.v)
                if layer.bias is not None:
                    new_layer.bias.data = layer.bias.data.copy()
            converted.add(new_layer)
        elif isinstance(layer, Conv2D):
            rank = ranks.get(layer.name)
            if rank is None:
                new_layer = LowRankConv2D.from_conv(layer, rank=None, name=layer.name)
            else:
                factorization = approximator.factorize(layer.weight_matrix, rank)
                new_layer = LowRankConv2D(
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_size,
                    rank=rank,
                    stride=layer.stride,
                    padding=layer.padding,
                    bias=layer.bias is not None,
                    name=layer.name,
                )
                new_layer.set_factors(factorization.u, factorization.v)
                if layer.bias is not None:
                    new_layer.bias.data = layer.bias.data.copy()
            converted.add(new_layer)
        elif isinstance(layer, (LowRankLinear, LowRankConv2D)):
            converted.add(_copy_layer(layer))
        else:
            raise ConfigurationError(
                f"layer {layer.name!r} of type {type(layer).__name__} cannot be factorized"
            )
    return converted


def direct_lra(
    network: Sequential,
    ranks: Mapping[str, int],
    *,
    method: str = "pca",
) -> Sequential:
    """Paper's "Direct LRA" baseline: truncate a trained network without retraining."""
    if not ranks:
        raise ConfigurationError("direct_lra requires at least one layer rank")
    return convert_to_lowrank(
        network, ranks=ranks, layers=tuple(ranks.keys()), method=method, name_suffix="_direct_lra"
    )


def current_ranks(network: Sequential) -> Dict[str, int]:
    """Return the rank of every low-rank layer in ``network``."""
    return {
        layer.name: layer.rank
        for layer in network
        if isinstance(layer, (LowRankLinear, LowRankConv2D))
    }


def _copy_layer(layer):
    """Structural copy of a layer with identical parameter values."""
    import copy

    clone = copy.deepcopy(layer)
    clone.training = False
    return clone
