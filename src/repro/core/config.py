"""Configuration objects for the Group Scissor pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RankClippingConfig:
    """Parameters of rank clipping (paper Algorithm 2).

    Attributes
    ----------
    tolerance:
        Tolerable clipping error ``ε``: the maximum relative reconstruction
        error allowed by a single clipping step (paper uses 0.01–0.03).
    clip_interval:
        Number of training iterations ``S`` between clipping attempts.
    max_iterations:
        Total number of training iterations ``I`` for the clip-and-train loop.
    method:
        Low-rank backend, ``"pca"`` (paper default) or ``"svd"``.
    layers:
        Names of the layers to clip.  ``None`` clips every low-rank layer in
        the network (the paper excludes the final classifier layer, which the
        conversion step already leaves dense).
    min_rank:
        Lower bound on the clipped rank of any layer.
    center:
        Mean-centre rows in the PCA backend (Algorithm 1's literal form).
    """

    tolerance: float = 0.03
    clip_interval: int = 500
    max_iterations: int = 30000
    method: str = "pca"
    layers: Optional[Tuple[str, ...]] = None
    min_rank: int = 1
    center: bool = False

    def __post_init__(self):
        if not (0.0 <= self.tolerance <= 1.0):
            raise ConfigurationError(f"tolerance must be in [0, 1], got {self.tolerance}")
        if self.clip_interval < 1:
            raise ConfigurationError(f"clip_interval must be >= 1, got {self.clip_interval}")
        if self.max_iterations < 0:
            raise ConfigurationError(f"max_iterations must be >= 0, got {self.max_iterations}")
        if self.method not in ("pca", "svd"):
            raise ConfigurationError(f"method must be 'pca' or 'svd', got {self.method!r}")
        if self.min_rank < 1:
            raise ConfigurationError(f"min_rank must be >= 1, got {self.min_rank}")
        if self.layers is not None and len(self.layers) == 0:
            raise ConfigurationError("layers must be None or a non-empty tuple of names")


@dataclass(frozen=True)
class GroupDeletionConfig:
    """Parameters of group connection deletion (paper Section 3.2).

    Attributes
    ----------
    strength:
        Group-Lasso weight ``λ`` in Eq. (4); larger values delete more wires
        at a higher accuracy cost.
    iterations:
        Training iterations with the group-Lasso penalty active.
    finetune_iterations:
        Iterations of masked fine-tuning after deletion (penalty removed).
    zero_threshold:
        A group whose L2 norm falls at or below this value is deleted.
    relative_threshold:
        Additionally delete groups whose norm is at or below
        ``relative_threshold × (largest group norm in the same matrix)``.
        Sub-gradient SGD shrinks pruned groups towards zero but rarely makes
        them exactly zero in a finite number of iterations, so the effective
        deletion threshold per matrix is
        ``max(zero_threshold, relative_threshold · max_norm)``.
    include_small_matrices:
        Also regularize matrices that fit in a single crossbar.  The paper
        states it only deletes matrices "beyond the largest size of MBC";
        enabling this extends deletion to every matrix.
    layers:
        Restrict deletion to these layer names (``None`` = all low-rank and
        dense weighted layers).
    """

    strength: float = 1e-3
    iterations: int = 3000
    finetune_iterations: int = 1000
    zero_threshold: float = 1e-4
    relative_threshold: float = 0.05
    include_small_matrices: bool = False
    layers: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.strength < 0:
            raise ConfigurationError(f"strength must be >= 0, got {self.strength}")
        if self.iterations < 0:
            raise ConfigurationError(f"iterations must be >= 0, got {self.iterations}")
        if self.finetune_iterations < 0:
            raise ConfigurationError(
                f"finetune_iterations must be >= 0, got {self.finetune_iterations}"
            )
        if self.zero_threshold < 0:
            raise ConfigurationError(
                f"zero_threshold must be >= 0, got {self.zero_threshold}"
            )
        if not (0.0 <= self.relative_threshold < 1.0):
            raise ConfigurationError(
                f"relative_threshold must be in [0, 1), got {self.relative_threshold}"
            )
        if self.layers is not None and len(self.layers) == 0:
            raise ConfigurationError("layers must be None or a non-empty tuple of names")


@dataclass(frozen=True)
class ScissorConfig:
    """End-to-end Group Scissor configuration: rank clipping then deletion."""

    rank_clipping: RankClippingConfig = field(default_factory=RankClippingConfig)
    group_deletion: GroupDeletionConfig = field(default_factory=GroupDeletionConfig)
    exclude_layers: Tuple[str, ...] = ()

    def __post_init__(self):
        if not isinstance(self.rank_clipping, RankClippingConfig):
            raise ConfigurationError("rank_clipping must be a RankClippingConfig")
        if not isinstance(self.group_deletion, GroupDeletionConfig):
            raise ConfigurationError("group_deletion must be a GroupDeletionConfig")
