"""Group connection deletion (paper Section 3.2).

Starting from a (typically rank-clipped) network, group-Lasso regularization
is applied to every crossbar row group and column group of the big weight
matrices.  Training with the penalty drives many groups to all-zeros; those
groups are then deleted (zeroed and frozen with a pruning mask) so the
corresponding routing wires disappear, and the sparse network is fine-tuned
to recover accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import GroupDeletionConfig
from repro.core.groups import GroupedMatrix, derive_network_groups, flatten_groups
from repro.exceptions import ConfigurationError
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.hardware.routing import RoutingReport, count_remaining_wires
from repro.nn.network import Sequential
from repro.nn.regularization import GroupLassoRegularizer
from repro.nn.trainer import Callback, Trainer
from repro.utils.logging import get_logger

logger = get_logger("core.group_deletion")


def matrix_values(matrix: GroupedMatrix) -> np.ndarray:
    """Current crossbar-matrix values of a grouped matrix (inputs × outputs)."""
    data = matrix.parameter.data
    return data.T if matrix.transpose else data


def matrix_routing_report(
    matrix: GroupedMatrix, *, zero_threshold: float = 0.0
) -> RoutingReport:
    """Routing report of one grouped matrix for its current weights."""
    return RoutingReport(
        name=matrix.name,
        dense_wires=matrix.plan.dense_wire_count(),
        remaining_wires=count_remaining_wires(
            matrix_values(matrix), matrix.plan, zero_threshold=zero_threshold
        ),
    )


def effective_threshold(
    matrix: GroupedMatrix, *, zero_threshold: float, relative_threshold: float
) -> float:
    """Deletion threshold applied to group norms of one matrix.

    Sub-gradient descent shrinks pruned groups towards (but rarely exactly to)
    zero, so the absolute ``zero_threshold`` is complemented by a threshold
    relative to the largest group norm in the matrix — a group this much
    smaller than the strongest group in its matrix is considered deleted.
    """
    if relative_threshold <= 0.0 or not matrix.groups:
        return zero_threshold
    max_norm = max(group.norm() for group in matrix.groups)
    return max(zero_threshold, relative_threshold * max_norm)


def group_deletion_fractions(
    matrix: GroupedMatrix, *, zero_threshold: float, relative_threshold: float
) -> float:
    """Fraction of the matrix's routing wires that would be deleted right now.

    Every row/column group guards exactly one routing wire, so the fraction of
    groups at or below the effective threshold equals the fraction of
    deletable wires (Figure 5's y-axis).
    """
    if not matrix.groups:
        return 0.0
    threshold = effective_threshold(
        matrix, zero_threshold=zero_threshold, relative_threshold=relative_threshold
    )
    below = sum(1 for group in matrix.groups if group.norm() <= threshold)
    return below / len(matrix.groups)


@dataclass
class GroupDeletionTrace:
    """Time series recorded while the group-Lasso penalty is active (Figure 5)."""

    iterations: List[int] = field(default_factory=list)
    deleted_wire_fraction: Dict[str, List[float]] = field(default_factory=dict)
    accuracy: List[Optional[float]] = field(default_factory=list)

    def record(
        self, iteration: int, fractions: Dict[str, float], accuracy: Optional[float]
    ) -> None:
        """Append one observation (per-matrix deleted-wire fractions + accuracy)."""
        self.iterations.append(int(iteration))
        for name, fraction in fractions.items():
            self.deleted_wire_fraction.setdefault(name, []).append(float(fraction))
        self.accuracy.append(None if accuracy is None else float(accuracy))

    def final_deleted_fractions(self) -> Dict[str, float]:
        """Deleted-wire fraction of every matrix at the last observation."""
        return {k: v[-1] for k, v in self.deleted_wire_fraction.items() if v}

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the trace."""
        return {
            "iterations": list(self.iterations),
            "deleted_wire_fraction": {k: list(v) for k, v in self.deleted_wire_fraction.items()},
            "accuracy": list(self.accuracy),
        }


class GroupDeletionCallback(Callback):
    """Records deleted-wire fractions and accuracy during penalized training."""

    def __init__(
        self,
        grouped_matrices: Sequence[GroupedMatrix],
        *,
        record_interval: int = 100,
        zero_threshold: float = 1e-4,
        relative_threshold: float = 0.05,
        evaluate: bool = True,
    ):
        if record_interval < 1:
            raise ConfigurationError(f"record_interval must be >= 1, got {record_interval}")
        self.grouped_matrices = list(grouped_matrices)
        self.record_interval = int(record_interval)
        self.zero_threshold = float(zero_threshold)
        self.relative_threshold = float(relative_threshold)
        self.evaluate = bool(evaluate)
        self.trace = GroupDeletionTrace()

    def _fractions(self) -> Dict[str, float]:
        return {
            matrix.name: group_deletion_fractions(
                matrix,
                zero_threshold=self.zero_threshold,
                relative_threshold=self.relative_threshold,
            )
            for matrix in self.grouped_matrices
        }

    def on_train_begin(self, trainer: Trainer) -> None:
        accuracy = trainer.evaluate() if self.evaluate else None
        self.trace.record(trainer.iteration, self._fractions(), accuracy)

    def on_iteration_end(self, trainer: Trainer, iteration: int) -> None:
        if iteration % self.record_interval != 0:
            return
        accuracy = trainer.evaluate() if self.evaluate else None
        self.trace.record(iteration, self._fractions(), accuracy)


def apply_deletion(
    grouped_matrices: Sequence[GroupedMatrix],
    *,
    zero_threshold: float,
    relative_threshold: float = 0.0,
) -> Dict[str, int]:
    """Zero out and freeze every (near-)zero group; returns deleted-group counts.

    Groups whose L2 norm is at or below the matrix's effective threshold (see
    :func:`effective_threshold`) are set to exactly zero and excluded from
    future updates via the parameter's pruning mask, so fine-tuning cannot
    resurrect a deleted routing wire.
    """
    deleted_counts: Dict[str, int] = {}
    masks: Dict[int, np.ndarray] = {}
    parameters: Dict[int, object] = {}
    for matrix in grouped_matrices:
        key = id(matrix.parameter)
        if key not in masks:
            existing = matrix.parameter.mask
            masks[key] = (
                np.ones(matrix.parameter.data.shape, dtype=bool)
                if existing is None
                else existing.copy()
            )
            parameters[key] = matrix.parameter
        threshold = effective_threshold(
            matrix, zero_threshold=zero_threshold, relative_threshold=relative_threshold
        )
        deleted = 0
        for group in matrix.groups:
            if group.norm() <= threshold:
                group.zero_out()
                masks[key][group.index] = False
                deleted += 1
        deleted_counts[matrix.name] = deleted
    for key, mask in masks.items():
        parameters[key].set_mask(mask)
    return deleted_counts


@dataclass
class GroupDeletionResult:
    """Outcome of a group-connection-deletion run."""

    network: Sequential
    trace: GroupDeletionTrace
    routing_reports: Dict[str, RoutingReport]
    deleted_groups: Dict[str, int]
    accuracy_before: Optional[float]
    accuracy_after_deletion: Optional[float]
    accuracy_after_finetune: Optional[float]

    def wire_fractions(self) -> Dict[str, float]:
        """Remaining-wire fraction per matrix (the paper's "% wires" row)."""
        return {name: report.wire_fraction for name, report in self.routing_reports.items()}

    def routing_area_fractions(self) -> Dict[str, float]:
        """Remaining routing-area fraction per matrix (Eq. 8)."""
        return {name: report.area_fraction for name, report in self.routing_reports.items()}

    def mean_wire_fraction(self) -> float:
        """Average remaining-wire fraction across matrices."""
        reports = list(self.routing_reports.values())
        if not reports:
            return 1.0
        return float(np.mean([r.wire_fraction for r in reports]))

    def mean_routing_area_fraction(self) -> float:
        """Average remaining routing-area fraction across matrices."""
        reports = list(self.routing_reports.values())
        if not reports:
            return 1.0
        return float(np.mean([r.area_fraction for r in reports]))


class GroupConnectionDeleter:
    """High-level driver for group connection deletion."""

    def __init__(
        self,
        config: GroupDeletionConfig = GroupDeletionConfig(),
        *,
        library: CrossbarLibrary = PAPER_LIBRARY,
        record_interval: int = 100,
    ):
        self.config = config
        self.library = library
        self.record_interval = int(record_interval)

    def derive_groups(self, network: Sequential) -> List[GroupedMatrix]:
        """Grouped crossbar matrices this configuration penalizes."""
        return derive_network_groups(
            network,
            library=self.library,
            layers=self.config.layers,
            include_small_matrices=self.config.include_small_matrices,
        )

    def run(self, network: Sequential, trainer_factory) -> GroupDeletionResult:
        """Run penalized training, deletion and fine-tuning on ``network``.

        ``trainer_factory`` is a callable ``(network, callbacks) -> Trainer``.
        """
        grouped = self.derive_groups(network)
        if not grouped:
            raise ConfigurationError(
                "no crossbar matrices selected for deletion; "
                "set include_small_matrices=True or check the layer list"
            )
        callback = GroupDeletionCallback(
            grouped,
            record_interval=self.record_interval,
            zero_threshold=self.config.zero_threshold,
            relative_threshold=self.config.relative_threshold,
        )
        trainer = trainer_factory(network, [callback])
        regularizer = GroupLassoRegularizer(flatten_groups(grouped), self.config.strength)
        trainer.add_regularizer(regularizer)
        accuracy_before = trainer.evaluate()
        trainer.run(self.config.iterations)
        trainer.remove_regularizer(regularizer)

        deleted = apply_deletion(
            grouped,
            zero_threshold=self.config.zero_threshold,
            relative_threshold=self.config.relative_threshold,
        )
        accuracy_after_deletion = trainer.evaluate()
        logger.info(
            "deleted %d groups across %d matrices",
            sum(deleted.values()),
            len(grouped),
        )
        if self.config.finetune_iterations > 0:
            trainer.run(self.config.finetune_iterations)
        accuracy_after_finetune = trainer.evaluate()

        reports = {
            matrix.name: matrix_routing_report(matrix, zero_threshold=0.0)
            for matrix in grouped
        }
        return GroupDeletionResult(
            network=network,
            trace=callback.trace,
            routing_reports=reports,
            deleted_groups=deleted,
            accuracy_before=accuracy_before,
            accuracy_after_deletion=accuracy_after_deletion,
            accuracy_after_finetune=accuracy_after_finetune,
        )
