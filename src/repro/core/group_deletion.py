"""Group connection deletion (paper Section 3.2).

Starting from a (typically rank-clipped) network, group-Lasso regularization
is applied to every crossbar row group and column group of the big weight
matrices.  Training with the penalty drives many groups to all-zeros; those
groups are then deleted (zeroed and frozen with a pruning mask) so the
corresponding routing wires disappear, and the sparse network is fine-tuned
to recover accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import GroupDeletionConfig
from repro.core.groups import (
    CrossbarGroupLasso,
    GroupedMatrix,
    LockstepCrossbarGroupLasso,
    derive_network_groups,
    flatten_groups,
    matrix_group_norms,
)
from repro.exceptions import ConfigurationError
from repro.hardware.library import PAPER_LIBRARY, CrossbarLibrary
from repro.hardware.routing import (
    RoutingAnalysisCache,
    RoutingReport,
    count_remaining_wires,
)
from repro.nn.network import Sequential
from repro.nn.regularization import GroupLassoRegularizer, PerPointRegularizers
from repro.nn.trainer import Callback, Trainer
from repro.utils.logging import get_logger

logger = get_logger("core.group_deletion")


def matrix_values(matrix: GroupedMatrix) -> np.ndarray:
    """Current crossbar-matrix values of a grouped matrix (inputs × outputs)."""
    return matrix.values()


def matrix_routing_report(
    matrix: GroupedMatrix,
    *,
    zero_threshold: float = 0.0,
    cache: Optional[RoutingAnalysisCache] = None,
) -> RoutingReport:
    """Routing report of one grouped matrix for its current weights."""
    if cache is not None:
        return cache.analyze(
            matrix.values(), matrix.plan, zero_threshold=zero_threshold, name=matrix.name
        )
    return RoutingReport(
        name=matrix.name,
        dense_wires=matrix.plan.dense_wire_count(),
        remaining_wires=count_remaining_wires(
            matrix.values(), matrix.plan, zero_threshold=zero_threshold
        ),
    )


def _flat_group_norms(matrix: GroupedMatrix) -> Optional[np.ndarray]:
    """All row+column group norms of a matrix as one flat vectorized array."""
    norms = matrix_group_norms(matrix.values(), matrix.plan)
    if norms is None:
        return None
    row_norms, col_norms = norms
    return np.concatenate([row_norms.ravel(), col_norms.ravel()])


def effective_threshold(
    matrix: GroupedMatrix, *, zero_threshold: float, relative_threshold: float
) -> float:
    """Deletion threshold applied to group norms of one matrix.

    Sub-gradient descent shrinks pruned groups towards (but rarely exactly to)
    zero, so the absolute ``zero_threshold`` is complemented by a threshold
    relative to the largest group norm in the matrix — a group this much
    smaller than the strongest group in its matrix is considered deleted.
    """
    if relative_threshold <= 0.0 or not matrix.groups:
        return zero_threshold
    norms = _flat_group_norms(matrix)
    if norms is not None:
        max_norm = float(norms.max())
    else:
        max_norm = max(group.norm() for group in matrix.groups)
    return max(zero_threshold, relative_threshold * max_norm)


def group_deletion_fractions(
    matrix: GroupedMatrix,
    *,
    zero_threshold: float,
    relative_threshold: float,
    vectorized: bool = True,
) -> float:
    """Fraction of the matrix's routing wires that would be deleted right now.

    Every row/column group guards exactly one routing wire, so the fraction of
    groups at or below the effective threshold equals the fraction of
    deletable wires (Figure 5's y-axis).  The default path computes all group
    norms in two block reductions; ``vectorized=False`` (or a padded tiling
    plan) keeps the original per-group loop.
    """
    if not matrix.groups:
        return 0.0
    norms = _flat_group_norms(matrix) if vectorized else None
    if norms is not None:
        threshold = zero_threshold
        if relative_threshold > 0.0:
            threshold = max(zero_threshold, relative_threshold * float(norms.max()))
        return float(np.count_nonzero(norms <= threshold)) / norms.size
    threshold = effective_threshold(
        matrix, zero_threshold=zero_threshold, relative_threshold=relative_threshold
    )
    below = sum(1 for group in matrix.groups if group.norm() <= threshold)
    return below / len(matrix.groups)


@dataclass
class GroupDeletionTrace:
    """Time series recorded while the group-Lasso penalty is active (Figure 5)."""

    iterations: List[int] = field(default_factory=list)
    deleted_wire_fraction: Dict[str, List[float]] = field(default_factory=dict)
    accuracy: List[Optional[float]] = field(default_factory=list)
    remaining_wire_fraction: Dict[str, List[float]] = field(default_factory=dict)

    def record(
        self,
        iteration: int,
        fractions: Dict[str, float],
        accuracy: Optional[float],
        wire_fractions: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append one observation (per-matrix deleted-wire fractions + accuracy).

        ``wire_fractions`` optionally carries the *actual* remaining-wire
        fraction of every matrix (from a routing analysis of the current
        weights), complementing the norm-threshold-based deleted fraction.
        """
        self.iterations.append(int(iteration))
        for name, fraction in fractions.items():
            self.deleted_wire_fraction.setdefault(name, []).append(float(fraction))
        self.accuracy.append(None if accuracy is None else float(accuracy))
        if wire_fractions is not None:
            for name, fraction in wire_fractions.items():
                self.remaining_wire_fraction.setdefault(name, []).append(float(fraction))

    def final_deleted_fractions(self) -> Dict[str, float]:
        """Deleted-wire fraction of every matrix at the last observation."""
        return {k: v[-1] for k, v in self.deleted_wire_fraction.items() if v}

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view of the trace."""
        return {
            "iterations": list(self.iterations),
            "deleted_wire_fraction": {k: list(v) for k, v in self.deleted_wire_fraction.items()},
            "accuracy": list(self.accuracy),
            "remaining_wire_fraction": {
                k: list(v) for k, v in self.remaining_wire_fraction.items()
            },
        }


class GroupDeletionCallback(Callback):
    """Records deleted-wire fractions and accuracy during penalized training."""

    def __init__(
        self,
        grouped_matrices: Sequence[GroupedMatrix],
        *,
        record_interval: int = 100,
        zero_threshold: float = 1e-4,
        relative_threshold: float = 0.05,
        evaluate: bool = True,
        vectorized: bool = True,
        routing_cache: Optional[RoutingAnalysisCache] = None,
    ):
        if record_interval < 1:
            raise ConfigurationError(f"record_interval must be >= 1, got {record_interval}")
        self.grouped_matrices = list(grouped_matrices)
        self.record_interval = int(record_interval)
        self.zero_threshold = float(zero_threshold)
        self.relative_threshold = float(relative_threshold)
        self.evaluate = bool(evaluate)
        self.vectorized = bool(vectorized)
        self.routing_cache = routing_cache
        self.trace = GroupDeletionTrace()

    def _fractions(self) -> Dict[str, float]:
        return {
            matrix.name: group_deletion_fractions(
                matrix,
                zero_threshold=self.zero_threshold,
                relative_threshold=self.relative_threshold,
                vectorized=self.vectorized,
            )
            for matrix in self.grouped_matrices
        }

    def _wire_fractions(self) -> Optional[Dict[str, float]]:
        if self.routing_cache is None:
            return None
        return {
            matrix.name: self.routing_cache.analyze(
                matrix.values(), matrix.plan, name=matrix.name
            ).wire_fraction
            for matrix in self.grouped_matrices
        }

    def _record(self, trainer: Trainer, iteration: int) -> None:
        accuracy = trainer.evaluate() if self.evaluate else None
        self.trace.record(iteration, self._fractions(), accuracy, self._wire_fractions())

    def on_train_begin(self, trainer: Trainer) -> None:
        self._record(trainer, trainer.iteration)

    def on_iteration_end(self, trainer: Trainer, iteration: int) -> None:
        if iteration % self.record_interval != 0:
            return
        self._record(trainer, iteration)


def apply_deletion(
    grouped_matrices: Sequence[GroupedMatrix],
    *,
    zero_threshold: float,
    relative_threshold: float = 0.0,
) -> Dict[str, int]:
    """Zero out and freeze every (near-)zero group; returns deleted-group counts.

    Groups whose L2 norm is at or below the matrix's effective threshold (see
    :func:`effective_threshold`) are set to exactly zero and excluded from
    future updates via the parameter's pruning mask, so fine-tuning cannot
    resurrect a deleted routing wire.
    """
    deleted_counts: Dict[str, int] = {}
    masks: Dict[int, np.ndarray] = {}
    parameters: Dict[int, object] = {}
    for matrix in grouped_matrices:
        key = id(matrix.parameter)
        if key not in masks:
            existing = matrix.parameter.mask
            masks[key] = (
                np.ones(matrix.parameter.data.shape, dtype=bool)
                if existing is None
                else existing.copy()
            )
            parameters[key] = matrix.parameter
        blocks = matrix.plan.block_view(matrix.values())
        if blocks is not None:
            # Vectorized deletion replicating the per-group loop's order: the
            # loop zeroes each deleted row group *before* measuring the column
            # groups of the same tile, so a row deletion can cascade a
            # borderline column below the threshold.  Row decisions use the
            # pre-deletion norms (rows are mutually disjoint); column norms
            # are then measured with the deleted rows masked out, exactly the
            # squares the loop's post-zeroing recomputation would sum.
            squared = blocks * blocks
            row_norms = np.sqrt(squared.sum(axis=3))  # (gr, tr, gc)
            threshold = zero_threshold
            if relative_threshold > 0.0 and matrix.groups:
                col_norms = np.sqrt(squared.sum(axis=1))  # (gr, gc, tc)
                max_norm = max(float(row_norms.max()), float(col_norms.max()))
                threshold = max(zero_threshold, relative_threshold * max_norm)
            row_deleted = row_norms <= threshold
            surviving_squares = squared * ~row_deleted[:, :, :, None]
            col_deleted = np.sqrt(surviving_squares.sum(axis=1)) <= threshold
            keep = (~row_deleted[:, :, :, None] & ~col_deleted[:, None, :, :]).reshape(
                matrix.plan.matrix_rows, matrix.plan.matrix_cols
            )
            masks[key] &= keep.T if matrix.transpose else keep
            deleted_counts[matrix.name] = int(row_deleted.sum() + col_deleted.sum())
            continue
        threshold = effective_threshold(
            matrix, zero_threshold=zero_threshold, relative_threshold=relative_threshold
        )
        deleted = 0
        for group in matrix.groups:
            if group.norm() <= threshold:
                group.zero_out()
                masks[key][group.index] = False
                deleted += 1
        deleted_counts[matrix.name] = deleted
    for key, mask in masks.items():
        parameters[key].set_mask(mask)
    return deleted_counts


@dataclass
class GroupDeletionResult:
    """Outcome of a group-connection-deletion run."""

    network: Sequential
    trace: GroupDeletionTrace
    routing_reports: Dict[str, RoutingReport]
    deleted_groups: Dict[str, int]
    accuracy_before: Optional[float]
    accuracy_after_deletion: Optional[float]
    accuracy_after_finetune: Optional[float]

    def wire_fractions(self) -> Dict[str, float]:
        """Remaining-wire fraction per matrix (the paper's "% wires" row)."""
        return {name: report.wire_fraction for name, report in self.routing_reports.items()}

    def routing_area_fractions(self) -> Dict[str, float]:
        """Remaining routing-area fraction per matrix (Eq. 8)."""
        return {name: report.area_fraction for name, report in self.routing_reports.items()}

    def mean_wire_fraction(self) -> float:
        """Average remaining-wire fraction across matrices."""
        reports = list(self.routing_reports.values())
        if not reports:
            return 1.0
        return float(np.mean([r.wire_fraction for r in reports]))

    def mean_routing_area_fraction(self) -> float:
        """Average remaining routing-area fraction across matrices."""
        reports = list(self.routing_reports.values())
        if not reports:
            return 1.0
        return float(np.mean([r.area_fraction for r in reports]))


class GroupConnectionDeleter:
    """High-level driver for group connection deletion.

    Parameters
    ----------
    config, library, record_interval:
        As before: hyper-parameters, crossbar library, and Figure-5 trace
        cadence.
    structured_lasso:
        Use the vectorized :class:`~repro.core.groups.CrossbarGroupLasso`
        penalty (same objective as the flat per-group regularizer, computed
        with block reductions).  ``False`` keeps the original per-group
        :class:`~repro.nn.regularization.GroupLassoRegularizer`.
    memoize_routing:
        Route every routing analysis (record steps and final reports)
        through a :class:`~repro.hardware.routing.RoutingAnalysisCache` so
        repeated analyses of near-identical live masks collapse to a hash
        lookup.
    routing_cache:
        Optional externally-shared cache (e.g. one cache across all points
        of a sweep); ignored when ``memoize_routing`` is ``False``.
    """

    def __init__(
        self,
        config: GroupDeletionConfig = GroupDeletionConfig(),
        *,
        library: CrossbarLibrary = PAPER_LIBRARY,
        record_interval: int = 100,
        structured_lasso: bool = True,
        memoize_routing: bool = True,
        routing_cache: Optional[RoutingAnalysisCache] = None,
    ):
        self.config = config
        self.library = library
        self.record_interval = int(record_interval)
        self.structured_lasso = bool(structured_lasso)
        self.memoize_routing = bool(memoize_routing)
        if not self.memoize_routing:
            self.routing_cache: Optional[RoutingAnalysisCache] = None
        else:
            self.routing_cache = routing_cache or RoutingAnalysisCache()

    def derive_groups(self, network: Sequential) -> List[GroupedMatrix]:
        """Grouped crossbar matrices this configuration penalizes."""
        return derive_network_groups(
            network,
            library=self.library,
            layers=self.config.layers,
            include_small_matrices=self.config.include_small_matrices,
        )

    def run(self, network: Sequential, trainer_factory) -> GroupDeletionResult:
        """Run penalized training, deletion and fine-tuning on ``network``.

        ``trainer_factory`` is a callable ``(network, callbacks) -> Trainer``.
        """
        grouped = self.derive_groups(network)
        if not grouped:
            raise ConfigurationError(
                "no crossbar matrices selected for deletion; "
                "set include_small_matrices=True or check the layer list"
            )
        callback = GroupDeletionCallback(
            grouped,
            record_interval=self.record_interval,
            zero_threshold=self.config.zero_threshold,
            relative_threshold=self.config.relative_threshold,
            vectorized=self.structured_lasso,
            routing_cache=self.routing_cache,
        )
        trainer = trainer_factory(network, [callback])
        if self.structured_lasso:
            regularizer = CrossbarGroupLasso(grouped, self.config.strength)
        else:
            regularizer = GroupLassoRegularizer(flatten_groups(grouped), self.config.strength)
        trainer.add_regularizer(regularizer)
        accuracy_before = trainer.evaluate()
        trainer.run(self.config.iterations)
        trainer.remove_regularizer(regularizer)

        deleted = apply_deletion(
            grouped,
            zero_threshold=self.config.zero_threshold,
            relative_threshold=self.config.relative_threshold,
        )
        accuracy_after_deletion = trainer.evaluate()
        logger.info(
            "deleted %d groups across %d matrices",
            sum(deleted.values()),
            len(grouped),
        )
        if self.config.finetune_iterations > 0:
            trainer.run(self.config.finetune_iterations)
        accuracy_after_finetune = trainer.evaluate()

        reports = {
            matrix.name: matrix_routing_report(
                matrix, zero_threshold=0.0, cache=self.routing_cache
            )
            for matrix in grouped
        }
        return GroupDeletionResult(
            network=network,
            trace=callback.trace,
            routing_reports=reports,
            deleted_groups=deleted,
            accuracy_before=accuracy_before,
            accuracy_after_deletion=accuracy_after_deletion,
            accuracy_after_finetune=accuracy_after_finetune,
        )


def _check_lockstep_configs(configs: Sequence[GroupDeletionConfig]) -> None:
    base = configs[0]
    shared_fields = (
        "iterations",
        "finetune_iterations",
        "zero_threshold",
        "relative_threshold",
        "include_small_matrices",
        "layers",
    )
    for config in configs[1:]:
        for name in shared_fields:
            if getattr(config, name) != getattr(base, name):
                raise ConfigurationError(
                    "lockstep group deletion requires configs that differ only "
                    f"in strength; {name} disagrees "
                    f"({getattr(config, name)!r} vs {getattr(base, name)!r})"
                )


def run_lockstep_deletion(
    networks: Sequence[Sequential],
    configs: Sequence[GroupDeletionConfig],
    lockstep_trainer_factory,
    *,
    library: CrossbarLibrary = PAPER_LIBRARY,
    record_interval: int = 100,
    structured_lasso: bool = True,
    memoize_routing: bool = True,
    routing_cache: Optional[RoutingAnalysisCache] = None,
) -> List[GroupDeletionResult]:
    """Run group deletion on K same-architecture networks in lockstep.

    The lockstep counterpart of :meth:`GroupConnectionDeleter.run`: the K
    λ-points train as one stacked program (see
    :class:`~repro.nn.trainer.LockstepTrainer`) with a per-point-λ group
    Lasso, per-point record callbacks, a single shared deletion boundary and
    a stacked fine-tune over the per-point pruning masks.  Every per-point
    result is bit-identical to K independent serial runs.  A point whose
    network diverges structurally mid-run drops out of the stack and finishes
    on the serial path inside the same loop.

    ``lockstep_trainer_factory`` is a callable
    ``(networks, callbacks_per_point) -> LockstepTrainer`` — the lockstep
    analogue of the serial ``trainer_factory``.  ``configs`` must differ only
    in ``strength``.  The routing cache (created when ``memoize_routing``,
    unless an external ``routing_cache`` is supplied) is shared by every
    point's record steps and final reports, so one mask fingerprint warms all
    K points.
    """
    if memoize_routing and routing_cache is None:
        routing_cache = RoutingAnalysisCache()
    elif not memoize_routing:
        routing_cache = None
    networks = list(networks)
    configs = list(configs)
    if not networks:
        raise ConfigurationError("lockstep deletion needs at least one network")
    if len(networks) != len(configs):
        raise ConfigurationError(
            f"{len(networks)} networks but {len(configs)} configs"
        )
    _check_lockstep_configs(configs)
    base = configs[0]

    grouped_per_point = [
        derive_network_groups(
            network,
            library=library,
            layers=config.layers,
            include_small_matrices=config.include_small_matrices,
        )
        for network, config in zip(networks, configs)
    ]
    if not grouped_per_point[0]:
        raise ConfigurationError(
            "no crossbar matrices selected for deletion; "
            "set include_small_matrices=True or check the layer list"
        )
    callbacks_per_point = [
        [
            GroupDeletionCallback(
                grouped,
                record_interval=record_interval,
                zero_threshold=base.zero_threshold,
                relative_threshold=base.relative_threshold,
                vectorized=structured_lasso,
                routing_cache=routing_cache,
            )
        ]
        for grouped in grouped_per_point
    ]
    trainer = lockstep_trainer_factory(networks, callbacks_per_point)
    if structured_lasso:
        regularizer = LockstepCrossbarGroupLasso(
            trainer.stack, grouped_per_point, [config.strength for config in configs]
        )
    else:
        regularizer = PerPointRegularizers(
            [
                GroupLassoRegularizer(flatten_groups(grouped), config.strength)
                for grouped, config in zip(grouped_per_point, configs)
            ]
        )
    trainer.add_regularizer(regularizer)

    accuracy_before = trainer.evaluate()
    trainer.run(base.iterations)
    trainer.remove_regularizer(regularizer)

    deleted = [
        apply_deletion(
            grouped,
            zero_threshold=base.zero_threshold,
            relative_threshold=base.relative_threshold,
        )
        for grouped in grouped_per_point
    ]
    # Mask installation re-bound the parameters; fold it back into the slabs
    # (momentum persists across the boundary, exactly as in the serial run).
    trainer.refresh_points()
    accuracy_after_deletion = trainer.evaluate()
    logger.info(
        "lockstep-deleted %d groups across %d points",
        sum(sum(counts.values()) for counts in deleted),
        len(networks),
    )
    if base.finetune_iterations > 0:
        trainer.run(base.finetune_iterations)
    accuracy_after_finetune = trainer.evaluate()
    trainer.finalize()

    def _point_accuracy(values, slot):
        return None if values is None else values[slot]

    results = []
    for slot, (network, grouped) in enumerate(zip(networks, grouped_per_point)):
        reports = {
            matrix.name: matrix_routing_report(
                matrix, zero_threshold=0.0, cache=routing_cache
            )
            for matrix in grouped
        }
        results.append(
            GroupDeletionResult(
                network=network,
                trace=callbacks_per_point[slot][0].trace,
                routing_reports=reports,
                deleted_groups=deleted[slot],
                accuracy_before=_point_accuracy(accuracy_before, slot),
                accuracy_after_deletion=_point_accuracy(accuracy_after_deletion, slot),
                accuracy_after_finetune=_point_accuracy(accuracy_after_finetune, slot),
            )
        )
    return results
