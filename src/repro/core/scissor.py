"""The end-to-end Group Scissor pipeline (rank clipping → group deletion).

:class:`GroupScissor` chains the two steps of the paper's framework on top of
a user-supplied trainer factory, and closes the loop with the hardware model:
the result reports the crossbar-area fraction achieved by rank clipping and
the routing-wire / routing-area fractions achieved by group connection
deletion, i.e. exactly the headline quantities of the paper's abstract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import ScissorConfig
from repro.core.conversion import convert_to_lowrank, default_clippable_layers
from repro.core.group_deletion import GroupConnectionDeleter, GroupDeletionResult
from repro.core.rank_clipping import RankClipper, RankClippingResult
from repro.hardware.mapper import NetworkMapper
from repro.hardware.report import NetworkHardwareReport
from repro.nn.network import Sequential


@dataclass
class GroupScissorResult:
    """Outcome of the full Group Scissor pipeline."""

    baseline_network: Sequential
    final_network: Sequential
    rank_clipping: RankClippingResult
    group_deletion: GroupDeletionResult
    baseline_report: NetworkHardwareReport
    clipped_report: NetworkHardwareReport
    final_report: NetworkHardwareReport
    baseline_accuracy: Optional[float]

    # ------------------------------------------------------------- headline
    @property
    def crossbar_area_fraction(self) -> float:
        """Total crossbar area after rank clipping relative to the dense design."""
        return self.clipped_report.area_fraction_of(self.baseline_report)

    @property
    def final_accuracy(self) -> Optional[float]:
        """Accuracy of the final pruned and fine-tuned network."""
        return self.group_deletion.accuracy_after_finetune

    def wire_fractions(self) -> Dict[str, float]:
        """Remaining-wire fraction of every deleted crossbar matrix."""
        return self.group_deletion.wire_fractions()

    def mean_routing_area_fraction(self) -> float:
        """Layer-wise average routing-area fraction (the paper's 8.1 % metric)."""
        return self.group_deletion.mean_routing_area_fraction()

    def format_summary(self) -> str:
        """Multi-line human-readable summary of the whole pipeline."""
        lines = [
            f"Group Scissor summary for {self.baseline_network.name!r}",
            f"  baseline accuracy:         {self._fmt(self.baseline_accuracy)}",
            f"  after rank clipping:       {self._fmt(self.rank_clipping.final_accuracy)}",
            f"  after deletion + finetune: {self._fmt(self.final_accuracy)}",
            f"  final ranks:               {self.rank_clipping.final_ranks}",
            f"  crossbar area fraction:    {self.crossbar_area_fraction:.2%}",
            f"  mean wire fraction:        {self.group_deletion.mean_wire_fraction():.2%}",
            f"  mean routing area:         {self.mean_routing_area_fraction():.2%}",
        ]
        return "\n".join(lines)

    @staticmethod
    def _fmt(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.2%}"


class GroupScissor:
    """Run rank clipping followed by group connection deletion.

    Parameters
    ----------
    config:
        The combined configuration for both steps.
    trainer_factory:
        Callable ``(network, callbacks) -> Trainer`` used for both training
        phases; experiments control datasets, optimizers and schedules here.
    mapper:
        Hardware mapper used for the area/routing reports.
    """

    def __init__(
        self,
        config: ScissorConfig,
        trainer_factory,
        *,
        mapper: Optional[NetworkMapper] = None,
    ):
        self.config = config
        self.trainer_factory = trainer_factory
        self.mapper = mapper if mapper is not None else NetworkMapper()

    def run(
        self,
        dense_network: Sequential,
        *,
        baseline_accuracy: Optional[float] = None,
    ) -> GroupScissorResult:
        """Execute the full pipeline on a trained dense network."""
        baseline_report = self.mapper.map_network(dense_network)

        # Step 1: rank clipping on the full-rank factorized copy.
        clip_layers = self.config.rank_clipping.layers
        if clip_layers is None:
            clip_layers = tuple(
                name
                for name in default_clippable_layers(dense_network)
                if name not in self.config.exclude_layers
            )
        lowrank_network = convert_to_lowrank(dense_network, layers=clip_layers)
        clipper = RankClipper(self.config.rank_clipping)
        clipping_result = clipper.run(
            lowrank_network, self.trainer_factory, baseline_accuracy=baseline_accuracy
        )
        clipped_report = self.mapper.map_network(lowrank_network)

        # Step 2: group connection deletion on the clipped network.
        deleter = GroupConnectionDeleter(self.config.group_deletion)
        deletion_result = deleter.run(lowrank_network, self.trainer_factory)
        final_report = self.mapper.map_network(lowrank_network)

        return GroupScissorResult(
            baseline_network=dense_network,
            final_network=lowrank_network,
            rank_clipping=clipping_result,
            group_deletion=deletion_result,
            baseline_report=baseline_report,
            clipped_report=clipped_report,
            final_report=final_report,
            baseline_accuracy=baseline_accuracy,
        )
