"""A compact numpy neural-network substrate.

The paper trains LeNet/ConvNet with Caffe; this package provides the minimal
but complete training stack needed to reproduce the algorithms offline:
layers with explicit forward/backward, losses, optimizers, regularizers and
an iteration-based trainer with callbacks (through which rank clipping and
group connection deletion hook into training).
"""

from repro.nn import dtype, functional
from repro.nn.batched import (
    NetworkStack,
    StackedParameter,
    architecture_signature,
    batched_evaluate,
    stacked_predict,
)
from repro.nn.dtype import as_float, default_dtype, dtype_scope, set_default_dtype
from repro.nn.initializers import available_initializers, get_initializer
from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dropout,
    Flatten,
    Layer,
    LeakyReLU,
    Linear,
    LowRankConv2D,
    LowRankLinear,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import L1Loss, Loss, MSELoss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, error_rate, top_k_accuracy
from repro.nn.network import Sequential
from repro.nn.optim import (
    SGD,
    Adam,
    ConstantLR,
    CosineLR,
    ExponentialLR,
    InverseDecayLR,
    LockstepSGD,
    LRSchedule,
    Optimizer,
    StepLR,
)
from repro.nn.parameter import Parameter
from repro.nn.regularization import (
    GroupLassoRegularizer,
    L2Regularizer,
    LockstepRegularizer,
    PerPointRegularizers,
    Regularizer,
    WeightGroup,
)
from repro.nn.trainer import (
    Callback,
    LockstepPointHandle,
    LockstepTrainer,
    Trainer,
    TrainingHistory,
)

__all__ = [
    "functional",
    "dtype",
    "as_float",
    "default_dtype",
    "dtype_scope",
    "set_default_dtype",
    "Parameter",
    "Layer",
    "Linear",
    "LowRankLinear",
    "Conv2D",
    "LowRankConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "Dropout",
    "Sequential",
    "Loss",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "L1Loss",
    "Optimizer",
    "SGD",
    "Adam",
    "LockstepSGD",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "InverseDecayLR",
    "CosineLR",
    "Regularizer",
    "L2Regularizer",
    "GroupLassoRegularizer",
    "LockstepRegularizer",
    "PerPointRegularizers",
    "WeightGroup",
    "architecture_signature",
    "batched_evaluate",
    "stacked_predict",
    "NetworkStack",
    "StackedParameter",
    "accuracy",
    "error_rate",
    "top_k_accuracy",
    "confusion_matrix",
    "Trainer",
    "TrainingHistory",
    "Callback",
    "LockstepTrainer",
    "LockstepPointHandle",
    "get_initializer",
    "available_initializers",
]
