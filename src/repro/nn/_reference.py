"""Loop-based reference kernels (the pre-vectorization implementations).

These are the original offset-loop implementations of the im2col / col2im
transforms and the pooling window extract / scatter kernels, kept verbatim so

* the parity test suite can assert the vectorized kernels in
  :mod:`repro.nn.functional` produce identical results, and
* the kernel benchmark (``benchmarks/test_bench_kernels.py``) can report the
  speedup of the vectorized engine against a fixed baseline.

They are not used on any production path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.functional import conv_output_size, pad_images


def im2col_loop(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, int, int]:
    """Offset-loop im2col: gather one kernel offset per iteration."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x_padded = pad_images(x, padding)
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x_padded[:, :, i:i_max:stride, j:j_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im_loop(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Offset-loop col2im: scatter-add one kernel offset per iteration."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    cols6 = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


def extract_pool_windows_loop(
    x: np.ndarray, pool_size: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Materialize all pooling windows as ``(N, C, out_h, out_w, k*k)``."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, pool_size, stride, padding)
    out_w = conv_output_size(w, pool_size, stride, padding)
    x_padded = pad_images(x, padding)
    windows = np.empty((n, c, out_h, out_w, pool_size * pool_size), dtype=x.dtype)
    idx = 0
    for i in range(pool_size):
        i_max = i + stride * out_h
        for j in range(pool_size):
            j_max = j + stride * out_w
            windows[..., idx] = x_padded[:, :, i:i_max:stride, j:j_max:stride]
            idx += 1
    return windows, out_h, out_w


def scatter_pool_windows_loop(
    grad_windows: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    pool_size: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`extract_pool_windows_loop` (sum overlapping windows)."""
    n, c, h, w = input_shape
    out_h, out_w = grad_windows.shape[2], grad_windows.shape[3]
    grad_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding))
    idx = 0
    for i in range(pool_size):
        i_max = i + stride * out_h
        for j in range(pool_size):
            j_max = j + stride * out_w
            grad_padded[:, :, i:i_max:stride, j:j_max:stride] += grad_windows[..., idx]
            idx += 1
    if padding == 0:
        return grad_padded
    return grad_padded[:, :, padding:-padding, padding:-padding]


def maxpool_forward_backward_loop(
    x: np.ndarray, pool_size: int, stride: int, padding: int, grad_output: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Full max-pool forward + backward with zero padding (seed semantics)."""
    windows, out_h, out_w = extract_pool_windows_loop(x, pool_size, stride, padding)
    out = windows.max(axis=-1)
    max_idx = windows.argmax(axis=-1)
    grad_windows = np.zeros_like(windows)
    np.put_along_axis(grad_windows, max_idx[..., None], grad_output[..., None], axis=-1)
    grad_x = scatter_pool_windows_loop(grad_windows, x.shape, pool_size, stride, padding)
    return out, grad_x


def avgpool_forward_backward_loop(
    x: np.ndarray, pool_size: int, stride: int, padding: int, grad_output: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Full average-pool forward + backward (seed semantics)."""
    windows, out_h, out_w = extract_pool_windows_loop(x, pool_size, stride, padding)
    out = windows.mean(axis=-1)
    share = grad_output[..., None] / windows.shape[-1]
    grad_windows = np.broadcast_to(share, windows.shape).copy()
    grad_x = scatter_pool_windows_loop(grad_windows, x.shape, pool_size, stride, padding)
    return out, grad_x
