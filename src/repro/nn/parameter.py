"""Trainable parameter container.

A :class:`Parameter` bundles a value array with its accumulated gradient and
an optional boolean mask.  Values are stored at the global dtype policy
(:mod:`repro.nn.dtype`, float64 by default) captured at construction time.  Masks are how the group-connection-deletion step
freezes pruned weights: once a group is deleted its mask entries are set to
``False`` and every subsequent gradient update is zeroed for those entries, so
fine-tuning cannot resurrect a deleted connection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dtype import as_float


class Parameter:
    """A named trainable array with gradient and pruning-mask bookkeeping."""

    def __init__(self, data: np.ndarray, name: str = "", trainable: bool = True):
        self.data = as_float(data)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.trainable = bool(trainable)
        self._mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ mask
    @property
    def mask(self) -> Optional[np.ndarray]:
        """Boolean mask of live entries, or ``None`` when nothing is pruned."""
        return self._mask

    def set_mask(self, mask: np.ndarray) -> None:
        """Install a pruning mask, zeroing the masked-out entries immediately."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.data.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match parameter shape {self.data.shape}"
            )
        self._mask = mask
        self.data = self.data * mask

    def clear_mask(self) -> None:
        """Remove any installed pruning mask."""
        self._mask = None

    def apply_mask(self) -> None:
        """Re-apply the mask to both value and gradient (no-op when unmasked)."""
        if self._mask is not None:
            self.data *= self._mask
            self.grad *= self._mask

    # -------------------------------------------------------------- gradients
    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zeros."""
        self.grad = np.zeros_like(self.data)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulated gradient buffer."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter shape {self.data.shape}"
            )
        self.grad += grad

    # ------------------------------------------------------------------ misc
    @property
    def shape(self):
        """Shape of the underlying value array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar entries in the parameter."""
        return int(self.data.size)

    def density(self) -> float:
        """Fraction of entries that are non-zero (1.0 for a dense parameter)."""
        if self.data.size == 0:
            return 0.0
        return float(np.count_nonzero(self.data)) / float(self.data.size)

    def copy(self) -> "Parameter":
        """Deep copy of this parameter (data, grad and mask)."""
        clone = Parameter(self.data.copy(), name=self.name, trainable=self.trainable)
        clone.grad = self.grad.copy()
        if self._mask is not None:
            clone._mask = self._mask.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        masked = "" if self._mask is None else ", masked"
        return f"Parameter(name={self.name!r}, shape={self.data.shape}{masked})"
