"""Loss functions.

A loss object exposes ``forward(predictions, targets) -> float`` and
``backward() -> ndarray`` (gradient w.r.t. the predictions), mirroring the
layer protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import functional as F


class Loss:
    """Base class for losses."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on raw logits with integer class targets.

    Combining the two keeps the backward pass to the numerically stable
    ``softmax(logits) - one_hot(targets)`` form.
    """

    def __init__(self):
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"targets must be 1-D with length {logits.shape[0]}, got shape {targets.shape}"
            )
        if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
            raise ValueError(
                f"targets must be class indices in [0, {logits.shape[1] - 1}]"
            )
        log_probs = F.log_softmax(logits, axis=1)
        self._probs = np.exp(log_probs)
        self._targets = targets.astype(int)
        batch = logits.shape[0]
        return float(-log_probs[np.arange(batch), self._targets].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise ShapeError("backward called before forward")
        batch, num_classes = self._probs.shape
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch


class MSELoss(Loss):
    """Mean squared error over all entries."""

    def __init__(self):
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise ShapeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


class L1Loss(Loss):
    """Mean absolute error over all entries."""

    def __init__(self):
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise ShapeError("backward called before forward")
        return np.sign(self._diff) / self._diff.size
