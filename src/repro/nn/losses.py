"""Loss functions.

A loss object exposes ``forward(predictions, targets) -> float`` and
``backward() -> ndarray`` (gradient w.r.t. the predictions), mirroring the
layer protocol — including the cache lifecycle: the O(batch) context cached
by ``forward`` is released when ``backward`` consumes it.  After a forward
pass with no backward (e.g. reporting a validation loss), call
``release_caches()`` to drop the pinned batch context explicitly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.dtype import as_float


class Loss:
    """Base class for losses."""

    #: Names of instance attributes holding backward context; set by subclasses.
    _cache_attrs: tuple = ()

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def release_caches(self) -> None:
        """Drop any cached forward context held by this loss."""
        for attr in self._cache_attrs:
            setattr(self, attr, None)

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on raw logits with integer class targets.

    Combining the two keeps the backward pass to the numerically stable
    ``softmax(logits) - one_hot(targets)`` form.
    """

    _cache_attrs = ("_probs", "_targets")

    def __init__(self):
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = as_float(logits)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"targets must be 1-D with length {logits.shape[0]}, got shape {targets.shape}"
            )
        if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
            raise ValueError(
                f"targets must be class indices in [0, {logits.shape[1] - 1}]"
            )
        log_probs = F.log_softmax(logits, axis=1)
        self._probs = np.exp(log_probs)
        self._targets = targets.astype(int)
        batch = logits.shape[0]
        return float(-log_probs[np.arange(batch), self._targets].mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise ShapeError("backward called before forward")
        batch, num_classes = self._probs.shape
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        self.release_caches()
        return grad / batch


class MSELoss(Loss):
    """Mean squared error over all entries."""

    _cache_attrs = ("_diff",)

    def __init__(self):
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = as_float(predictions)
        targets = as_float(targets)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise ShapeError("backward called before forward")
        grad = 2.0 * self._diff / self._diff.size
        self.release_caches()
        return grad


class L1Loss(Loss):
    """Mean absolute error over all entries."""

    _cache_attrs = ("_diff",)

    def __init__(self):
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = as_float(predictions)
        targets = as_float(targets)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(np.abs(self._diff)))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise ShapeError("backward called before forward")
        grad = np.sign(self._diff) / self._diff.size
        self.release_caches()
        return grad
