"""Learning-rate schedules.

A schedule is a callable ``schedule(iteration) -> float`` returning the
learning rate for a (0-based) training iteration.  Optimizers query the
schedule every step, so schedules are stateless and cheap.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_non_negative, check_positive_int


class LRSchedule:
    """Base class: subclasses implement :meth:`learning_rate`."""

    def __init__(self, base_lr: float):
        self.base_lr = check_non_negative(base_lr, "base_lr")

    def learning_rate(self, iteration: int) -> float:
        raise NotImplementedError

    def __call__(self, iteration: int) -> float:
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        return float(self.learning_rate(int(iteration)))


class ConstantLR(LRSchedule):
    """Constant learning rate."""

    def learning_rate(self, iteration: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1):
        super().__init__(base_lr)
        self.step_size = check_positive_int(step_size, "step_size")
        self.gamma = check_non_negative(gamma, "gamma")

    def learning_rate(self, iteration: int) -> float:
        return self.base_lr * self.gamma ** (iteration // self.step_size)


class ExponentialLR(LRSchedule):
    """Continuous exponential decay ``base_lr · gamma^iteration``."""

    def __init__(self, base_lr: float, gamma: float = 0.999):
        super().__init__(base_lr)
        self.gamma = check_non_negative(gamma, "gamma")

    def learning_rate(self, iteration: int) -> float:
        return self.base_lr * self.gamma**iteration


class InverseDecayLR(LRSchedule):
    """Caffe-style ``inv`` policy: ``base_lr · (1 + gamma·iter)^(−power)``.

    This is the schedule used by the original LeNet/ConvNet Caffe recipes the
    paper trains with.
    """

    def __init__(self, base_lr: float, gamma: float = 1e-4, power: float = 0.75):
        super().__init__(base_lr)
        self.gamma = check_non_negative(gamma, "gamma")
        self.power = check_non_negative(power, "power")

    def learning_rate(self, iteration: int) -> float:
        return self.base_lr * (1.0 + self.gamma * iteration) ** (-self.power)


class CosineLR(LRSchedule):
    """Cosine annealing from ``base_lr`` down to ``min_lr`` over ``total_iterations``."""

    def __init__(self, base_lr: float, total_iterations: int, min_lr: float = 0.0):
        super().__init__(base_lr)
        self.total_iterations = check_positive_int(total_iterations, "total_iterations")
        self.min_lr = check_non_negative(min_lr, "min_lr")

    def learning_rate(self, iteration: int) -> float:
        progress = min(iteration, self.total_iterations) / self.total_iterations
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))


def as_schedule(lr) -> LRSchedule:
    """Coerce a float into a :class:`ConstantLR`, passing schedules through."""
    if isinstance(lr, LRSchedule):
        return lr
    return ConstantLR(float(lr))
