"""Optimizers and learning-rate schedules."""

from repro.nn.optim.adam import Adam
from repro.nn.optim.base import Optimizer
from repro.nn.optim.lockstep import LockstepSGD
from repro.nn.optim.schedules import (
    ConstantLR,
    CosineLR,
    ExponentialLR,
    InverseDecayLR,
    LRSchedule,
    StepLR,
    as_schedule,
)
from repro.nn.optim.sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "LockstepSGD",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "InverseDecayLR",
    "CosineLR",
    "as_schedule",
]
