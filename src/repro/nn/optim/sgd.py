"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.optim.base import Optimizer
from repro.nn.optim.schedules import as_schedule
from repro.nn.parameter import Parameter
from repro.utils.validation import check_non_negative


class SGD(Optimizer):
    """SGD with optional momentum, Nesterov lookahead and decoupled weight decay.

    Weight decay is applied to the gradient (classic L2 regularization) which
    matches the Caffe solver the paper's networks were trained with.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr=0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters, as_schedule(lr))
        self.momentum = check_non_negative(momentum, "momentum")
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")
        self.nesterov = bool(nesterov)
        if self.nesterov and self.momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self._velocity: Dict[int, np.ndarray] = {}

    def _update_parameter(self, index: int, param: Parameter, lr: float) -> None:
        grad = param.grad
        if self.weight_decay > 0.0:
            grad = grad + self.weight_decay * param.data
        if self.momentum > 0.0:
            velocity = self._velocity.get(index)
            if velocity is None or velocity.shape != param.data.shape:
                # A shape mismatch means the parameter was restructured (e.g.
                # set_factors) without a state reset; a stale buffer must not
                # be applied to the new array.
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[index] = velocity
            if self.nesterov:
                grad = grad + self.momentum * velocity
            else:
                grad = velocity
        param.data = param.data - lr * grad
        param.apply_mask()

    def reset_state(self) -> None:
        """Drop momentum buffers (used after structural changes such as rank clipping)."""
        self._velocity.clear()

    def _drop_mismatched_state(self) -> None:
        for index in list(self._velocity):
            if (
                index >= len(self._parameters)
                or self._velocity[index].shape != self._parameters[index].data.shape
            ):
                del self._velocity[index]
