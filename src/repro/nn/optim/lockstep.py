"""Stacked-state SGD for lockstep multi-network training.

:class:`LockstepSGD` is the :class:`~repro.nn.optim.sgd.SGD` update applied
to the ``(K, …)`` parameter slabs of a
:class:`~repro.nn.batched.NetworkStack`: velocity and weight decay live as
slabs, the learning rate is either one shared schedule or K per-point
schedules (broadcast down the stacking axis), and every update is **in
place** so the per-point ``Parameter`` views into the slabs stay valid.
Row ``k`` of every buffer evolves bit-identically to an independent ``SGD``
driving point ``k`` alone — all update arithmetic is element-wise, so
stacking changes memory layout, never values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.nn.optim.schedules import LRSchedule, as_schedule
from repro.nn.optim.sgd import SGD
from repro.utils.validation import check_non_negative


class LockstepSGD:
    """SGD with momentum/weight decay over ``(K, …)`` parameter slabs.

    Parameters
    ----------
    parameters:
        The :class:`~repro.nn.batched.StackedParameter` slabs to update.
    lr:
        A float / :class:`~repro.nn.optim.schedules.LRSchedule` shared by all
        points, or a sequence of K per-point floats/schedules.
    momentum, weight_decay, nesterov:
        As in :class:`~repro.nn.optim.sgd.SGD`, shared by all points.
    """

    def __init__(
        self,
        parameters: Sequence,
        lr: Union[float, LRSchedule, Sequence] = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        params = list(parameters)
        if not params:
            raise ValueError("optimizer needs at least one stacked parameter")
        points = {sp.num_points for sp in params}
        if len(points) != 1:
            raise ValueError(f"stacked parameters disagree on K: {sorted(points)}")
        self._parameters = params
        self._num_points = points.pop()
        self.schedules: Optional[List[LRSchedule]] = None
        self.schedule: Optional[LRSchedule] = None
        if isinstance(lr, (list, tuple)):
            if len(lr) != self._num_points:
                raise ValueError(
                    f"expected {self._num_points} per-point learning rates, got {len(lr)}"
                )
            self.schedules = [as_schedule(value) for value in lr]
        else:
            self.schedule = as_schedule(lr)
        self.momentum = check_non_negative(momentum, "momentum")
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")
        self.nesterov = bool(nesterov)
        if self.nesterov and self.momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self._velocity: Dict[int, np.ndarray] = {}
        self.iteration = 0

    # ------------------------------------------------------------- queries
    @property
    def parameters(self) -> List:
        """The stacked parameters managed by this optimizer."""
        return list(self._parameters)

    @property
    def num_points(self) -> int:
        """Number of points currently in the stack."""
        return self._num_points

    def current_lr(self):
        """Learning rate(s) the next :meth:`step` will use (scalar or (K,))."""
        if self.schedules is None:
            return self.schedule(self.iteration)
        return np.array([schedule(self.iteration) for schedule in self.schedules])

    def point_schedule(self, k: int) -> LRSchedule:
        """The schedule driving point ``k`` (the shared one when not per-point)."""
        return self.schedule if self.schedules is None else self.schedules[k]

    # -------------------------------------------------------------- updates
    def zero_grad(self) -> None:
        """Zero every gradient slab in place."""
        for sp in self._parameters:
            sp.zero_grad()

    def step(self) -> None:
        """Apply one in-place update to every trainable slab."""
        if self.schedules is None:
            lr = self.schedule(self.iteration)
            lrs = None
        else:
            lrs = np.array([schedule(self.iteration) for schedule in self.schedules])
        for index, sp in enumerate(self._parameters):
            if not sp.trainable:
                continue
            grad = sp.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * sp.data
            if self.momentum > 0.0:
                velocity = self._velocity.get(index)
                if velocity is None or velocity.shape != sp.data.shape:
                    velocity = np.zeros_like(sp.data)
                    self._velocity[index] = velocity
                # In place, element-wise: bit-identical to `m·v + grad`.
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            if lrs is None:
                update = lr * grad
            else:
                update = lrs.reshape((self._num_points,) + (1,) * (grad.ndim - 1)) * grad
            np.subtract(sp.data, update, out=sp.data)
            sp.apply_mask()
        self.iteration += 1

    def reset_state(self) -> None:
        """Drop every momentum slab."""
        self._velocity.clear()

    # ------------------------------------------------------- point handling
    def reset_point(self, k: int) -> None:
        """Zero point ``k``'s momentum rows (the per-point ``reset_state``)."""
        for velocity in self._velocity.values():
            velocity[k] = 0.0

    def drop_point(self, k: int) -> None:
        """Remove point ``k``'s rows from every state buffer and lr list."""
        for index in list(self._velocity):
            self._velocity[index] = np.delete(self._velocity[index], k, axis=0)
        if self.schedules is not None:
            del self.schedules[k]
        self._num_points -= 1

    def make_point_optimizer(self, k: int, parameters: Sequence) -> SGD:
        """A serial :class:`SGD` continuing point ``k`` outside the stack.

        State starts empty — a point leaves the stack only on a structural
        change, after which the serial path resets optimizer state too — but
        the iteration counter carries over so schedules stay aligned.
        """
        optimizer = SGD(
            parameters,
            lr=self.point_schedule(k),
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            nesterov=self.nesterov,
        )
        optimizer.iteration = self.iteration
        return optimizer
