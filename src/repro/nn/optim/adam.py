"""Adam optimizer."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.optim.base import Optimizer
from repro.nn.optim.schedules import as_schedule
from repro.nn.parameter import Parameter
from repro.utils.validation import check_non_negative


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when ``decoupled=True``)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr=1e-3,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = False,
    ):
        super().__init__(parameters, as_schedule(lr))
        if not (0.0 <= beta1 < 1.0) or not (0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = check_non_negative(weight_decay, "weight_decay")
        self.decoupled = bool(decoupled)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._steps: Dict[int, int] = {}

    def _update_parameter(self, index: int, param: Parameter, lr: float) -> None:
        grad = param.grad
        if self.weight_decay > 0.0 and not self.decoupled:
            grad = grad + self.weight_decay * param.data
        m = self._m.get(index)
        v = self._v.get(index)
        if m is None or m.shape != param.data.shape:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
            self._steps[index] = 0
        step = self._steps[index] + 1
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad**2
        self._m[index] = m
        self._v[index] = v
        self._steps[index] = step
        m_hat = m / (1.0 - self.beta1**step)
        v_hat = v / (1.0 - self.beta2**step)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay > 0.0 and self.decoupled:
            update = update + self.weight_decay * param.data
        param.data = param.data - lr * update
        param.apply_mask()

    def reset_state(self) -> None:
        """Drop first/second-moment buffers."""
        self._m.clear()
        self._v.clear()
        self._steps.clear()

    def _drop_mismatched_state(self) -> None:
        for index in list(self._m):
            if (
                index >= len(self._parameters)
                or self._m[index].shape != self._parameters[index].data.shape
            ):
                del self._m[index]
                del self._v[index]
                self._steps.pop(index, None)
