"""Optimizer protocol.

Optimizers hold references to :class:`~repro.nn.parameter.Parameter` objects
and update them in place from their accumulated gradients.  The learning rate
comes from an :class:`~repro.nn.optim.schedules.LRSchedule` evaluated at the
optimizer's internal step counter, so training loops only ever call
:meth:`Optimizer.step`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.nn.optim.schedules import LRSchedule
from repro.nn.parameter import Parameter


class Optimizer:
    """Base class for gradient-based optimizers."""

    def __init__(self, parameters: Sequence[Parameter], schedule: LRSchedule):
        params = list(parameters)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        if not all(isinstance(p, Parameter) for p in params):
            raise TypeError("all optimized values must be Parameter instances")
        self._parameters: List[Parameter] = params
        self.schedule = schedule
        self.iteration = 0

    @property
    def parameters(self) -> List[Parameter]:
        """Parameters managed by this optimizer."""
        return list(self._parameters)

    def set_parameters(
        self, parameters: Sequence[Parameter], *, keep_state: bool = False
    ) -> None:
        """Re-bind the optimizer to a new parameter list.

        Rank clipping replaces factor arrays (their shapes change), so the
        trainer re-binds and resets optimizer state after every clip — the
        default.  With ``keep_state=True`` per-parameter state buffers are
        preserved instead, but only after shape validation: state is keyed by
        parameter *index*, so a structural change that shifts or resizes the
        list could otherwise apply a stale buffer to the wrong parameter.
        Buffers whose shape no longer matches the parameter now at their
        index are dropped (shape-compatible buffers cannot be told apart —
        callers re-ordering same-shaped parameters must reset instead).
        """
        params = list(parameters)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        if not all(isinstance(p, Parameter) for p in params):
            raise TypeError("all optimized values must be Parameter instances")
        self._parameters = params
        if keep_state:
            self._drop_mismatched_state()
        else:
            self.reset_state()

    def current_lr(self) -> float:
        """Learning rate that the *next* call to :meth:`step` will use."""
        return self.schedule(self.iteration)

    def zero_grad(self) -> None:
        """Zero the gradients of all managed parameters."""
        for param in self._parameters:
            param.zero_grad()

    def step(self) -> float:
        """Apply one update to every trainable parameter; returns the lr used."""
        lr = self.schedule(self.iteration)
        for index, param in enumerate(self._parameters):
            if not param.trainable:
                continue
            self._update_parameter(index, param, lr)
        self.iteration += 1
        return lr

    def _update_parameter(self, index: int, param: Parameter, lr: float) -> None:
        raise NotImplementedError

    def reset_state(self) -> None:
        """Clear per-parameter optimizer state (momentum buffers etc.)."""

    def _drop_mismatched_state(self) -> None:
        """Drop state entries whose shape no longer matches their parameter.

        Subclasses that keep per-parameter buffers override this; the default
        (stateless optimizer) keeps nothing and needs no validation.
        """
