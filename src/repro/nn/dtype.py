"""Global floating-point dtype policy for the nn substrate.

Every layer, loss and :class:`~repro.nn.parameter.Parameter` coerces incoming
arrays through :func:`as_float` instead of hard-coding ``np.float64``.  The
policy defaults to ``float64`` so all numerics match the original
implementation bit-for-bit; ``float32`` can be opted into — typically for
inference, where the halved memory traffic roughly doubles effective
bandwidth on the im2col/pooling hot paths:

>>> from repro.nn import dtype
>>> with dtype.dtype_scope("float32"):
...     logits = network.predict(images)          # float32 end to end

Only ``float32`` and ``float64`` are valid policies.  The setting is a
process-wide module global (not thread-local): training loops are
single-threaded in this codebase, and numpy releases the GIL only inside
individual kernels.

Note that :class:`Parameter` values are cast when the parameter is
*constructed*, so switching the policy mid-training does not retroactively
convert existing weights — use :func:`dtype_scope` around whole phases
(e.g. an inference pass) rather than toggling between individual calls.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

DtypeLike = Union[str, type, np.dtype]

#: dtypes a policy may select.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype: np.dtype = np.dtype(np.float64)


def _validate(dtype: DtypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(str(d) for d in SUPPORTED_DTYPES)
        raise ValueError(f"unsupported dtype policy {resolved}; choose one of: {supported}")
    return resolved


def default_dtype() -> np.dtype:
    """The floating dtype currently used by layers, losses and parameters."""
    return _default_dtype


def set_default_dtype(dtype: DtypeLike) -> np.dtype:
    """Set the global dtype policy, returning the previous one."""
    global _default_dtype
    previous = _default_dtype
    _default_dtype = _validate(dtype)
    return previous


@contextmanager
def dtype_scope(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the dtype policy within a ``with`` block."""
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)


def as_float(x) -> np.ndarray:
    """Coerce ``x`` to an ndarray of the policy dtype (no copy when it already is)."""
    return np.asarray(x, dtype=_default_dtype)
