"""Sequential network container.

:class:`Sequential` chains layers, provides forward/backward over the whole
stack, exposes parameters for the optimizers and regularizers, and offers the
layer-lookup helpers (by name, by type) that the rank-clipping and
group-deletion passes use to find the factorizable layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.exceptions import LayerError
from repro.nn.dtype import as_float
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter


class Sequential:
    """An ordered stack of layers with unique names."""

    def __init__(self, layers: Sequence[Layer] = (), name: str = "sequential"):
        self.name = name
        self._layers: List[Layer] = []
        for layer in layers:
            self.add(layer)

    # ------------------------------------------------------------ structure
    def add(self, layer: Layer) -> "Sequential":
        """Append ``layer``, enforcing unique layer names within the network."""
        if not isinstance(layer, Layer):
            raise LayerError(f"expected a Layer, got {type(layer).__name__}")
        if any(existing.name == layer.name for existing in self._layers):
            raise LayerError(f"duplicate layer name {layer.name!r} in network {self.name!r}")
        self._layers.append(layer)
        return self

    @property
    def layers(self) -> List[Layer]:
        """The ordered list of layers (do not mutate in place)."""
        return list(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __getitem__(self, index: int) -> Layer:
        return self._layers[index]

    def get_layer(self, name: str) -> Layer:
        """Return the layer with the given name, raising ``LayerError`` if absent."""
        for layer in self._layers:
            if layer.name == name:
                return layer
        raise LayerError(f"network {self.name!r} has no layer named {name!r}")

    def layer_index(self, name: str) -> int:
        """Return the position of the layer named ``name``."""
        for idx, layer in enumerate(self._layers):
            if layer.name == name:
                return idx
        raise LayerError(f"network {self.name!r} has no layer named {name!r}")

    def replace_layer(self, name: str, new_layer: Layer) -> "Sequential":
        """Swap the layer called ``name`` for ``new_layer`` (same position)."""
        idx = self.layer_index(name)
        if any(l.name == new_layer.name for i, l in enumerate(self._layers) if i != idx):
            raise LayerError(f"duplicate layer name {new_layer.name!r} in network {self.name!r}")
        self._layers[idx] = new_layer
        return self

    def layers_of_type(self, *layer_types: Type[Layer]) -> List[Layer]:
        """Return the layers that are instances of any of ``layer_types``."""
        return [layer for layer in self._layers if isinstance(layer, layer_types)]

    # -------------------------------------------------------------- compute
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full forward pass."""
        out = x
        for layer in self._layers:
            out = layer.forward(out)
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through the stack, returning the input gradient."""
        grad = grad_output
        for layer in reversed(self._layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Inference-mode forward pass, optionally in mini-batches."""
        was_training = [layer.training for layer in self._layers]
        self.eval()
        try:
            if batch_size is None:
                return self.forward(x)
            outputs = []
            for start in range(0, x.shape[0], batch_size):
                outputs.append(self.forward(x[start : start + batch_size]))
            return np.concatenate(outputs, axis=0)
        finally:
            for layer, flag in zip(self._layers, was_training):
                layer.training = flag

    def predict_classes(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Return arg-max class predictions."""
        return np.argmax(self.predict(x, batch_size=batch_size), axis=1)

    # ------------------------------------------------------------ parameters
    def parameters(self) -> List[Parameter]:
        """All parameters in layer order."""
        params: List[Parameter] = []
        for layer in self._layers:
            params.extend(layer.parameters().values())
        return params

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Iterate over ``(qualified_name, parameter)`` across all layers."""
        for layer in self._layers:
            yield from layer.named_parameters()

    def zero_grad(self) -> None:
        """Zero all parameter gradients."""
        for layer in self._layers:
            layer.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(layer.num_parameters() for layer in self._layers)

    def train(self) -> "Sequential":
        """Put every layer in training mode."""
        for layer in self._layers:
            layer.train()
        return self

    def eval(self) -> "Sequential":
        """Put every layer in inference mode."""
        for layer in self._layers:
            layer.eval()
        return self

    def release_caches(self) -> None:
        """Drop every layer's cached forward/backward context (frees O(batch) memory)."""
        for layer in self._layers:
            layer.release_caches()

    # --------------------------------------------------------------- export
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat ``qualified_name -> array`` mapping of all parameter values."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], *, strict: bool = True) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        With ``strict=True`` every parameter must be present in ``state`` and
        vice versa; shapes must always match.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if strict and (missing or unexpected):
            raise LayerError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = as_float(state[name])
            if value.shape != param.data.shape:
                raise LayerError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
            param.zero_grad()

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Propagate a per-sample input shape through every layer."""
        shape = tuple(input_shape)
        for layer in self._layers:
            shape = layer.output_shape(shape)
        return shape

    def summary(self, input_shape: Optional[Tuple[int, ...]] = None) -> str:
        """Human-readable table of layers, shapes and parameter counts."""
        lines = [f"Network {self.name!r}"]
        header = f"{'layer':<24}{'type':<18}{'output shape':<20}{'params':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        shape = tuple(input_shape) if input_shape is not None else None
        total = 0
        for layer in self._layers:
            if shape is not None:
                shape = layer.output_shape(shape)
                shape_str = str(shape)
            else:
                shape_str = "?"
            count = layer.num_parameters()
            total += count
            lines.append(
                f"{layer.name:<24}{type(layer).__name__:<18}{shape_str:<20}{count:>10}"
            )
        lines.append("-" * len(header))
        lines.append(f"total parameters: {total}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(layer.name for layer in self._layers)
        return f"Sequential(name={self.name!r}, layers=[{inner}])"
