"""Regularizers.

A regularizer adds a penalty to the training objective and a matching term to
the parameter gradients.  The trainer calls :meth:`Regularizer.penalty` when
logging the objective and :meth:`Regularizer.apply_gradients` right after the
data-loss backward pass and before the optimizer step, which realizes Eq. (4)
of the paper:

``E(W) = E_D(W) + λ·Σ_g ||W_g||``

The generic :class:`GroupLassoRegularizer` here works on arbitrary index
groups of arbitrary parameters; the crossbar-aware grouping (row/column
groups per tile) is constructed by :mod:`repro.core.groups` and passed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils.validation import check_non_negative


class Regularizer:
    """Base class for penalty terms added to the training objective."""

    def penalty(self) -> float:
        """Return the scalar penalty value for the current parameter values."""
        raise NotImplementedError

    def apply_gradients(self) -> None:
        """Accumulate the penalty gradient into the parameters' ``grad`` buffers."""
        raise NotImplementedError


class L2Regularizer(Regularizer):
    """Classic weight decay ``(λ/2)·Σ ||w||²`` over a list of parameters."""

    def __init__(self, parameters: Sequence[Parameter], strength: float):
        self.strength = check_non_negative(strength, "strength")
        self._parameters = list(parameters)

    def penalty(self) -> float:
        if self.strength == 0.0:
            return 0.0
        total = sum(float(np.sum(p.data**2)) for p in self._parameters)
        return 0.5 * self.strength * total

    def apply_gradients(self) -> None:
        if self.strength == 0.0:
            return
        for param in self._parameters:
            param.grad += self.strength * param.data


@dataclass(frozen=True)
class WeightGroup:
    """One group of weights inside a single parameter array.

    Attributes
    ----------
    parameter:
        The parameter the group lives in.
    index:
        Any numpy fancy index (tuple of slices / arrays) selecting the group
        entries inside ``parameter.data``.
    label:
        Human-readable identifier, e.g. ``"fc1_u/tile0_1/row3"``.
    kind:
        ``"row"`` or ``"column"`` — which routing wire the group guards.
    """

    parameter: Parameter
    index: Tuple
    label: str
    kind: str

    def values(self) -> np.ndarray:
        """Current weight values of the group (a view when possible)."""
        return self.parameter.data[self.index]

    def norm(self) -> float:
        """Euclidean norm of the group."""
        return float(np.linalg.norm(self.values()))

    def size(self) -> int:
        """Number of weights in the group."""
        return int(np.asarray(self.values()).size)

    def zero_out(self) -> None:
        """Set every weight in the group to exactly zero."""
        self.parameter.data[self.index] = 0.0


class GroupLassoRegularizer(Regularizer):
    """Group-Lasso penalty ``λ·Σ_g ||W_g||`` over explicit weight groups.

    The gradient of each group follows the numerically-safe form of Eq. (6):
    ``λ · w / max(||W_g||, eps)`` so all-zero groups do not produce NaNs.
    """

    def __init__(self, groups: Sequence[WeightGroup], strength: float, *, eps: float = 1e-12):
        self.strength = check_non_negative(strength, "strength")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = float(eps)
        self._groups: List[WeightGroup] = list(groups)

    @property
    def groups(self) -> List[WeightGroup]:
        """The weight groups this regularizer penalizes."""
        return list(self._groups)

    def penalty(self) -> float:
        if self.strength == 0.0 or not self._groups:
            return 0.0
        return self.strength * sum(group.norm() for group in self._groups)

    def apply_gradients(self) -> None:
        if self.strength == 0.0:
            return
        for group in self._groups:
            values = group.values()
            norm = np.linalg.norm(values)
            group.parameter.grad[group.index] += self.strength * values / max(norm, self.eps)

    # ------------------------------------------------------------ reporting
    def group_norms(self) -> List[float]:
        """Euclidean norms of every group, in group order."""
        return [group.norm() for group in self._groups]

    def zero_groups(self, threshold: float = 0.0) -> List[WeightGroup]:
        """Return the groups whose norm is at or below ``threshold``."""
        threshold = check_non_negative(threshold, "threshold")
        return [group for group in self._groups if group.norm() <= threshold]


class LockstepRegularizer:
    """Per-point penalty over the K points of a lockstep training stack.

    The lockstep counterpart of :class:`Regularizer`:
    :meth:`penalties` returns one penalty value per stacked point and
    :meth:`apply_gradients` accumulates into the per-point gradients (which
    alias the stack's gradient slabs).  :meth:`point_regularizer` materializes
    the ordinary serial regularizer for a point that leaves the stack, and
    :meth:`drop_point` removes a departed point's slot.
    """

    def penalties(self) -> np.ndarray:
        """Penalty value of every stacked point, in stack order."""
        raise NotImplementedError

    def apply_gradients(self) -> None:
        """Accumulate every point's penalty gradient into its parameters."""
        raise NotImplementedError

    def point_regularizer(self, k: int) -> Regularizer:
        """The serial regularizer equivalent for stacked point ``k``."""
        raise NotImplementedError

    def drop_point(self, k: int) -> None:
        """Forget stacked point ``k`` (it left the stack)."""
        raise NotImplementedError


class PerPointRegularizers(LockstepRegularizer):
    """Wrap K ordinary per-point regularizers as one lockstep regularizer.

    Each point's regularizer reads and writes that point's ``Parameter``
    objects directly — during lockstep training those alias the stack's
    slabs — so results are bit-identical to serial training by construction.
    This is the generic composition; slab-vectorized penalties (e.g.
    :class:`repro.core.groups.LockstepCrossbarGroupLasso`) specialize it.
    """

    def __init__(self, regularizers: Sequence[Regularizer]):
        self._regularizers: List[Regularizer] = list(regularizers)
        if not self._regularizers:
            raise ValueError("PerPointRegularizers needs at least one regularizer")

    def penalties(self) -> np.ndarray:
        return np.array([reg.penalty() for reg in self._regularizers])

    def apply_gradients(self) -> None:
        for reg in self._regularizers:
            reg.apply_gradients()

    def point_regularizer(self, k: int) -> Regularizer:
        return self._regularizers[k]

    def drop_point(self, k: int) -> None:
        del self._regularizers[k]
