"""Array-level building blocks used by the layers in :mod:`repro.nn.layers`.

Everything here is a pure function of numpy arrays: image-to-column
transformations for convolutions, numerically stable softmax, one-hot
encoding, and padding helpers.  Layers keep the stateful bookkeeping
(parameters, caches) and delegate the math to this module so the math can be
tested in isolation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding} gives non-positive output {out}"
        )
    return out


def pad_images(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad an NCHW batch symmetrically along the spatial axes."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, int, int]:
    """Unfold an NCHW batch into a patch matrix for matrix-multiply convolution.

    Parameters
    ----------
    x:
        Input images of shape ``(N, C, H, W)``.
    kernel_h, kernel_w:
        Spatial extent of the convolution kernel.
    stride, padding:
        Convolution stride and symmetric zero padding.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)`` where
        each row is one receptive field, flattened channel-major.
    out_h, out_w:
        Spatial output dimensions.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects a 4-D NCHW array, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x_padded = pad_images(x, padding)

    # Gather all kernel offsets with strided slicing; this keeps the inner
    # loops over the (small) kernel extent rather than the (large) image.
    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x_padded[:, :, i:i_max:stride, j:j_max:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold a patch matrix back into an NCHW batch (adjoint of :func:`im2col`).

    Overlapping patch contributions are summed, which is exactly the gradient
    of :func:`im2col` with respect to its input.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expected cols of shape {(expected_rows, expected_cols)}, got {cols.shape}"
        )
    cols6 = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer class labels as a ``(len(labels), num_classes)`` one-hot matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes - 1}], got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable element-wise logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
