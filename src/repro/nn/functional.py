"""Array-level building blocks used by the layers in :mod:`repro.nn.layers`.

Everything here is a pure function of numpy arrays: image-to-column
transformations for convolutions, pooling-window helpers, numerically stable
softmax, one-hot encoding, and padding helpers.  Layers keep the stateful
bookkeeping (parameters, caches) and delegate the math to this module so the
math can be tested in isolation.

The convolution/pooling kernels are vectorized:

* :func:`im2col` extracts receptive fields through a **zero-copy**
  :func:`numpy.lib.stride_tricks.sliding_window_view`; the only data movement
  is the single gather that lays the patch matrix out contiguously for the
  following matrix multiply.
* :func:`col2im` scatters with one strided slice-add per kernel offset (each
  statement is a full vectorized operation over ``N·C·out_h·out_w`` entries)
  after prefetching the column gradient into a cache-friendly contiguous
  layout, and uses a loop-free strided *assignment* when windows are disjoint
  (``stride >= kernel``).
* :func:`pool_windows` exposes pooling receptive fields as a zero-copy
  strided view; the pooling layers themselves reduce over shifted zero-copy
  slices without ever materializing windows.

The original offset-loop kernels are preserved in
:mod:`repro.nn._reference` for parity tests and benchmarks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.exceptions import ShapeError
from repro.nn.dtype import as_float, default_dtype


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the spatial output size of a convolution / pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding} gives non-positive output {out}"
        )
    return out


def pad_images(x: np.ndarray, padding: int, *, value: float = 0.0) -> np.ndarray:
    """Pad an NCHW batch symmetrically along the spatial axes with ``value``.

    Max pooling pads with ``-inf`` so padding can never win the max (and can
    therefore never swallow gradient); everything else pads with zeros.
    """
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
        constant_values=value,
    )


def sliding_windows(
    x_padded: np.ndarray, kernel_h: int, kernel_w: int, stride: int, *, writeable: bool = False
) -> np.ndarray:
    """Zero-copy ``(N, C, out_h, out_w, kh, kw)`` view of all receptive fields.

    ``x_padded`` must already include any spatial padding.  No data is moved:
    the result is a strided view whose last two axes walk the kernel extent.
    """
    view = sliding_window_view(x_padded, (kernel_h, kernel_w), axis=(2, 3), writeable=writeable)
    return view[:, :, ::stride, ::stride]


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, int, int]:
    """Unfold an NCHW batch into a patch matrix for matrix-multiply convolution.

    Parameters
    ----------
    x:
        Input images of shape ``(N, C, H, W)``.
    kernel_h, kernel_w:
        Spatial extent of the convolution kernel.
    stride, padding:
        Convolution stride and symmetric zero padding.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)`` where
        each row is one receptive field, flattened channel-major.
    out_h, out_w:
        Spatial output dimensions.
    """
    if x.ndim != 4:
        raise ShapeError(f"im2col expects a 4-D NCHW array, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x_padded = pad_images(x, padding)
    windows = sliding_windows(x_padded, kernel_h, kernel_w, stride)
    # The transpose + reshape is the single gather that materializes the
    # patch matrix; everything before it is stride arithmetic.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Fold a patch matrix back into an NCHW batch (adjoint of :func:`im2col`).

    Overlapping patch contributions are summed, which is exactly the gradient
    of :func:`im2col` with respect to its input.  When windows are disjoint
    (``stride >= kernel``) the scatter is a single loop-free strided
    assignment; otherwise one vectorized slice-add per kernel offset
    accumulates the overlaps, reading from a contiguous prefetched layout.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expected cols of shape {(expected_rows, expected_cols)}, got {cols.shape}"
        )
    x_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    if stride >= kernel_h and stride >= kernel_w:
        # Disjoint windows: every padded pixel belongs to at most one window,
        # so the adjoint is a pure (vectorized) scatter with no accumulation.
        target = sliding_windows(x_padded, kernel_h, kernel_w, stride, writeable=True)
        target[...] = cols6.transpose(0, 3, 1, 2, 4, 5)
    else:
        # Overlapping windows: accumulate one kernel offset at a time.  The
        # contiguous prefetch makes the k² strided adds read sequential
        # memory, which measures ~1.6x faster than accumulating straight from
        # the transposed view.
        cols6 = np.ascontiguousarray(cols6.transpose(0, 3, 4, 5, 1, 2))
        for i in range(kernel_h):
            i_max = i + stride * out_h
            for j in range(kernel_w):
                j_max = j + stride * out_w
                x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


#: Minimum input-channel count for the fused per-offset conv backward; below
#: this the per-offset matmuls are too skinny to beat one large matmul.
FUSED_BACKWARD_MIN_CHANNELS = 8


def conv_backward_input(
    grad_mat: np.ndarray,
    weight_matrix: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Input gradient of an im2col convolution, fused per kernel offset.

    Computes ``col2im(grad_mat @ weight_matrix)`` — when profitable without
    materializing the ``(N·out_h·out_w, C·kh·kw)`` column gradient: for every
    kernel offset ``(i, j)`` the slice ``weight_matrix[:, :, i, j]`` (viewing
    the matrix as ``(out, C, kh, kw)``) is multiplied against ``grad_mat``
    and the ``(N·out_h·out_w, C)`` result is accumulated straight into the
    padded input gradient.  For overlapping windows with enough input
    channels this replaces the single large matmul + contiguous prefetch +
    k² strided adds of the unfused path with k² small matmuls that write
    directly to their destination, skipping one full-size intermediate array
    (~2x on 5×5/stride-1 mid-network convolutions).  Disjoint windows keep
    the loop-free strided-assignment path, and narrow inputs (fewer than
    ``FUSED_BACKWARD_MIN_CHANNELS`` channels, where the per-offset matmuls
    are too skinny for BLAS to win) keep the unfused path.

    Parameters
    ----------
    grad_mat:
        Output gradient as a ``(N·out_h·out_w, out_like)`` matrix (the same
        orientation the forward pass multiplies from the right).
    weight_matrix:
        ``(out_like, C·kh·kw)`` weight matrix (``Conv2D.weight_matrix``, or a
        low-rank factor transposed to this orientation).
    input_shape, kernel_h, kernel_w, stride, padding:
        The convolution geometry being differentiated.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    expected_rows = n * out_h * out_w
    if grad_mat.shape[0] != expected_rows:
        raise ShapeError(
            f"conv_backward_input expected grad_mat with {expected_rows} rows, "
            f"got shape {grad_mat.shape}"
        )
    if weight_matrix.shape != (grad_mat.shape[1], c * kernel_h * kernel_w):
        raise ShapeError(
            f"conv_backward_input expected weight_matrix of shape "
            f"{(grad_mat.shape[1], c * kernel_h * kernel_w)}, got {weight_matrix.shape}"
        )
    if (stride >= kernel_h and stride >= kernel_w) or c < FUSED_BACKWARD_MIN_CHANNELS:
        return col2im(
            grad_mat @ weight_matrix, input_shape, kernel_h, kernel_w, stride, padding
        )
    weight4 = weight_matrix.reshape(grad_mat.shape[1], c, kernel_h, kernel_w)
    x_padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_mat.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            contribution = grad_mat @ weight4[:, :, i, j]  # (N·out_h·out_w, C)
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += contribution.reshape(
                n, out_h, out_w, c
            ).transpose(0, 3, 1, 2)
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


def pool_windows(
    x: np.ndarray, pool_size: int, stride: int, padding: int, *, pad_value: float = 0.0
) -> Tuple[np.ndarray, int, int]:
    """Zero-copy ``(N, C, out_h, out_w, k, k)`` view of all pooling windows.

    The view aliases (a padded copy of) ``x``; reduce over the last two axes
    to pool.  ``pad_value`` selects the padding identity (``0`` for average
    pooling, ``-inf`` for max pooling).
    """
    if x.ndim != 4:
        raise ShapeError(f"pool_windows expects a 4-D NCHW array, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, pool_size, stride, padding)
    out_w = conv_output_size(w, pool_size, stride, padding)
    x_padded = pad_images(x, padding, value=pad_value)
    return sliding_windows(x_padded, pool_size, pool_size, stride), out_h, out_w


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer class labels as a ``(len(labels), num_classes)`` one-hot matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes - 1}], got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=default_dtype())
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable element-wise logistic sigmoid."""
    x = as_float(x)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
