"""Iteration-based training loop.

The paper schedules everything in *iterations* (mini-batch steps), e.g.
"clip ranks every S = 500 iterations", so the trainer is iteration-centric
rather than epoch-centric.  Callbacks observe the trainer after every
iteration and may restructure the network (rank clipping replaces factor
matrices; group deletion installs pruning masks); after a structural change
they must call :meth:`Trainer.rebind_optimizer` so the optimizer tracks the
new parameter arrays.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.loaders import DataLoader
from repro.exceptions import ShapeError, TrainingError
from repro.nn import functional as F
from repro.nn.batched import NetworkStack, stacked_predict
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.optim.base import Optimizer
from repro.nn.optim.lockstep import LockstepSGD
from repro.nn.regularization import LockstepRegularizer, Regularizer
from repro.utils.logging import get_logger

logger = get_logger("nn.trainer")


class Callback:
    """Observer hooks invoked by the trainer."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        """Called once before the first iteration."""

    def on_iteration_end(self, trainer: "Trainer", iteration: int) -> None:
        """Called after every optimizer step (``iteration`` is 1-based)."""

    def on_train_end(self, trainer: "Trainer") -> None:
        """Called once after the last iteration."""


@dataclass
class TrainingHistory:
    """Per-iteration and per-evaluation traces recorded during training."""

    iterations: List[int] = field(default_factory=list)
    loss: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)
    eval_iterations: List[int] = field(default_factory=list)
    eval_accuracy: List[float] = field(default_factory=list)

    def last_accuracy(self) -> Optional[float]:
        """The most recent evaluation accuracy, or ``None`` before any evaluation."""
        return self.eval_accuracy[-1] if self.eval_accuracy else None

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view for serialization."""
        return {
            "iterations": list(self.iterations),
            "loss": list(self.loss),
            "penalty": list(self.penalty),
            "eval_iterations": list(self.eval_iterations),
            "eval_accuracy": list(self.eval_accuracy),
        }


class Trainer:
    """Mini-batch trainer tying together network, loss, optimizer and callbacks."""

    def __init__(
        self,
        network: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        train_loader: DataLoader,
        *,
        eval_data: Optional[tuple] = None,
        regularizers: Sequence[Regularizer] = (),
        callbacks: Sequence[Callback] = (),
        eval_interval: int = 100,
        eval_batch_size: int = 256,
        log_interval: int = 0,
    ):
        if eval_interval < 1:
            raise TrainingError(f"eval_interval must be >= 1, got {eval_interval}")
        self.network = network
        self.loss = loss
        self.optimizer = optimizer
        self.train_loader = train_loader
        self.eval_data = eval_data
        self.regularizers = list(regularizers)
        self.callbacks = list(callbacks)
        self.eval_interval = int(eval_interval)
        self.eval_batch_size = int(eval_batch_size)
        self.log_interval = int(log_interval)
        self.history = TrainingHistory()
        self.iteration = 0
        self._batch_iter = None

    # ------------------------------------------------------------- plumbing
    def rebind_optimizer(self) -> None:
        """Point the optimizer at the network's current parameter objects.

        Must be called after any structural change (rank clipping) that
        replaces parameter arrays, otherwise the optimizer keeps updating
        stale arrays.
        """
        self.optimizer.set_parameters(self.network.parameters())

    def add_regularizer(self, regularizer: Regularizer) -> None:
        """Attach an additional penalty term (e.g. group Lasso) mid-training."""
        self.regularizers.append(regularizer)

    def remove_regularizer(self, regularizer: Regularizer) -> None:
        """Detach a previously-added penalty term."""
        self.regularizers = [r for r in self.regularizers if r is not regularizer]

    def _next_batch(self):
        if self._batch_iter is None:
            self._batch_iter = iter(self.train_loader)
        try:
            return next(self._batch_iter)
        except StopIteration:
            self._batch_iter = iter(self.train_loader)
            return next(self._batch_iter)

    # ------------------------------------------------------------- training
    def train_step(self) -> float:
        """Run a single mini-batch update and return the (data + penalty) loss."""
        inputs, targets = self._next_batch()
        self.network.train()
        self.network.zero_grad()
        logits = self.network.forward(inputs)
        data_loss = self.loss.forward(logits, targets)
        grad = self.loss.backward()
        self.network.backward(grad)
        penalty = 0.0
        for regularizer in self.regularizers:
            penalty += regularizer.penalty()
            regularizer.apply_gradients()
        self.optimizer.step()
        self.iteration += 1
        total = data_loss + penalty
        self.history.iterations.append(self.iteration)
        self.history.loss.append(float(data_loss))
        self.history.penalty.append(float(penalty))
        return float(total)

    def evaluate(self) -> Optional[float]:
        """Evaluate accuracy on the held-out data, recording it in the history."""
        if self.eval_data is None:
            return None
        inputs, targets = self.eval_data
        logits = self.network.predict(inputs, batch_size=self.eval_batch_size)
        acc = accuracy(logits, targets)
        self.history.eval_iterations.append(self.iteration)
        self.history.eval_accuracy.append(float(acc))
        return float(acc)

    def run(self, num_iterations: int) -> TrainingHistory:
        """Train for ``num_iterations`` mini-batch steps."""
        if num_iterations < 0:
            raise TrainingError(f"num_iterations must be >= 0, got {num_iterations}")
        for callback in self.callbacks:
            callback.on_train_begin(self)
        for _ in range(num_iterations):
            loss_value = self.train_step()
            if self.eval_data is not None and self.iteration % self.eval_interval == 0:
                self.evaluate()
            if self.log_interval and self.iteration % self.log_interval == 0:
                acc = self.history.last_accuracy()
                acc_str = f", acc={acc:.4f}" if acc is not None else ""
                logger.info("iter %d: loss=%.4f%s", self.iteration, loss_value, acc_str)
            for callback in self.callbacks:
                callback.on_iteration_end(self, self.iteration)
        for callback in self.callbacks:
            callback.on_train_end(self)
        return self.history


# ---------------------------------------------------------------------------
# Lockstep training: K same-architecture networks trained as one tensor op
# ---------------------------------------------------------------------------
def _stacked_softmax_ce(logits3: np.ndarray, targets: np.ndarray):
    """Per-point softmax cross-entropy over ``(K, N, classes)`` logits.

    One log-softmax pass over the super-batch replaces K
    :class:`~repro.nn.losses.SoftmaxCrossEntropy` calls; every operation is
    row-wise or per-point, so losses and gradients are bit-identical to the
    per-point loss objects.  ``targets`` is the ``(K·N,)`` point-major
    concatenation; returns ``(losses (K,), grad (K·N, classes))``.
    """
    k, n, num_classes = logits3.shape
    if targets.shape != (k * n,):
        raise ShapeError(
            f"targets must be 1-D with length {k * n}, got shape {targets.shape}"
        )
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError(f"targets must be class indices in [0, {num_classes - 1}]")
    targets = targets.astype(int)
    log_probs = F.log_softmax(logits3.reshape(k * n, num_classes), axis=1)
    picked = log_probs[np.arange(k * n), targets]
    losses = -(picked.reshape(k, n).mean(axis=1))
    grad = np.exp(log_probs)
    grad[np.arange(k * n), targets] -= 1.0
    return losses, grad / n


class _LockstepPoint:
    """Bookkeeping for one network riding (or having left) a lockstep stack."""

    __slots__ = (
        "index",
        "network",
        "loss",
        "callbacks",
        "history",
        "handle",
        "loader",
        "batch_iter",
        "detached",
        "optimizer",
        "regularizers",
        "rebind_requested",
    )

    def __init__(self, index: int, network: Sequential, loss: Loss, callbacks):
        self.index = index
        self.network = network
        self.loss = loss
        self.callbacks = list(callbacks)
        self.history = TrainingHistory()
        self.handle: Optional["LockstepPointHandle"] = None
        self.loader: Optional[DataLoader] = None
        self.batch_iter = None
        self.detached = False
        self.optimizer: Optional[Optimizer] = None
        # (source lockstep regularizer, materialized serial regularizer)
        # pairs, so removing the lockstep regularizer also detaches its
        # serial counterpart from this point.
        self.regularizers: List[tuple] = []
        self.rebind_requested = False


class LockstepPointHandle:
    """Per-point facade with the :class:`Trainer` surface callbacks rely on.

    Callbacks written against ``Trainer`` (rank clipping, group deletion)
    receive one of these per point: ``network``, ``history``, ``iteration``
    and ``evaluate()`` behave exactly like the serial trainer's, and
    ``rebind_optimizer()`` flags the point so the lockstep trainer re-absorbs
    an in-place restructure (same shapes: slab refresh + per-point momentum
    reset) or detaches the point from the stack (new shapes: it finishes on
    the serial path).
    """

    def __init__(self, trainer: "LockstepTrainer", point: _LockstepPoint):
        self._trainer = trainer
        self._point = point

    @property
    def network(self) -> Sequential:
        """The point's network (its parameters alias the stack while stacked)."""
        return self._point.network

    @property
    def history(self) -> TrainingHistory:
        """The point's training history."""
        return self._point.history

    @property
    def iteration(self) -> int:
        """The lockstep trainer's shared iteration counter."""
        return self._trainer.iteration

    def evaluate(self) -> Optional[float]:
        """Evaluate this point on the held-out data (mirrors ``Trainer.evaluate``)."""
        return self._trainer._evaluate_point(self._point)

    def rebind_optimizer(self) -> None:
        """Signal a structural change (mirrors ``Trainer.rebind_optimizer``)."""
        self._point.rebind_requested = True


class LockstepTrainer:
    """Train K same-architecture networks in lockstep on one core.

    Mirrors the :class:`Trainer` iteration/callback/regularizer contract over
    a :class:`~repro.nn.batched.NetworkStack`: each iteration draws one
    mini-batch (shared by every point, or one per point), runs the stacked
    forward/backward, applies :class:`~repro.nn.regularization.LockstepRegularizer`
    penalties (e.g. the per-point-λ crossbar group Lasso) and one
    :class:`~repro.nn.optim.lockstep.LockstepSGD` step over the slabs.  Every
    per-point trajectory — weights, losses, penalties, evaluation accuracies
    — is bit-identical to running K serial :class:`Trainer` instances.

    Structural changes made by callbacks are handled per point: a mask
    installation (same parameter shapes) is re-absorbed into the slabs, and a
    shape-changing restructure (rank clipping) detaches the point, which
    finishes the run on the ordinary serial path inside the same loop —
    drawing the same batches — so remaining points keep the stacked fast
    path.

    Parameters
    ----------
    stack:
        The compiled :class:`~repro.nn.batched.NetworkStack`.
    loss:
        Loss template; one deep copy is made per point.
    optimizer:
        A :class:`~repro.nn.optim.lockstep.LockstepSGD` over the stack's slabs.
    train_loader:
        One shared :class:`~repro.data.loaders.DataLoader` (every point sees
        the same batch stream, enabling shared im2col) or a sequence of K
        per-point loaders (independent streams, e.g. ``per_point_seed``).
    callbacks:
        One callback list per point (or empty).
    regularizers, eval_data, eval_interval, eval_batch_size, log_interval:
        As in :class:`Trainer`; regularizers must implement the
        :class:`~repro.nn.regularization.LockstepRegularizer` protocol.
    """

    def __init__(
        self,
        stack: NetworkStack,
        loss: Loss,
        optimizer: LockstepSGD,
        train_loader: Union[DataLoader, Sequence[DataLoader]],
        *,
        eval_data: Optional[tuple] = None,
        regularizers: Sequence[LockstepRegularizer] = (),
        callbacks: Sequence[Sequence[Callback]] = (),
        eval_interval: int = 100,
        eval_batch_size: int = 256,
        log_interval: int = 0,
    ):
        if eval_interval < 1:
            raise TrainingError(f"eval_interval must be >= 1, got {eval_interval}")
        self.stack = stack
        self.optimizer = optimizer
        self.eval_data = eval_data
        self.regularizers: List[LockstepRegularizer] = list(regularizers)
        self.eval_interval = int(eval_interval)
        self.eval_batch_size = int(eval_batch_size)
        self.log_interval = int(log_interval)
        self.iteration = 0

        num_points = stack.num_points
        per_point_callbacks = [list(cbs) for cbs in callbacks] if callbacks else []
        if per_point_callbacks and len(per_point_callbacks) != num_points:
            raise TrainingError(
                f"expected one callback list per point ({num_points}), "
                f"got {len(per_point_callbacks)}"
            )
        if not per_point_callbacks:
            per_point_callbacks = [[] for _ in range(num_points)]

        # With the (stateless) softmax CE, the stacked path fuses all K loss
        # computations into one log-softmax over the super-batch.
        self._fused_ce = type(loss) is SoftmaxCrossEntropy
        self._points: List[_LockstepPoint] = []
        for index, network in enumerate(stack.networks):
            point = _LockstepPoint(
                index, network, copy.deepcopy(loss), per_point_callbacks[index]
            )
            point.handle = LockstepPointHandle(self, point)
            self._points.append(point)
        self._stacked: List[_LockstepPoint] = list(self._points)
        self._detached: List[_LockstepPoint] = []

        if isinstance(train_loader, DataLoader):
            self._shared_loader: Optional[DataLoader] = train_loader
            self._shared_iter = None
        else:
            loaders = list(train_loader)
            if len(loaders) != num_points:
                raise TrainingError(
                    f"expected one loader per point ({num_points}), got {len(loaders)}"
                )
            self._shared_loader = None
            self._shared_iter = None
            for point, loader in zip(self._points, loaders):
                point.loader = loader

    # ------------------------------------------------------------- plumbing
    @property
    def points(self) -> List[LockstepPointHandle]:
        """Per-point handles, in original point order."""
        return [point.handle for point in self._points]

    @property
    def histories(self) -> List[TrainingHistory]:
        """Per-point training histories, in original point order."""
        return [point.history for point in self._points]

    @property
    def num_stacked(self) -> int:
        """Number of points still on the stacked fast path."""
        return len(self._stacked)

    @property
    def num_detached(self) -> int:
        """Number of points that diverged structurally and run serially."""
        return len(self._detached)

    def add_regularizer(self, regularizer: LockstepRegularizer) -> None:
        """Attach a lockstep penalty term (e.g. the per-point-λ group Lasso).

        The penalty covers the points currently in the stack; points that
        already diverged onto the serial path are not retrofitted (a lockstep
        regularizer has no slot for them), so attach penalties before
        training starts, as :func:`~repro.core.group_deletion.run_lockstep_deletion`
        does.
        """
        self.regularizers.append(regularizer)

    def remove_regularizer(self, regularizer: LockstepRegularizer) -> None:
        """Detach a previously-added penalty term — including the serial
        counterparts materialized for points that left the stack."""
        self.regularizers = [r for r in self.regularizers if r is not regularizer]
        for point in self._detached:
            point.regularizers = [
                (source, serial)
                for source, serial in point.regularizers
                if source is not regularizer
            ]

    def _next_shared_batch(self):
        if self._shared_iter is None:
            self._shared_iter = iter(self._shared_loader)
        try:
            return next(self._shared_iter)
        except StopIteration:
            self._shared_iter = iter(self._shared_loader)
            return next(self._shared_iter)

    @staticmethod
    def _next_point_batch(point: _LockstepPoint):
        if point.batch_iter is None:
            point.batch_iter = iter(point.loader)
        try:
            return next(point.batch_iter)
        except StopIteration:
            point.batch_iter = iter(point.loader)
            return next(point.batch_iter)

    # ------------------------------------------------------- point handling
    def refresh_points(self) -> None:
        """Re-absorb external in-place restructures (e.g. mask installation).

        Call after structural operations performed outside :meth:`run` —
        ``apply_deletion`` re-binds parameter data when it installs pruning
        masks — so the slabs pick the changes up before training resumes.
        """
        self._absorb_point_changes()

    def _absorb_point_changes(self) -> None:
        # Reversed so a detach does not shift the slots still to be scanned.
        for slot in range(len(self._stacked) - 1, -1, -1):
            point = self._stacked[slot]
            status = self.stack.scan_point(slot)
            if status == "diverged":
                self._detach_point(slot)
            elif status == "rebound" or point.rebind_requested:
                self.stack.refresh_point(slot)
                if point.rebind_requested:
                    self.optimizer.reset_point(slot)
            point.rebind_requested = False
        for point in self._detached:
            if point.rebind_requested:
                point.optimizer.set_parameters(point.network.parameters())
                point.rebind_requested = False

    def _detach_point(self, slot: int) -> None:
        point = self._stacked.pop(slot)
        # Materialize the serial equivalents before the lockstep objects
        # forget the slot, keeping the source so remove_regularizer reaches
        # them.
        point.regularizers = [
            (regularizer, regularizer.point_regularizer(slot))
            for regularizer in self.regularizers
        ]
        network = self.stack.drop_point(slot)
        point.optimizer = self.optimizer.make_point_optimizer(
            slot, network.parameters()
        )
        self.optimizer.drop_point(slot)
        for regularizer in self.regularizers:
            regularizer.drop_point(slot)
        point.detached = True
        self._detached.append(point)
        logger.info(
            "lockstep point %d diverged structurally; finishing on the serial path",
            point.index,
        )

    # ------------------------------------------------------------- training
    def train_step(self) -> List[float]:
        """Run one lockstep mini-batch update; returns per-point total losses.

        Losses come back in original point order (stacked and detached points
        alike).
        """
        if self._shared_loader is not None:
            shared_batch = self._next_shared_batch()
            batch_of = {id(point): shared_batch for point in self._points}
        else:
            batch_of = {
                id(point): self._next_point_batch(point) for point in self._points
            }

        self.iteration += 1
        totals: Dict[int, float] = {}

        if self._stacked:
            self.stack.train()
            self.stack.zero_grad()
            if self._shared_loader is not None:
                inputs = shared_batch[0]
                logits3 = self.stack.forward(inputs)
            else:
                logits3 = self.stack.forward(
                    [batch_of[id(point)][0] for point in self._stacked]
                )
            if self._fused_ce:
                targets = np.concatenate(
                    [batch_of[id(point)][1] for point in self._stacked]
                )
                data_losses, grad_super = _stacked_softmax_ce(logits3, targets)
            else:
                data_losses = []
                grads = []
                for slot, point in enumerate(self._stacked):
                    targets = batch_of[id(point)][1]
                    data_losses.append(point.loss.forward(logits3[slot], targets))
                    grads.append(point.loss.backward())
                grad_super = np.concatenate(grads, axis=0)
            self.stack.backward(grad_super)
            penalties = [0.0 for _ in self._stacked]
            for regularizer in self.regularizers:
                values = regularizer.penalties()
                regularizer.apply_gradients()
                for slot in range(len(self._stacked)):
                    penalties[slot] += float(values[slot])
            self.optimizer.step()
            for slot, point in enumerate(self._stacked):
                point.history.iterations.append(self.iteration)
                point.history.loss.append(float(data_losses[slot]))
                point.history.penalty.append(float(penalties[slot]))
                totals[point.index] = float(data_losses[slot] + penalties[slot])

        for point in self._detached:
            inputs, targets = batch_of[id(point)]
            point.network.train()
            point.network.zero_grad()
            logits = point.network.forward(inputs)
            data_loss = point.loss.forward(logits, targets)
            grad = point.loss.backward()
            point.network.backward(grad)
            penalty = 0.0
            for _, regularizer in point.regularizers:
                penalty += regularizer.penalty()
                regularizer.apply_gradients()
            point.optimizer.step()
            point.history.iterations.append(self.iteration)
            point.history.loss.append(float(data_loss))
            point.history.penalty.append(float(penalty))
            totals[point.index] = float(data_loss + penalty)

        return [totals[point.index] for point in self._points]

    def _evaluate_point(self, point: _LockstepPoint) -> Optional[float]:
        if self.eval_data is None:
            return None
        inputs, targets = self.eval_data
        logits = point.network.predict(inputs, batch_size=self.eval_batch_size)
        acc = accuracy(logits, targets)
        point.history.eval_iterations.append(self.iteration)
        point.history.eval_accuracy.append(float(acc))
        return float(acc)

    def evaluate(self) -> Optional[List[float]]:
        """Evaluate every point on the held-out data, recording histories.

        Stacked points share one batched inference pass (bit-identical to
        per-network ``predict``); detached points predict individually.
        Returns per-point accuracies in original order, or ``None`` when no
        evaluation data is attached (mirroring :class:`Trainer`).
        """
        if self.eval_data is None:
            return None
        inputs, targets = self.eval_data
        accuracies: Dict[int, float] = {}
        if self._stacked:
            logits3 = stacked_predict(
                [point.network for point in self._stacked],
                inputs,
                batch_size=self.eval_batch_size,
            )
            for slot, point in enumerate(self._stacked):
                accuracies[point.index] = float(accuracy(logits3[slot], targets))
        for point in self._detached:
            logits = point.network.predict(inputs, batch_size=self.eval_batch_size)
            accuracies[point.index] = float(accuracy(logits, targets))
        for point in self._points:
            point.history.eval_iterations.append(self.iteration)
            point.history.eval_accuracy.append(accuracies[point.index])
        return [accuracies[point.index] for point in self._points]

    def run(self, num_iterations: int) -> List[TrainingHistory]:
        """Train every point for ``num_iterations`` lockstep mini-batch steps."""
        if num_iterations < 0:
            raise TrainingError(f"num_iterations must be >= 0, got {num_iterations}")
        for point in self._points:
            for callback in point.callbacks:
                callback.on_train_begin(point.handle)
        self._absorb_point_changes()
        for _ in range(num_iterations):
            losses = self.train_step()
            if self.eval_data is not None and self.iteration % self.eval_interval == 0:
                self.evaluate()
            if self.log_interval and self.iteration % self.log_interval == 0:
                logger.info(
                    "lockstep iter %d: mean loss=%.4f (%d stacked, %d serial)",
                    self.iteration,
                    float(np.mean(losses)),
                    len(self._stacked),
                    len(self._detached),
                )
            for point in self._points:
                for callback in point.callbacks:
                    callback.on_iteration_end(point.handle, self.iteration)
            self._absorb_point_changes()
        for point in self._points:
            for callback in point.callbacks:
                callback.on_train_end(point.handle)
        self._absorb_point_changes()
        return self.histories

    def finalize(self) -> None:
        """Release the slab aliases: every network owns its arrays again."""
        self.stack.detach_all()
