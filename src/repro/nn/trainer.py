"""Iteration-based training loop.

The paper schedules everything in *iterations* (mini-batch steps), e.g.
"clip ranks every S = 500 iterations", so the trainer is iteration-centric
rather than epoch-centric.  Callbacks observe the trainer after every
iteration and may restructure the network (rank clipping replaces factor
matrices; group deletion installs pruning masks); after a structural change
they must call :meth:`Trainer.rebind_optimizer` so the optimizer tracks the
new parameter arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.loaders import DataLoader
from repro.exceptions import TrainingError
from repro.nn.losses import Loss
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.optim.base import Optimizer
from repro.nn.regularization import Regularizer
from repro.utils.logging import get_logger

logger = get_logger("nn.trainer")


class Callback:
    """Observer hooks invoked by the trainer."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        """Called once before the first iteration."""

    def on_iteration_end(self, trainer: "Trainer", iteration: int) -> None:
        """Called after every optimizer step (``iteration`` is 1-based)."""

    def on_train_end(self, trainer: "Trainer") -> None:
        """Called once after the last iteration."""


@dataclass
class TrainingHistory:
    """Per-iteration and per-evaluation traces recorded during training."""

    iterations: List[int] = field(default_factory=list)
    loss: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)
    eval_iterations: List[int] = field(default_factory=list)
    eval_accuracy: List[float] = field(default_factory=list)

    def last_accuracy(self) -> Optional[float]:
        """The most recent evaluation accuracy, or ``None`` before any evaluation."""
        return self.eval_accuracy[-1] if self.eval_accuracy else None

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dict view for serialization."""
        return {
            "iterations": list(self.iterations),
            "loss": list(self.loss),
            "penalty": list(self.penalty),
            "eval_iterations": list(self.eval_iterations),
            "eval_accuracy": list(self.eval_accuracy),
        }


class Trainer:
    """Mini-batch trainer tying together network, loss, optimizer and callbacks."""

    def __init__(
        self,
        network: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        train_loader: DataLoader,
        *,
        eval_data: Optional[tuple] = None,
        regularizers: Sequence[Regularizer] = (),
        callbacks: Sequence[Callback] = (),
        eval_interval: int = 100,
        eval_batch_size: int = 256,
        log_interval: int = 0,
    ):
        if eval_interval < 1:
            raise TrainingError(f"eval_interval must be >= 1, got {eval_interval}")
        self.network = network
        self.loss = loss
        self.optimizer = optimizer
        self.train_loader = train_loader
        self.eval_data = eval_data
        self.regularizers = list(regularizers)
        self.callbacks = list(callbacks)
        self.eval_interval = int(eval_interval)
        self.eval_batch_size = int(eval_batch_size)
        self.log_interval = int(log_interval)
        self.history = TrainingHistory()
        self.iteration = 0
        self._batch_iter = None

    # ------------------------------------------------------------- plumbing
    def rebind_optimizer(self) -> None:
        """Point the optimizer at the network's current parameter objects.

        Must be called after any structural change (rank clipping) that
        replaces parameter arrays, otherwise the optimizer keeps updating
        stale arrays.
        """
        self.optimizer.set_parameters(self.network.parameters())

    def add_regularizer(self, regularizer: Regularizer) -> None:
        """Attach an additional penalty term (e.g. group Lasso) mid-training."""
        self.regularizers.append(regularizer)

    def remove_regularizer(self, regularizer: Regularizer) -> None:
        """Detach a previously-added penalty term."""
        self.regularizers = [r for r in self.regularizers if r is not regularizer]

    def _next_batch(self):
        if self._batch_iter is None:
            self._batch_iter = iter(self.train_loader)
        try:
            return next(self._batch_iter)
        except StopIteration:
            self._batch_iter = iter(self.train_loader)
            return next(self._batch_iter)

    # ------------------------------------------------------------- training
    def train_step(self) -> float:
        """Run a single mini-batch update and return the (data + penalty) loss."""
        inputs, targets = self._next_batch()
        self.network.train()
        self.network.zero_grad()
        logits = self.network.forward(inputs)
        data_loss = self.loss.forward(logits, targets)
        grad = self.loss.backward()
        self.network.backward(grad)
        penalty = 0.0
        for regularizer in self.regularizers:
            penalty += regularizer.penalty()
            regularizer.apply_gradients()
        self.optimizer.step()
        self.iteration += 1
        total = data_loss + penalty
        self.history.iterations.append(self.iteration)
        self.history.loss.append(float(data_loss))
        self.history.penalty.append(float(penalty))
        return float(total)

    def evaluate(self) -> Optional[float]:
        """Evaluate accuracy on the held-out data, recording it in the history."""
        if self.eval_data is None:
            return None
        inputs, targets = self.eval_data
        logits = self.network.predict(inputs, batch_size=self.eval_batch_size)
        acc = accuracy(logits, targets)
        self.history.eval_iterations.append(self.iteration)
        self.history.eval_accuracy.append(float(acc))
        return float(acc)

    def run(self, num_iterations: int) -> TrainingHistory:
        """Train for ``num_iterations`` mini-batch steps."""
        if num_iterations < 0:
            raise TrainingError(f"num_iterations must be >= 0, got {num_iterations}")
        for callback in self.callbacks:
            callback.on_train_begin(self)
        for _ in range(num_iterations):
            loss_value = self.train_step()
            if self.eval_data is not None and self.iteration % self.eval_interval == 0:
                self.evaluate()
            if self.log_interval and self.iteration % self.log_interval == 0:
                acc = self.history.last_accuracy()
                acc_str = f", acc={acc:.4f}" if acc is not None else ""
                logger.info("iter %d: loss=%.4f%s", self.iteration, loss_value, acc_str)
            for callback in self.callbacks:
                callback.on_iteration_end(self, self.iteration)
        for callback in self.callbacks:
            callback.on_train_end(self)
        return self.history
