"""Dense (fully-connected) layer."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.dtype import as_float
from repro.nn.initializers import Zeros, get_initializer
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int


class Linear(Layer):
    """Affine map ``y = x · Wᵀ + b`` with ``W ∈ R^{out_features × in_features}``.

    The weight orientation (one row per output neuron) matches the paper's
    ``W ∈ R^{N×M}`` convention, where ``N`` is the number of output neurons
    and ``M`` the fan-in; this is the matrix that rank clipping factorizes and
    that the hardware mapper tiles onto crossbars.
    """

    _cache_attrs = ("_input_cache",)

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        weight_init="he_normal",
        name: str = "",
        rng: RngLike = None,
    ):
        super().__init__(name=name or "linear")
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.use_bias = bool(bias)

        rng = as_rng(rng)
        init = get_initializer(weight_init)
        weight = init((self.out_features, self.in_features), self.in_features, self.out_features, rng)
        self.weight = self.add_parameter("weight", Parameter(weight))
        if self.use_bias:
            bias_init = Zeros()((self.out_features,), self.in_features, self.out_features, rng)
            self.bias: Optional[Parameter] = self.add_parameter("bias", Parameter(bias_init))
        else:
            self.bias = None
        self._input_cache: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- math
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input_cache = x if self.training else None
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        x = self._input_cache
        grad_output = as_float(grad_output)
        if grad_output.shape != (x.shape[0], self.out_features):
            raise ShapeError(
                f"{self.name}: expected grad_output of shape "
                f"({x.shape[0]}, {self.out_features}), got {grad_output.shape}"
            )
        self.weight.accumulate_grad(grad_output.T @ x)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        self.release_caches()
        return grad_output @ self.weight.data

    # ------------------------------------------------------------- geometry
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ShapeError(
                f"{self.name}: expected per-sample input shape ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    @property
    def weight_matrix(self) -> np.ndarray:
        """The ``N×M`` weight matrix seen by rank clipping and the hardware mapper."""
        return self.weight.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Linear(name={self.name!r}, in={self.in_features}, out={self.out_features}, "
            f"bias={self.use_bias})"
        )
