"""Element-wise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit ``max(x, 0)``."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "relu")
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != self._mask.shape:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {self._mask.shape}, "
                f"got {grad_output.shape}"
            )
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01, name: str = ""):
        super().__init__(name=name or "leaky_relu")
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "sigmoid")
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.sigmoid(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "tanh")
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float64))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._output**2)
