"""Element-wise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.dtype import as_float
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit ``max(x, 0)``."""

    _cache_attrs = ("_mask",)

    def __init__(self, name: str = ""):
        super().__init__(name=name or "relu")
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        mask = x > 0
        self._mask = mask if self.training else None
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_output = as_float(grad_output)
        if grad_output.shape != self._mask.shape:
            raise ShapeError(
                f"{self.name}: expected grad_output of shape {self._mask.shape}, "
                f"got {grad_output.shape}"
            )
        grad_input = grad_output * self._mask
        self.release_caches()
        return grad_input


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    _cache_attrs = ("_mask",)

    def __init__(self, negative_slope: float = 0.01, name: str = ""):
        super().__init__(name=name or "leaky_relu")
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        mask = x > 0
        self._mask = mask if self.training else None
        return np.where(mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_output = as_float(grad_output)
        grad_input = np.where(self._mask, grad_output, self.negative_slope * grad_output)
        self.release_caches()
        return grad_input


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    _cache_attrs = ("_output",)

    def __init__(self, name: str = ""):
        super().__init__(name=name or "sigmoid")
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = F.sigmoid(as_float(x))
        self._output = out if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_input = as_float(grad_output) * self._output * (1.0 - self._output)
        self.release_caches()
        return grad_input


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    _cache_attrs = ("_output",)

    def __init__(self, name: str = ""):
        super().__init__(name=name or "tanh")
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(as_float(x))
        self._output = out if self.training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_input = as_float(grad_output) * (1.0 - self._output**2)
        self.release_caches()
        return grad_input
