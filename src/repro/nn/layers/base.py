"""Layer protocol.

Every layer implements an explicit ``forward`` / ``backward`` pair instead of
relying on an autograd engine.  ``forward`` caches whatever it needs for the
backward pass on the instance; ``backward`` consumes the cache, accumulates
parameter gradients into the layer's :class:`~repro.nn.parameter.Parameter`
objects and returns the gradient with respect to the layer input.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.exceptions import LayerError
from repro.nn.parameter import Parameter


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__.lower()
        self._parameters: Dict[str, Parameter] = {}
        self.training = False

    # -------------------------------------------------------------- compute
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for ``x`` and cache the backward context."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------ parameters
    def add_parameter(self, key: str, param: Parameter) -> Parameter:
        """Register a parameter under ``key`` (scoped by the layer name)."""
        if key in self._parameters:
            raise LayerError(f"layer {self.name!r} already has a parameter named {key!r}")
        param.name = f"{self.name}.{key}"
        self._parameters[key] = param
        return param

    def parameters(self) -> Dict[str, Parameter]:
        """Return this layer's parameters keyed by their local name."""
        return dict(self._parameters)

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Iterate over ``(qualified_name, parameter)`` pairs."""
        for key, param in self._parameters.items():
            yield f"{self.name}.{key}", param

    def zero_grad(self) -> None:
        """Zero the gradient buffers of every parameter in this layer."""
        for param in self._parameters.values():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable entries in the layer."""
        return sum(p.size for p in self._parameters.values())

    # ---------------------------------------------------------------- modes
    def train(self) -> "Layer":
        """Switch the layer to training mode (affects e.g. dropout)."""
        self.training = True
        return self

    def eval(self) -> "Layer":
        """Switch the layer to inference mode."""
        self.training = False
        return self

    # --------------------------------------------------------------- export
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Return the per-sample output shape for a per-sample ``input_shape``.

        Layers that do not change the shape return it unchanged; layers with
        richer geometry override this.
        """
        return input_shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
