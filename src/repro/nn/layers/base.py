"""Layer protocol.

Every layer implements an explicit ``forward`` / ``backward`` pair instead of
relying on an autograd engine.  ``forward`` caches whatever it needs for the
backward pass on the instance; ``backward`` consumes the cache, accumulates
parameter gradients into the layer's :class:`~repro.nn.parameter.Parameter`
objects and returns the gradient with respect to the layer input.

Cache lifecycle
---------------
Backward context is cached **only in training mode** and is released at the
end of ``backward`` — a layer never retains O(batch) activations across
iterations or in inference-only use.  Layers start in training mode so the
common construct-forward-backward pattern works out of the box;
:meth:`~repro.nn.network.Sequential.predict` switches to ``eval`` for the
duration of an inference pass, which skips caching entirely.  Each layer
lists its cache slots in ``_cache_attrs`` so :meth:`release_caches` can drop
them generically (e.g. before serializing or deep-copying a network).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.exceptions import LayerError
from repro.nn.parameter import Parameter


class Layer:
    """Base class for all layers."""

    #: Names of instance attributes holding backward context; set by subclasses.
    _cache_attrs: Tuple[str, ...] = ()

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__.lower()
        self._parameters: Dict[str, Parameter] = {}
        self.training = True

    # -------------------------------------------------------------- compute
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for ``x`` and cache the backward context."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # --------------------------------------------------------------- caches
    def release_caches(self) -> None:
        """Drop any cached forward/backward context held by this layer."""
        for attr in self._cache_attrs:
            setattr(self, attr, None)

    # ------------------------------------------------------------ parameters
    def add_parameter(self, key: str, param: Parameter) -> Parameter:
        """Register a parameter under ``key`` (scoped by the layer name)."""
        if key in self._parameters:
            raise LayerError(f"layer {self.name!r} already has a parameter named {key!r}")
        param.name = f"{self.name}.{key}"
        self._parameters[key] = param
        return param

    def parameters(self) -> Dict[str, Parameter]:
        """Return this layer's parameters keyed by their local name."""
        return dict(self._parameters)

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        """Iterate over ``(qualified_name, parameter)`` pairs."""
        for key, param in self._parameters.items():
            yield f"{self.name}.{key}", param

    def zero_grad(self) -> None:
        """Zero the gradient buffers of every parameter in this layer."""
        for param in self._parameters.values():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable entries in the layer."""
        return sum(p.size for p in self._parameters.values())

    # ---------------------------------------------------------------- modes
    def train(self) -> "Layer":
        """Switch the layer to training mode (enables caching, dropout, ...)."""
        self.training = True
        return self

    def eval(self) -> "Layer":
        """Switch the layer to inference mode (no backward caching)."""
        self.training = False
        return self

    # --------------------------------------------------------------- export
    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Return the per-sample output shape for a per-sample ``input_shape``.

        Layers that do not change the shape return it unchanged; layers with
        richer geometry override this.
        """
        return input_shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
