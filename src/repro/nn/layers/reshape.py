"""Shape-manipulation layers (flatten / dropout)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.dtype import as_float
from repro.nn.layers.base import Layer
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_probability


class Flatten(Layer):
    """Flatten all non-batch dimensions into a single feature axis."""

    _cache_attrs = ("_input_shape",)

    def __init__(self, name: str = ""):
        super().__init__(name=name or "flatten")
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if x.ndim < 2:
            raise ShapeError(f"{self.name}: expected at least 2-D input, got shape {x.shape}")
        self._input_shape = x.shape if self.training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        grad_input = as_float(grad_output).reshape(self._input_shape)
        self.release_caches()
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        total = 1
        for dim in input_shape:
            total *= dim
        return (total,)


class Dropout(Layer):
    """Inverted dropout: active only in training mode."""

    _cache_attrs = ("_mask",)

    def __init__(self, rate: float = 0.5, *, name: str = "", rng: RngLike = None):
        super().__init__(name=name or "dropout")
        self.rate = check_probability(rate, "rate")
        self._rng = as_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_float(x)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask /= keep
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = as_float(grad_output)
        if self._mask is None:
            return grad_output
        grad_input = grad_output * self._mask
        self.release_caches()
        return grad_input
